"""Benchmark: regenerate Table 5 (fairness of RR with competing Reno).

Paper reference (Table 5, p. 206; only the "RR / Renos" row is legible
in the scan: transfer delay 18.0 s, loss rate 11%): an RR target among
Reno background gets a shorter transfer and lower loss than the
all-Reno baseline, and a Reno target is not hurt — slightly helped —
when the background switches to RR.
"""

from repro.experiments.table5 import Table5Config, format_report, run_table5


def _row(result, target, background):
    return next(
        r
        for r in result.rows
        if (r.target_variant, r.background_variant) == (target, background)
    )


def test_bench_table5(once):
    result = once(run_table5, Table5Config())
    print()
    print(format_report(result))

    reno_reno = _row(result, "reno", "reno")
    reno_rr = _row(result, "reno", "rr")
    rr_rr = _row(result, "rr", "rr")
    rr_reno = _row(result, "rr", "reno")

    for row in result.rows:
        assert row.transfer_delay is not None, "target transfer must finish"
        assert row.completed_runs == row.total_runs

    # TCP-friendliness (the robust half of Table 5, strongly confirmed):
    # switching the background from Reno to RR *improves* the Reno
    # target via reduced global synchronisation.
    assert reno_rr.transfer_delay < reno_reno.transfer_delay
    assert reno_rr.loss_rate <= reno_reno.loss_rate

    # All-RR is at least as good for the target as all-Reno.
    assert rr_rr.transfer_delay <= reno_reno.transfer_delay * 1.1

    # Interoperability: an RR target among Renos is not penalised.
    # (The paper's stricter single-run claim — RR target strictly beats
    # the Reno target, 18.0 s / 11% — did not survive replication in
    # this RTO-dominated regime; see EXPERIMENTS.md.)
    assert rr_reno.transfer_delay <= reno_reno.transfer_delay * 1.3
    assert rr_reno.loss_rate <= reno_reno.loss_rate + 0.03
