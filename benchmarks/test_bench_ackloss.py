"""Benchmark: the Section 2.3 ACK-loss study (extension experiment).

Paper claim (§2.3): RR "is more robust to ACK losses than New-Reno;
rare ACK losses cause only a slight negative effect" — an ACK loss can
only trigger a *linear* actnum shrink, never a multiplicative cut or
(directly) a timeout.
"""

from repro.experiments.ackloss import AckLossConfig, format_report, run_ackloss


def _cell(result, variant, rate):
    return next(
        r for r in result.rows if r.variant == variant and r.ack_loss_rate == rate
    )


def test_bench_ackloss(once):
    config = AckLossConfig()
    result = once(run_ackloss, config)
    print()
    print(format_report(result))

    rates = list(config.ack_loss_rates)
    clean, heavy = rates[0], rates[-1]

    # RR degrades gracefully: even at the heaviest ACK-loss rate it
    # keeps a substantial fraction of its clean-path goodput.
    rr_clean = _cell(result, "rr", clean).goodput_bps
    rr_heavy = _cell(result, "rr", heavy).goodput_bps
    assert rr_heavy > 0.25 * rr_clean

    # And it keeps beating New-Reno across the sweep.
    for rate in rates:
        rr = _cell(result, "rr", rate).goodput_bps
        newreno = _cell(result, "newreno", rate).goodput_bps
        assert rr > 0.9 * newreno, f"rate={rate}"

    # Every configuration still completed its transfer.
    for row in result.rows:
        assert row.completed_ratio == 1.0
