"""Benchmark: the Vegas decomposition (paper §1 / Hengartner et al. [8]).

Asserts the claim the RR paper builds on: Vegas' edge over Reno comes
from its slow-start/recovery techniques, not the delay-based congestion
avoidance in isolation.
"""

from repro.experiments.vegas_decomposition import (
    VegasDecompositionConfig,
    format_report,
    run_vegas_decomposition,
)


def test_bench_vegas_decomposition(once):
    result = once(run_vegas_decomposition, VegasDecompositionConfig())
    print()
    print(format_report(result))

    reno = result.row("reno")
    vegas = result.row("vegas")
    ca_only = result.row("vegas-ca-only")
    rec_only = result.row("vegas-rec-only")

    for row in result.rows:
        assert row.complete_time is not None, f"{row.name} did not finish"

    # Vegas beats Reno outright.
    assert vegas.complete_time < reno.complete_time

    # The recovery-side techniques capture most of the gain...
    gain_full = reno.complete_time - vegas.complete_time
    gain_rec = reno.complete_time - rec_only.complete_time
    assert gain_rec >= 0.7 * gain_full

    # ...while the CA alone captures much less (the [8] conclusion).
    gain_ca = reno.complete_time - ca_only.complete_time
    assert gain_ca <= 0.5 * gain_full
