"""Benchmark: regenerate Figure 5 (effective throughput during
recovery from 3/6 in-window losses, drop-tail gateways).

Paper reference values (read off Figure 5's bars, ICDCS'01 p. 204):
the ordering RR >= SACK > {Tahoe, New-Reno} in both panels, with
New-Reno worst and below Tahoe at 6 drops.
"""

from repro.experiments.figure5 import Figure5Config, format_report, run_figure5


def test_bench_figure5(once):
    result = once(run_figure5, Figure5Config())
    print()
    print(format_report(result))

    def kbps(variant, drops):
        return result.row(variant, drops).recovery_throughput_bps

    for drops in (3, 6):
        assert kbps("rr", drops) > kbps("newreno", drops), (
            f"RR must beat New-Reno at {drops} drops"
        )
        assert kbps("rr", drops) >= 0.9 * kbps("sack", drops), (
            f"RR must be at least SACK-class at {drops} drops"
        )
    assert kbps("tahoe", 6) > kbps("newreno", 6), (
        "paper: Tahoe more robust than New-Reno under heavy bursty loss"
    )
    # Nobody needed a retransmission timeout in the engineered scenarios
    # except (possibly) the weak baselines.
    assert result.row("rr", 6).timeouts == 0
    assert result.row("sack", 6).timeouts == 0
