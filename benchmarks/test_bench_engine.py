"""Microbenchmarks of the simulation substrate itself.

Unlike the experiment benches (one timed round), these use real
pytest-benchmark statistics — they are small and fast.  They guard
against performance regressions in the hot paths: event scheduling,
link forwarding and a full end-to-end TCP round.  The workloads live
in :mod:`workloads` so ``scripts/bench.py`` records baselines from
exactly the same code (committed as BENCH_engine.json).
"""

import workloads


def test_bench_event_scheduling(benchmark):
    """Schedule-and-drain 10k events."""
    events = benchmark(workloads.event_scheduling)
    assert events == 10_000


def test_bench_timer_churn(benchmark):
    """The retransmission-timer pattern: restart far more often than
    firing (one restart per ACK)."""
    assert benchmark(workloads.timer_churn) == 5_000


def test_bench_end_to_end_transfer(benchmark):
    """A complete 200-packet RR transfer through the dumbbell —
    the macro cost of one simulated connection."""
    events = benchmark(workloads.end_to_end_transfer)
    assert events > 0


def test_bench_ten_flow_red_second(benchmark):
    """One simulated second of the Figure-6 workload (10 flows, RED)."""
    events = benchmark(workloads.ten_flow_red_second)
    assert events > 100
