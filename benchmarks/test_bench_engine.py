"""Microbenchmarks of the simulation substrate itself.

Unlike the experiment benches (one timed round), these use real
pytest-benchmark statistics — they are small and fast.  They guard
against performance regressions in the hot paths: event scheduling,
link forwarding and a full end-to-end TCP round.
"""

import pytest

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator


def test_bench_event_scheduling(benchmark):
    """Schedule-and-drain 10k events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_bench_timer_churn(benchmark):
    """The retransmission-timer pattern: restart far more often than
    firing (one restart per ACK)."""
    from repro.sim.timers import Timer

    def run():
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        for _ in range(5_000):
            timer.restart(10.0)  # never fires: constantly pushed back
        timer.stop()
        sim.run()
        return len(fired)

    assert benchmark(run) == 0


def test_bench_end_to_end_transfer(benchmark):
    """A complete 200-packet RR transfer through the dumbbell —
    the macro cost of one simulated connection."""

    def run():
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        scenario.sim.run(until=60.0)
        return scenario.senders[1].completed

    assert benchmark(run) is True


def test_bench_ten_flow_red_second(benchmark):
    """One simulated second of the Figure-6 workload (10 flows, RED)."""
    from repro.net.red import RedParams, RedQueue
    from repro.sim.rng import RngStream

    def run():
        sim = Simulator()
        rng = RngStream(7, "red")
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=None) for _ in range(10)],
            params=DumbbellParams(n_pairs=10, buffer_packets=25),
            bottleneck_queue_factory=lambda name: RedQueue(
                sim, RedParams(), rng.substream(name), name=name
            ),
            sim=sim,
        )
        scenario.sim.run(until=1.0)
        return scenario.sim.events_processed

    events = benchmark(run)
    assert events > 100
