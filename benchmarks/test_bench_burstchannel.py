"""Benchmark: the Gilbert-Elliott bursty-channel sweep (extension).

The paper's premise is that bursty in-window loss is the hard case for
TCP recovery; this bench stresses the schemes on an inherently bursty
channel at a fixed average loss rate and checks that every scheme
remains functional and the strong recovery schemes stay competitive.
"""

from repro.experiments.burstchannel import (
    BurstChannelConfig,
    format_report,
    run_burstchannel,
)


def test_bench_burstchannel(once):
    config = BurstChannelConfig(runs_per_point=4)
    result = once(run_burstchannel, config)
    print()
    print(format_report(result))

    for row in result.rows:
        assert row.completed_ratio == 1.0, (
            f"{row.variant} failed to finish at burst {row.burst_length}"
        )

    # At the same stationary loss rate, longer bursts mean fewer loss
    # events: every scheme should do no worse at the longest bursts
    # than at isolated losses (within noise).
    for variant in config.variants:
        short = result.cell(variant, config.burst_lengths[0]).throughput_bps
        long = result.cell(variant, config.burst_lengths[-1]).throughput_bps
        assert long > 0.5 * short, variant

    # The partial-ACK/scoreboard schemes stay ahead of Reno once bursts
    # appear (burst length >= 2).
    for burst_length in config.burst_lengths[1:]:
        reno = result.cell("reno", burst_length).throughput_bps
        for strong in ("newreno", "sack", "rr"):
            assert result.cell(strong, burst_length).throughput_bps > 0.85 * reno
