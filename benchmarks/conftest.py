"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper at full scale,
prints the paper-vs-measured report (run pytest with ``-s`` to see it),
and asserts the qualitative shape so a regression in the reproduction
fails the bench run, not just the timing.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    These are macro-benchmarks (whole simulation campaigns); repeating
    them for statistical timing would multiply minutes for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
