"""Engine micro-benchmark workloads, as plain callables.

Shared between the pytest-benchmark suite (``test_bench_engine.py``)
and the standalone baseline recorder (``scripts/bench.py``) so both
time exactly the same code.  Each workload returns the number of
engine events it processed (0 where the workload is not event-counted)
so callers can report events/sec.
"""

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.sim.timers import Timer


def event_scheduling(n: int = 10_000) -> int:
    """Schedule-and-drain ``n`` events."""
    sim = Simulator()
    for i in range(n):
        sim.schedule(i * 0.001, lambda: None)
    sim.run()
    return sim.events_processed


def timer_churn(n: int = 5_000) -> int:
    """The retransmission-timer pattern: restart far more often than
    firing (one restart per ACK).  Returns restarts performed."""
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    for _ in range(n):
        timer.restart(10.0)  # never fires: constantly pushed back
    timer.stop()
    sim.run()
    assert not fired
    return n


def end_to_end_transfer(packets: int = 200) -> int:
    """A complete RR transfer through the dumbbell — the macro cost of
    one simulated connection.  Returns events processed; raises if the
    transfer did not complete (a broken bench must not time silence)."""
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
    )
    scenario.sim.run(until=60.0)
    if not scenario.senders[1].completed:
        raise AssertionError("benchmark transfer did not complete")
    return scenario.sim.events_processed


def ten_flow_red_second(duration: float = 1.0) -> int:
    """One simulated second of the Figure-6 workload (10 flows, RED)."""
    sim = Simulator()
    rng = RngStream(7, "red")
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=None) for _ in range(10)],
        params=DumbbellParams(n_pairs=10, buffer_packets=25),
        bottleneck_queue_factory=lambda name: RedQueue(
            sim, RedParams(), rng.substream(name), name=name
        ),
        sim=sim,
    )
    scenario.sim.run(until=duration)
    return scenario.sim.events_processed


#: name -> (workload, kwargs) — the suite scripts/bench.py records.
MICRO_WORKLOADS = {
    "event_scheduling": (event_scheduling, {}),
    "timer_churn": (timer_churn, {}),
    "end_to_end_transfer": (end_to_end_transfer, {}),
    "ten_flow_red_second": (ten_flow_red_second, {}),
}
