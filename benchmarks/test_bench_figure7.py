"""Benchmark: regenerate Figure 7 (fitness to the Mathis square-root
model; window vs uniform loss rate, RR and SACK).

Paper reference (Fig. 7, p. 205): both schemes hug the bound at small
p; with increasing p both fall below it because retransmission losses
and tiny windows force timeouts; RR at least as close as SACK.
"""

from repro.experiments.figure7 import Figure7Config, format_report, run_figure7
from repro.models.mathis import mathis_window


def test_bench_figure7(once):
    result = once(run_figure7, Figure7Config())
    print()
    print(format_report(result))

    for variant in ("sack", "rr"):
        series = dict(result.series(variant))
        rates = sorted(series)
        # Monotone decreasing window with loss rate.
        values = [series[p] for p in rates]
        assert all(a >= b for a, b in zip(values, values[1:])), variant
        # Tracks the model at the smallest rate (within a 0.6x band).
        smallest = rates[0]
        assert series[smallest] >= 0.6 * mathis_window(smallest), variant
        # Falls clearly below the bound at the largest rate (timeouts).
        largest = rates[-1]
        assert series[largest] <= 0.8 * mathis_window(largest), variant

    # RR is SACK-class in fitness across the sweep.
    rr = dict(result.series("rr"))
    sack = dict(result.series("sack"))
    ratio = sum(rr[p] for p in rr) / sum(sack[p] for p in sack)
    assert ratio > 0.65
