"""Benchmark: ablation of RR's design choices (DESIGN.md §5,
ext-ablation).

Quantifies what each mechanism buys:

* removing the probe's linear growth costs post-recovery ramp;
* keeping the exponential retreat policy for the whole recovery
  reproduces the New-Reno decay the paper attacks;
* resetting actnum on further loss (instead of the linear shrink)
  over-reacts to noise;
* exiting with cwnd = ssthresh reintroduces the big-ACK burst.
"""

from repro.experiments.ablation import AblationConfig, format_report, run_ablation


def _row(result, name):
    return next(r for r in result.rows if r.name == name)


def test_bench_ablation(once):
    result = once(run_ablation, AblationConfig())
    print()
    print(format_report(result))

    full = _row(result, "rr")
    retreat_always = _row(result, "rr-retreat-always")
    burst_exit = _row(result, "rr-burst-exit")

    # The probe sub-phase's per-dup-ACK clocking is the big win: the
    # always-exponential variant collapses toward New-Reno performance.
    assert retreat_always.recovery_throughput_bps < 0.7 * full.recovery_throughput_bps

    # Exit accounting: the ssthresh-exit variant bursts at exit, the
    # real RR does not.
    assert burst_exit.max_burst_after_exit >= full.max_burst_after_exit

    # None of the ablations should break recovery outright.
    for row in result.rows:
        assert row.recovery_throughput_bps is not None
