"""Benchmark: the full chaos campaign (docs/FAULTS.md).

Every variant vs. five seeded fault campaigns with the invariant suite
and watchdog engaged — the robustness gate at full scale.  Asserts the
hard contract (survival everywhere) and the paper's §2.3 shape: RR's
goodput fraction under mixed faults stays at least in New-Reno's
neighbourhood, because missing dup-ACKs cost RR a linear ``actnum``
shrink rather than a multiplicative cut.
"""

from repro.experiments.chaos import ChaosConfig, format_report, run_chaos


def test_bench_chaos(once):
    result = once(run_chaos, ChaosConfig())
    print()
    print(format_report(result))

    # Hard contract: every run survives with exactly-once delivery,
    # zero invariant violations and zero watchdog aborts.
    assert result.clean
    for run in result.runs:
        assert run.delivered == result.config.transfer_packets

    # The campaigns are not a no-op: faults measurably cost goodput
    # somewhere, and some run paid a retransmission timeout.
    summaries = {v: result.summary(v) for v in result.config.variants}
    assert any(s.goodput_vs_baseline < 0.999 for s in summaries.values())
    assert any(r.timeouts > 0 for r in result.runs)

    # Paper §2.3 shape under mixed fault load.
    assert summaries["rr"].goodput_vs_baseline >= 0.9 * summaries[
        "newreno"
    ].goodput_vs_baseline
