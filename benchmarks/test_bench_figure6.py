"""Benchmark: regenerate Figure 6 (sequence-number dynamics under RED
gateways, 10 flows, 6 seconds).

Paper reference (Fig. 6 panels, p. 205): New-Reno's trace flatlines
into a coarse timeout; RR and SACK keep the sequence ramp moving, with
RR finishing highest (~120 packets in 6 s vs ~50 for New-Reno).
"""

from repro.experiments.figure6 import Figure6Config, format_report, run_figure6


def test_bench_figure6(once):
    result = once(run_figure6, Figure6Config())
    print()
    print(format_report(result))

    newreno = result.flows["newreno"]
    sack = result.flows["sack"]
    rr = result.flows["rr"]

    # RR and SACK far ahead of New-Reno (paper: "significantly higher").
    assert rr.final_ack > 1.5 * newreno.final_ack
    assert sack.final_ack > 1.5 * newreno.final_ack
    # RR is SACK-class under RED (paper claims slightly ahead; we accept
    # a narrow band either way — see EXPERIMENTS.md).
    assert rr.final_ack > 0.8 * sack.final_ack
    # The New-Reno pathology is visible: a long ACK stall or a timeout.
    assert newreno.timeouts >= 1 or newreno.longest_stall > 1.0
    # RR may pay at most one RTO (a lost retransmission — the one case
    # RR explicitly leaves to the timer; the paper's own Fig. 6(c)
    # trace shows the same ~1 s gap around t=2.4-3.3 s).
    assert rr.timeouts <= 1
