"""RR edge cases beyond the main state-machine tests: phase
transitions under data exhaustion, timeouts inside each sub-phase,
tiny windows, and back-to-back episodes."""

import pytest

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender, RrPhase
from tests.conftest import SenderHarness


def make(cwnd=16.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(RobustRecoverySender, config)


class TestTimeoutInsideSubPhases:
    def test_timeout_during_retreat(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.phase is RrPhase.RETREAT
        harness.advance(10.0)
        sender = harness.sender
        assert sender.timeouts >= 1
        assert sender.phase is RrPhase.NORMAL
        assert sender.actnum == 0 and sender.ndup == 0

    def test_timeout_during_probe(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 10)
        harness.ack(1)  # probe
        assert harness.sender.phase is RrPhase.PROBE
        harness.advance(10.0)
        assert harness.sender.phase is RrPhase.NORMAL
        assert not harness.sender.in_recovery

    def test_recovery_after_timeout_recovery(self):
        """RTO inside an episode, go-back-N, then a fresh episode once
        snd_una passes the old maxseq."""
        harness = make()
        harness.start()  # 0..15
        harness.dupacks(0, 3)
        harness.advance(10.0)  # RTO
        # go-back-N resend of 0 cumulatively acks the buffered window
        harness.ack(16)
        harness.ack(17)
        harness.ack(18)
        harness.host.clear()
        harness.dupacks(18, 3)  # fresh loss beyond old maxseq
        assert harness.sender.in_recovery
        assert harness.host.retransmit_seqs() == [18]


class TestDataExhaustion:
    def test_probe_with_no_new_data_still_recovers(self):
        """App-limited: the probe cannot send new packets, recovery
        proceeds purely via partial-ACK retransmissions."""
        harness = make()
        harness.sender.set_data_limit(16)  # exactly the initial window
        harness.start()
        harness.dupacks(0, 10)  # retreat sends nothing (no data)
        harness.ack(1)
        assert harness.sender.actnum == 0
        for hole in (2, 3):
            harness.host.clear()
            harness.ack(hole)
            assert harness.host.retransmit_seqs() == [hole]
        harness.ack(16)
        assert harness.sender.completed

    def test_completion_during_recovery(self):
        harness = make()
        harness.sender.set_data_limit(16)
        harness.start()
        harness.dupacks(0, 5)
        harness.ack(16)  # covers everything: complete inside recovery
        assert harness.sender.completed

    def test_acks_after_completion_ignored_in_recovery_state(self):
        harness = make()
        harness.sender.set_data_limit(16)
        harness.start()
        harness.dupacks(0, 5)
        harness.ack(16)
        harness.ack(16)  # stray duplicate after completion: no crash
        assert harness.sender.completed


class TestTinyWindows:
    def test_window_of_four_single_loss(self):
        harness = make(cwnd=4.0)
        harness.start()  # 0..3; loss at 0
        harness.dupacks(0, 3)
        assert harness.sender.in_recovery
        harness.ack(4)
        assert not harness.sender.in_recovery
        assert harness.sender.cwnd >= 1.0

    def test_window_of_two_cannot_fast_retransmit(self):
        harness = make(cwnd=2.0)
        harness.start()  # 0..1; loss of 0 yields one dup at most
        harness.ack(0)
        assert not harness.sender.in_recovery  # waits for the RTO


class TestBackToBackEpisodes:
    def test_two_separate_bursts_two_episodes(self):
        harness = make()
        harness.start()          # 0..15, burst 1 at 0
        harness.dupacks(0, 10)
        harness.ack(16)          # exit 1 (actnum 5, cwnd 5)
        # refill: acks walk forward, new data flows
        for ack in range(17, 24):
            harness.ack(ack)
        harness.host.clear()
        harness.dupacks(23, 3)   # burst 2
        sender = harness.sender
        assert sender.recovery_episodes == 2
        assert harness.host.retransmit_seqs() == [23]

    def test_ssthresh_halves_per_episode(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 10)
        first_ssthresh = harness.sender.ssthresh
        harness.ack(16)
        for ack in range(17, 24):
            harness.ack(ack)
        harness.dupacks(23, 3)
        assert harness.sender.ssthresh < first_ssthresh


class TestNdupOverflowSafety:
    def test_many_excess_dupacks_in_probe(self):
        """A flood of duplicates (e.g. from a misbehaving receiver)
        cannot push state negative or trigger bogus retransmissions."""
        harness = make()
        harness.start()
        harness.dupacks(0, 10)
        harness.ack(1)
        harness.dupacks(1, 40)  # far more than actnum
        sender = harness.sender
        assert sender.ndup == 40
        assert sender.actnum >= 0
        harness.ack(2)  # boundary: ndup > actnum handled as clean
        assert sender.actnum >= 1
        assert sender.further_losses_detected == 0

    def test_rwnd_clamps_probe_sends(self):
        harness = make(cwnd=16.0, receiver_window=20)
        harness.start()
        harness.dupacks(0, 10)
        harness.ack(1)
        harness.dupacks(1, 30)
        # flight = snd_nxt - snd_una can never exceed rwnd
        assert harness.sender.flight() <= 20
