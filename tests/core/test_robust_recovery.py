"""Unit tests for the Robust Recovery state machine (paper Section 2,
Figures 1-2).

Sequence-number convention: the harness starts a sender with a given
initial cwnd so the first window 0..W-1 is in flight, then feeds
duplicate and partial ACKs exactly as a receiver with specific losses
would generate them.
"""

import pytest

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender, RrPhase
from tests.conftest import SenderHarness


def make(cwnd=16.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(RobustRecoverySender, config)


def enter_recovery(harness):
    """Three duplicate ACKs: fast retransmit, retreat begins."""
    harness.dupacks(0, 3)


class TestEntry:
    def test_enters_retreat_on_third_dupack(self):
        harness = make()
        harness.start()
        enter_recovery(harness)
        assert harness.sender.in_recovery
        assert harness.sender.phase is RrPhase.RETREAT

    def test_cwnd_unchanged_at_entry(self):
        """The defining difference from fast recovery: cwnd is not the
        control variable during RR, so it is left untouched."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        assert harness.sender.cwnd == pytest.approx(16.0)

    def test_ssthresh_halved(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        assert harness.sender.ssthresh == pytest.approx(8.0)

    def test_first_lost_packet_retransmitted(self):
        harness = make()
        harness.start()
        harness.host.clear()
        enter_recovery(harness)
        assert harness.host.retransmit_seqs() == [0]

    def test_recover_set_to_maxseq(self):
        harness = make(cwnd=16.0)
        harness.start()  # 0..15 out; maxseq = 16
        enter_recovery(harness)
        assert harness.sender.recover == 16

    def test_actnum_zero_in_retreat(self):
        harness = make()
        harness.start()
        enter_recovery(harness)
        assert harness.sender.actnum == 0


class TestRetreat:
    def test_one_new_packet_per_two_dupacks(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.host.clear()
        harness.dupacks(0, 6)
        # ndup 1..6: sends at 2, 4, 6 -> packets 16, 17, 18
        assert harness.host.new_data_seqs() == [16, 17, 18]

    def test_odd_dupack_sends_nothing(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.host.clear()
        harness.ack(0)  # ndup = 1
        assert harness.host.sent == []

    def test_actnum_stays_zero(self):
        harness = make()
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 8)
        assert harness.sender.actnum == 0
        assert harness.sender.phase is RrPhase.RETREAT

    def test_respects_receiver_window(self):
        harness = make(cwnd=16.0, receiver_window=16)
        harness.start()  # flight = 16 = rwnd
        enter_recovery(harness)
        harness.host.clear()
        harness.dupacks(0, 8)
        assert harness.host.new_data_seqs() == []  # rwnd-bound

    def test_respects_data_limit(self):
        harness = make(cwnd=16.0)
        harness.sender.set_data_limit(16)  # nothing beyond the window
        harness.start()
        enter_recovery(harness)
        harness.host.clear()
        harness.dupacks(0, 8)
        assert harness.host.new_data_seqs() == []


class TestRetreatEnd:
    def test_actnum_becomes_half_ndup(self):
        harness = make(cwnd=16.0)
        harness.start()  # losses 0, 1: survivors 2..15 -> 13 dups + entry 3
        enter_recovery(harness)
        harness.dupacks(0, 10)  # ndup = 10, sent 5 new
        harness.ack(1)  # first partial ACK: retreat ends
        assert harness.sender.phase is RrPhase.PROBE
        assert harness.sender.actnum == 5

    def test_partial_ack_triggers_retransmission(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.host.clear()
        harness.ack(1)
        assert harness.host.retransmit_seqs() == [1]

    def test_single_loss_exits_from_retreat(self):
        """Fig. 1 path 1: one lost packet -> recovery ends after the
        retreat sub-phase."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)  # 5 new packets sent (16..20)
        harness.ack(21)  # big ACK beyond recover=16: everything arrived
        assert not harness.sender.in_recovery
        assert harness.sender.phase is RrPhase.NORMAL

    def test_exit_cwnd_equals_actnum(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)  # retreat sent 16..20 -> actnum 5
        # Exit ACK covers the dormant packets; 16..20 stay in flight.
        harness.ack(16)
        assert harness.sender.cwnd == pytest.approx(5.0)
        # ssthresh keeps the value halved at entry (Fig. 2 exit box
        # only reassigns cwnd).
        assert harness.sender.ssthresh == pytest.approx(8.0)

    def test_compressed_exit_does_not_burst(self):
        """If the exiting ACK has already drained the flight (ACK
        staircase at a saturated bottleneck), cwnd hands over at
        flight+1 instead of the raw actnum."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)  # retreat sent 16..20, actnum 5
        harness.host.clear()
        harness.ack(21)  # covers even the retreat sends: flight 0
        assert harness.sender.cwnd == pytest.approx(1.0)
        assert len(harness.host.new_data_seqs()) <= 1
        # The entry-time halved ssthresh remains the slow-start target.
        assert harness.sender.ssthresh == pytest.approx(8.0)


class TestProbe:
    def prepare(self, dupacks_in_retreat=10):
        """Enter probe with actnum = dupacks_in_retreat // 2."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, dupacks_in_retreat)
        harness.ack(1)  # probe begins
        return harness

    def test_each_dupack_sends_new_packet(self):
        harness = self.prepare()
        harness.host.clear()
        harness.dupacks(1, 3)
        assert len(harness.host.new_data_seqs()) == 3

    def test_clean_boundary_grows_actnum(self):
        harness = self.prepare()  # actnum 5
        harness.dupacks(1, 5)  # all 5 of last RTT's packets arrived
        harness.host.clear()
        harness.ack(2)  # boundary: ndup == actnum -> growth
        assert harness.sender.actnum == 6
        # retransmission of the hole plus one extra new packet
        assert harness.host.retransmit_seqs() == [2]
        assert len(harness.host.new_data_seqs()) == 1

    def test_growth_packet_sent_before_retransmission(self):
        """Ordering matters: the extra packet must hit the wire before
        the retransmission or ndup systematically undercounts."""
        harness = self.prepare()
        harness.dupacks(1, 5)
        harness.host.clear()
        harness.ack(2)
        kinds = [(p.is_retransmit) for p in harness.host.sent if p.is_data]
        assert kinds == [False, True]

    def test_further_loss_shrinks_actnum_linearly(self):
        harness = self.prepare()  # actnum 5
        harness.dupacks(1, 3)  # only 3 of 5 returned: 2 further losses
        harness.ack(2)
        assert harness.sender.actnum == 3
        assert harness.sender.further_losses_detected == 2

    def test_further_loss_extends_exit(self):
        harness = self.prepare()
        recover_before = harness.sender.recover
        harness.dupacks(1, 3)
        harness.ack(2)
        assert harness.sender.recover > recover_before
        assert harness.sender.recover == harness.sender.maxseq
        assert harness.sender.exit_extensions == 1

    def test_further_loss_does_not_send_growth_packet(self):
        harness = self.prepare()
        harness.dupacks(1, 3)
        harness.host.clear()
        harness.ack(2)
        assert harness.host.new_data_seqs() == []
        assert harness.host.retransmit_seqs() == [2]

    def test_ndup_resets_each_rtt(self):
        harness = self.prepare()
        harness.dupacks(1, 5)
        harness.ack(2)
        assert harness.sender.ndup == 0

    def test_one_hole_repaired_per_rtt(self):
        harness = self.prepare()
        for hole in [2, 3, 4]:
            harness.host.clear()
            harness.dupacks(hole - 1, harness.sender.actnum)
            harness.ack(hole)
            assert hole in harness.host.retransmit_seqs()

    def test_excess_dupacks_treated_as_clean(self):
        """ndup > actnum (reordering artifacts) must not shrink."""
        harness = self.prepare()  # actnum 5
        harness.dupacks(1, 7)
        harness.ack(2)
        assert harness.sender.actnum == 6


class TestExit:
    def test_exit_from_probe(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(1)      # probe, actnum 5
        harness.dupacks(1, 5)
        harness.ack(30)     # beyond recover=16
        sender = harness.sender
        assert not sender.in_recovery
        assert sender.phase is RrPhase.NORMAL
        assert sender.actnum == 0
        assert sender.ndup == 0

    def test_exit_transfers_control_to_cwnd(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(1)      # probe, actnum 5 (retreat sent 16..20)
        harness.dupacks(1, 5)   # probe sends 21..25
        harness.ack(2)      # clean boundary: actnum -> 6, sends 26 + rtx
        harness.dupacks(2, 6)   # sends 27..32
        harness.ack(28)     # beyond recover=16: exit
        assert harness.sender.cwnd == pytest.approx(6.0)
        assert harness.sender.ssthresh == pytest.approx(8.0)  # from entry

    def test_exit_observes_packet_conservation(self):
        """The big-ACK problem is gone: the exiting ACK releases at
        most one new packet even though it acknowledged many."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(1)
        harness.dupacks(1, 5)  # probe sends 21..25, still in flight
        harness.host.clear()
        harness.ack(21)  # big exit ACK covering all dormant packets
        assert len(harness.host.new_data_seqs()) <= 1

    def test_post_exit_growth_toward_entry_ssthresh(self):
        """Exit below the halved ssthresh slow-starts back up to it
        (like New-Reno's effective behaviour); once there, growth is
        the congestion-avoidance +1/cwnd."""
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(21)  # exit with cwnd = 1 (flight compressed), ssthresh 8
        assert harness.sender.cwnd < harness.sender.ssthresh
        cwnd = harness.sender.cwnd
        harness.ack(22)
        assert harness.sender.cwnd == pytest.approx(cwnd + 1.0)  # slow start
        # Push cwnd to ssthresh and check CA takes over.
        harness.sender.cwnd = harness.sender.ssthresh
        cwnd = harness.sender.cwnd
        harness.ack(23)
        assert harness.sender.cwnd == pytest.approx(cwnd + 1.0 / cwnd)

    def test_min_exit_cwnd_is_one(self):
        harness = make(cwnd=4.0)
        harness.start()  # 0..3 out
        enter_recovery(harness)  # ndup never reaches 2
        harness.ack(4)   # exit straight from retreat, actnum 0
        assert harness.sender.cwnd == pytest.approx(1.0)


class TestTimeout:
    def test_timeout_abandons_rr_state(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(1)
        harness.advance(10.0)
        sender = harness.sender
        assert sender.timeouts >= 1
        assert sender.phase is RrPhase.NORMAL
        assert not sender.in_recovery
        assert sender.actnum == 0
        assert sender.cwnd == pytest.approx(1.0)

    def test_stale_dupacks_after_timeout_ignored(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.advance(10.0)
        harness.host.clear()
        harness.dupacks(0, 3)
        # go-back-N echoes: no new RR episode
        assert harness.sender.phase is RrPhase.NORMAL
        assert harness.host.retransmit_seqs() == []


class TestDiagnostics:
    def test_episode_counter(self):
        harness = make(cwnd=16.0)
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)
        harness.ack(21)  # exit
        harness.ack(22)
        harness.ack(23)
        harness.host.clear()
        harness.dupacks(23, 3)
        assert harness.sender.recovery_episodes == 2

    def test_app_limited_boundary_not_a_false_loss(self):
        """When the application runs out of data mid-recovery the
        missing duplicate ACKs must not read as network losses."""
        harness = make(cwnd=16.0)
        harness.sender.set_data_limit(18)  # only 2 packets beyond window
        harness.start()
        enter_recovery(harness)
        harness.dupacks(0, 10)  # retreat can only send 16, 17
        harness.ack(1)
        assert harness.sender.actnum == 2  # honest in-flight count
        harness.dupacks(1, 2)
        harness.ack(2)
        assert harness.sender.further_losses_detected == 0
