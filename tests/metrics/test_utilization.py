"""Tests for link-utilization monitoring."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.utilization import LinkMonitor
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.net.link import Link
from repro.net.queues import DropTailQueue
from repro.net.packet import data_packet


class SinkNode:
    def receive(self, packet):
        pass


class TestMonitorMechanics:
    def test_invalid_period_rejected(self):
        sim = Simulator()
        link = Link(sim, "x", 1e6, 0.001, DropTailQueue(10))
        with pytest.raises(ConfigurationError):
            LinkMonitor(sim, link, period=0.0)

    def test_windows_accumulate(self):
        sim = Simulator()
        link = Link(sim, "x", 8e6, 0.001, DropTailQueue(100))
        link.connect(SinkNode())
        monitor = LinkMonitor(sim, link, period=0.1)
        for i in range(10):
            link.send(data_packet(1, "S", "K", i))
        sim.run(until=1.0)
        assert len(monitor.windows) == 10
        total = sum(delivered for _, delivered in monitor.windows)
        assert total == 10 * 1000

    def test_idle_link_zero_utilization(self):
        sim = Simulator()
        link = Link(sim, "x", 1e6, 0.001, DropTailQueue(10))
        monitor = LinkMonitor(sim, link, period=0.1)
        sim.run(until=1.0)
        assert monitor.mean_utilization() == 0.0
        assert monitor.idle_windows() == len(monitor.windows)


class TestUtilizationOnBottleneck:
    def test_saturated_bottleneck_near_full(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=None)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        # Sample the steady state, past the slow-start overshoot and
        # the first recovery episode.
        monitor = LinkMonitor(
            scenario.sim, scenario.dumbbell.forward_link, period=0.25, start_time=8.0
        )
        scenario.sim.run(until=25.0)
        assert monitor.mean_utilization() > 0.9

    def test_newreno_burst_recovery_leaves_idle_windows(self):
        """The §1 complaint quantified: during New-Reno's 6-drop
        recovery crawl the bottleneck goes underutilised; RR keeps it
        busier over the same engineered window."""

        def run(variant):
            loss = DeterministicLoss([(1, 100 + i) for i in range(6)])
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant=variant, amount_packets=400)],
                params=DumbbellParams(n_pairs=1, buffer_packets=25),
                default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
                forward_loss=loss,
            )
            monitor = LinkMonitor(
                scenario.sim, scenario.dumbbell.forward_link,
                period=0.1, start_time=1.4,  # the loss lands near t=1.45
            )
            scenario.sim.run(until=3.4)  # the 2 s recovery window
            return monitor.mean_utilization()

        assert run("rr") > run("newreno")
