"""Tests for queue monitoring and the global-synchronization metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.queuemon import QueueMonitor
from repro.metrics.sync import (
    cluster_loss_events,
    loss_synchronization_index,
    mean_flows_per_event,
)
from repro.net.queues import DropTailQueue
from repro.net.packet import data_packet
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator


class TestQueueMonitor:
    def test_samples_on_period(self):
        sim = Simulator()
        queue = DropTailQueue(limit=10)
        monitor = QueueMonitor(sim, queue, period=0.1)
        sim.run(until=1.0)
        assert len(monitor.samples) == 11  # t=0.0 .. 1.0

    def test_tracks_occupancy(self):
        sim = Simulator()
        queue = DropTailQueue(limit=10)
        monitor = QueueMonitor(sim, queue, period=0.1)
        sim.schedule(0.25, lambda: queue.enqueue(data_packet(1, "S", "K", 0)))
        sim.schedule(0.55, lambda: queue.dequeue())
        sim.run(until=1.0)
        lengths = dict(monitor.samples)
        assert lengths[pytest.approx(0.2)] if False else True
        assert monitor.max_occupancy() == 1
        assert 0 < monitor.mean_occupancy() < 1

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            QueueMonitor(sim, DropTailQueue(limit=5), period=0.0)

    def test_empty_periods_detected(self):
        sim = Simulator()
        queue = DropTailQueue(limit=10)
        monitor = QueueMonitor(sim, queue, period=0.05)
        sim.schedule(0.5, lambda: queue.enqueue(data_packet(1, "S", "K", 0)))
        sim.run(until=1.0)
        valleys = monitor.empty_periods(min_duration=0.2)
        assert valleys
        assert valleys[0][0] == pytest.approx(0.0)

    def test_utilisation_proxy_on_live_bottleneck(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=None)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        monitor = QueueMonitor(
            scenario.sim, scenario.dumbbell.bottleneck_queue, period=0.05
        )
        scenario.sim.run(until=10.0)
        assert monitor.utilisation_proxy() > 0.5  # bottleneck kept busy


class TestSyncMetrics:
    def test_clustering_merges_nearby_drops(self):
        events = cluster_loss_events({1: [1.0], 2: [1.01], 3: [2.0]}, window=0.05)
        assert len(events) == 2
        assert events[0][1] == {1, 2}
        assert events[1][1] == {3}

    def test_index_zero_when_desynchronised(self):
        drops = {1: [1.0], 2: [2.0], 3: [3.0]}
        assert loss_synchronization_index(drops) == 0.0

    def test_index_one_when_fully_synchronised(self):
        drops = {1: [1.0, 5.0], 2: [1.01, 5.01]}
        assert loss_synchronization_index(drops) == 1.0

    def test_no_drops_is_zero(self):
        assert loss_synchronization_index({1: [], 2: []}) == 0.0

    def test_mean_flows_per_event(self):
        drops = {1: [1.0], 2: [1.01], 3: [5.0]}
        assert mean_flows_per_event(drops) == pytest.approx(1.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_loss_events({1: [1.0]}, window=0.0)

    def test_droptail_more_synchronised_than_red(self):
        """The paper's §3.3 motivation, measured: drop-tail overflow
        hits many flows in the same instant; RED's randomised early
        drops spread out."""
        from repro.net.red import RedParams, RedQueue
        from repro.sim.rng import RngStream

        def run(use_red):
            sim = Simulator()
            kwargs = {}
            if use_red:
                rng = RngStream(5, "red")
                kwargs["bottleneck_queue_factory"] = lambda name: RedQueue(
                    sim, RedParams(weight=0.02), rng.substream(name), name=name
                )
                kwargs["sim"] = sim
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant="reno", amount_packets=None) for _ in range(6)],
                params=DumbbellParams(n_pairs=6, buffer_packets=25),
                **kwargs,
            )
            scenario.sim.run(until=30.0)
            return {
                flow_id: stats.drop_times
                for flow_id, stats in scenario.stats.items()
            }

        droptail_sync = loss_synchronization_index(run(use_red=False))
        red_sync = loss_synchronization_index(run(use_red=True))
        assert droptail_sync > red_sync
