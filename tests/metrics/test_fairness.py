"""Unit tests for fairness indices."""

import pytest

from repro.metrics.fairness import jain_index, throughput_ratio


class TestJainIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_flow_is_fair(self):
        assert jain_index([42.0]) == pytest.approx(1.0)

    def test_total_starvation_bound(self):
        # one flow hogs everything among n flows -> index = 1/n
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_moderate_skew(self):
        index = jain_index([1.0, 2.0, 3.0])
        assert 0.8 < index < 1.0

    def test_empty_is_vacuously_fair(self):
        assert jain_index([]) == 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariance(self):
        xs = [1.0, 3.0, 5.0]
        assert jain_index(xs) == pytest.approx(jain_index([10 * x for x in xs]))


class TestThroughputRatio:
    def test_fair_share(self):
        assert throughput_ratio(40_000, 40_000) == pytest.approx(1.0)

    def test_above_fair_share(self):
        assert throughput_ratio(44_000, 40_000) == pytest.approx(1.1)

    def test_zero_share_is_zero(self):
        assert throughput_ratio(10.0, 0.0) == 0.0
