"""Unit tests for throughput/goodput metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.flowstats import FlowStats, RecoveryEpisode
from repro.metrics.throughput import (
    effective_throughput_bps,
    goodput_bps,
    loss_recovery_span,
    loss_recovery_throughput,
    recovery_span_throughput,
)


class FakeSender:
    snd_una = 0
    recover = 0


def stats_with_acks(acks, sends=None):
    stats = FlowStats(flow_id=1)
    sender = FakeSender()
    stats.on_start(0.0, sender)
    for t, seq, retransmit in sends or []:
        stats.on_send(t, sender, seq, retransmit)
    for t, ack in acks:
        stats.on_ack(t, sender, ack, duplicate=False)
    return stats


class TestGoodput:
    def test_basic_rate(self):
        stats = stats_with_acks([(1.0, 0), (2.0, 10)])
        # 10 packets * 1000 B * 8 over 1 s
        assert goodput_bps(stats, 1.0, 2.0) == pytest.approx(80_000.0)

    def test_window_with_no_progress_is_zero(self):
        stats = stats_with_acks([(1.0, 10)])
        assert goodput_bps(stats, 2.0, 3.0) == 0.0

    def test_invalid_window_rejected(self):
        stats = stats_with_acks([(1.0, 10)])
        with pytest.raises(ConfigurationError):
            goodput_bps(stats, 2.0, 2.0)

    def test_custom_mss(self):
        stats = stats_with_acks([(0.0, 0), (1.0, 5)])
        assert goodput_bps(stats, 0.0, 1.0, mss_bytes=500) == pytest.approx(20_000.0)


class TestEffectiveThroughput:
    def test_uses_completion_time(self):
        stats = stats_with_acks([(1.0, 5), (4.0, 20)])
        stats.on_complete(4.0, FakeSender())
        assert effective_throughput_bps(stats) == pytest.approx(20 * 8000 / 4.0)

    def test_explicit_until(self):
        stats = stats_with_acks([(1.0, 5), (4.0, 20)])
        assert effective_throughput_bps(stats, until=2.0) == pytest.approx(
            5 * 8000 / 2.0
        )

    def test_unstarted_flow_is_zero(self):
        assert effective_throughput_bps(FlowStats(flow_id=1)) == 0.0


class TestLossRecoverySpan:
    def test_no_retransmissions_means_no_span(self):
        stats = stats_with_acks([(1.0, 10)], sends=[(0.0, 0, False)])
        assert loss_recovery_span(stats) is None
        assert loss_recovery_throughput(stats) is None

    def test_span_from_first_retransmission(self):
        sends = [(0.0, 0, False), (0.1, 1, False), (0.2, 2, False), (1.0, 0, True)]
        acks = [(0.5, 0), (2.0, 3)]
        stats = stats_with_acks(acks, sends=sends)
        span = loss_recovery_span(stats)
        assert span is not None
        t_start, t_end, target = span
        assert t_start == pytest.approx(1.0)
        assert target == 3  # everything sent before the retransmission
        assert t_end == pytest.approx(2.0)

    def test_throughput_over_span(self):
        sends = [(0.0, 0, False), (0.1, 1, False), (1.0, 0, True)]
        acks = [(2.0, 2)]
        stats = stats_with_acks(acks, sends=sends)
        assert loss_recovery_throughput(stats) == pytest.approx(2 * 8000 / 1.0)

    def test_unrecovered_span_is_none(self):
        sends = [(0.0, 0, False), (1.0, 0, True)]
        stats = stats_with_acks([], sends=sends)
        assert loss_recovery_span(stats) is None


class TestEpisodeThroughput:
    def test_episode_based_measurement(self):
        stats = stats_with_acks([(2.0, 8), (3.0, 16)])
        stats.episodes.append(
            RecoveryEpisode(enter_time=1.0, enter_ack=4, recover=16)
        )
        # target 16 reached at 3.0; acked 16-4=12 pkts over 2 s
        assert recovery_span_throughput(stats) == pytest.approx(12 * 8000 / 2.0)

    def test_missing_episode_returns_none(self):
        stats = stats_with_acks([(1.0, 5)])
        assert recovery_span_throughput(stats, episode_index=0) is None

    def test_unreached_target_returns_none(self):
        stats = stats_with_acks([(2.0, 8)])
        stats.episodes.append(
            RecoveryEpisode(enter_time=1.0, enter_ack=4, recover=100)
        )
        assert recovery_span_throughput(stats) is None
