"""Unit tests for the FlowStats collector."""

import pytest

from repro.metrics.flowstats import FlowStats
from repro.net.packet import data_packet
from repro.sim.tracing import TraceBus, TraceRecord


class FakeSender:
    """Just enough of TcpSender for observer hooks."""

    def __init__(self):
        self.snd_una = 0
        self.recover = 0


class TestObserverHooks:
    def test_ack_series_records_progress(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_ack(1.0, sender, 5, duplicate=False)
        stats.on_ack(2.0, sender, 9, duplicate=False)
        assert stats.ack_series == [(1.0, 5), (2.0, 9)]
        assert stats.final_ack == 9

    def test_duplicates_counted_separately(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_ack(1.0, sender, 5, duplicate=True)
        assert stats.ack_series == []
        assert stats.dupacks_seen == 1

    def test_send_series(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_send(1.0, sender, 3, retransmit=False)
        stats.on_send(2.0, sender, 3, retransmit=True)
        assert stats.packets_sent() == 2
        assert stats.retransmissions() == 1

    def test_recovery_episode_lifecycle(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        sender.snd_una, sender.recover = 10, 20
        stats.on_recovery_enter(1.0, sender)
        sender.snd_una = 22
        stats.on_recovery_exit(2.5, sender)
        episode = stats.episodes[0]
        assert episode.enter_ack == 10
        assert episode.recover == 20
        assert episode.exit_ack == 22
        assert episode.duration == pytest.approx(1.5)

    def test_exit_without_enter_is_safe(self):
        stats = FlowStats(flow_id=1)
        stats.on_recovery_exit(1.0, FakeSender())  # no crash
        assert stats.episodes == []

    def test_double_exit_ignored(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_recovery_enter(1.0, sender)
        stats.on_recovery_exit(2.0, sender)
        stats.on_recovery_exit(3.0, sender)
        assert stats.episodes[0].exit_time == 2.0

    def test_timeout_times(self):
        stats = FlowStats(flow_id=1)
        stats.on_timeout(4.2, FakeSender())
        assert stats.timeouts == 1
        assert stats.timeout_times == [4.2]


class TestDerivedQueries:
    def make_stats(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for t, ack in [(1.0, 5), (2.0, 9), (3.0, 20)]:
            stats.on_ack(t, sender, ack, duplicate=False)
        return stats

    def test_acked_at_steps(self):
        stats = self.make_stats()
        assert stats.acked_at(0.5) == 0
        assert stats.acked_at(1.0) == 5
        assert stats.acked_at(2.5) == 9
        assert stats.acked_at(99.0) == 20

    def test_time_ack_reached(self):
        stats = self.make_stats()
        assert stats.time_ack_reached(9) == pytest.approx(2.0)
        assert stats.time_ack_reached(10) == pytest.approx(3.0)
        assert stats.time_ack_reached(21) is None

    def test_transfer_delay(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_start(1.0, sender)
        stats.on_complete(7.5, sender)
        assert stats.transfer_delay() == pytest.approx(6.5)

    def test_transfer_delay_incomplete(self):
        stats = FlowStats(flow_id=1)
        stats.on_start(1.0, FakeSender())
        assert stats.transfer_delay() is None


class TestDropWatching:
    def test_counts_own_flow_data_drops(self):
        stats = FlowStats(flow_id=1)
        bus = TraceBus()
        stats.watch_drops(bus)
        own = data_packet(1, "S1", "K1", 5)
        other = data_packet(2, "S2", "K2", 5)
        bus.publish(TraceRecord(1.0, "link.drop", "q", {"packet": own}))
        bus.publish(TraceRecord(1.0, "link.drop", "q", {"packet": other}))
        bus.publish(TraceRecord(2.0, "link.injected_drop", "q", {"packet": own}))
        assert stats.drops_observed == 2
        assert stats.drop_times == [1.0, 2.0]

    def test_loss_rate(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for i in range(10):
            stats.on_send(float(i), sender, i, retransmit=False)
        bus = TraceBus()
        stats.watch_drops(bus)
        bus.publish(
            TraceRecord(1.0, "link.drop", "q", {"packet": data_packet(1, "S", "K", 1)})
        )
        assert stats.loss_rate() == pytest.approx(0.1)

    def test_loss_rate_idle_flow(self):
        assert FlowStats(flow_id=1).loss_rate() == 0.0
