"""Unit tests for sequence-number time series extraction."""

import pytest

from repro.metrics.flowstats import FlowStats
from repro.metrics.timeseries import SequenceTracer


class FakeSender:
    snd_una = 0
    recover = 0


def populated_stats():
    stats = FlowStats(flow_id=1)
    sender = FakeSender()
    stats.on_send(0.0, sender, 0, retransmit=False)
    stats.on_send(0.5, sender, 1, retransmit=False)
    stats.on_send(1.0, sender, 0, retransmit=True)
    stats.on_ack(0.4, sender, 1, duplicate=False)
    stats.on_ack(2.0, sender, 2, duplicate=False)
    return stats


class TestTrace:
    def test_series_split_by_kind(self):
        trace = SequenceTracer(populated_stats()).trace()
        assert trace.sends == [(0.0, 0), (0.5, 1)]
        assert trace.retransmits == [(1.0, 0)]
        assert trace.acks == [(0.4, 1), (2.0, 2)]

    def test_time_window_filter(self):
        trace = SequenceTracer(populated_stats()).trace(t_start=0.4, t_end=1.0)
        assert trace.sends == [(0.5, 1)]
        assert trace.retransmits == [(1.0, 0)]
        assert trace.acks == [(0.4, 1)]

    def test_final_sequence(self):
        trace = SequenceTracer(populated_stats()).trace()
        assert trace.final_sequence() == 2

    def test_final_sequence_empty(self):
        trace = SequenceTracer(FlowStats(flow_id=1)).trace()
        assert trace.final_sequence() == 0


class TestStalls:
    def test_detects_long_gap(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for t, ack in [(0.0, 1), (0.1, 2), (3.0, 3), (3.1, 4)]:
            stats.on_ack(t, sender, ack, duplicate=False)
        stalls = SequenceTracer(stats).stall_periods(threshold=1.0)
        assert stalls == [(0.1, 3.0)]

    def test_no_stalls_when_smooth(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for i in range(10):
            stats.on_ack(i * 0.1, sender, i, duplicate=False)
        assert SequenceTracer(stats).stall_periods(threshold=1.0) == []

    def test_trailing_stall_reported_with_t_end(self):
        # A flow that goes quiet: last ACK at 2.0, window ends at 6.0 —
        # the timeout plateau Figure 6(a) ends on.
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for t, ack in [(0.0, 1), (1.0, 2), (2.0, 3)]:
            stats.on_ack(t, sender, ack, duplicate=False)
        tracer = SequenceTracer(stats)
        assert tracer.stall_periods(threshold=2.0) == []
        assert tracer.stall_periods(threshold=2.0, t_end=6.0) == [(2.0, 6.0)]

    def test_trailing_stall_below_threshold_not_reported(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        stats.on_ack(5.5, sender, 1, duplicate=False)
        assert SequenceTracer(stats).stall_periods(threshold=1.0, t_end=6.0) == []

    def test_both_interior_and_trailing_stalls(self):
        stats = FlowStats(flow_id=1)
        sender = FakeSender()
        for t, ack in [(0.0, 1), (3.0, 2), (3.2, 3)]:
            stats.on_ack(t, sender, ack, duplicate=False)
        stalls = SequenceTracer(stats).stall_periods(threshold=1.0, t_end=6.0)
        assert stalls == [(0.0, 3.0), (3.2, 6.0)]

    def test_no_acks_counts_as_stalled_from_zero(self):
        tracer = SequenceTracer(FlowStats(flow_id=1))
        assert tracer.stall_periods(threshold=1.0, t_end=6.0) == [(0.0, 6.0)]
        assert tracer.stall_periods(threshold=1.0) == []
