"""Tests for the CSV/JSON/ns-trace exporters."""

import csv
import json

from repro.metrics.export import (
    NsTraceWriter,
    flow_stats_to_csv,
    rows_to_csv,
    rows_to_json,
)
from repro.metrics.flowstats import FlowStats
from repro.net.packet import data_packet
from repro.sim.tracing import TraceBus, TraceRecord


class FakeSender:
    snd_una = 0
    recover = 0


def populated_stats():
    stats = FlowStats(flow_id=1)
    sender = FakeSender()
    stats.on_send(0.0, sender, 0, retransmit=False)
    stats.on_send(1.0, sender, 0, retransmit=True)
    stats.on_ack(0.5, sender, 1, duplicate=False)
    stats.on_cwnd(0.5, sender, 2.5)
    return stats


class TestFlowStatsCsv:
    def test_writes_three_files(self, tmp_path):
        paths = flow_stats_to_csv(populated_stats(), tmp_path, prefix="f1")
        assert [p.name for p in paths] == ["f1_sends.csv", "f1_acks.csv", "f1_cwnd.csv"]
        assert all(p.exists() for p in paths)

    def test_send_rows_roundtrip(self, tmp_path):
        paths = flow_stats_to_csv(populated_stats(), tmp_path)
        with paths[0].open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["seqno"] == "0"
        assert rows[0]["retransmit"] == "0"
        assert rows[1]["retransmit"] == "1"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        flow_stats_to_csv(populated_stats(), target)
        assert target.exists()


class TestRowWriters:
    ROWS = [{"scheme": "rr", "kbps": 706.2}, {"scheme": "sack", "kbps": 691.6}]

    def test_csv_roundtrip(self, tmp_path):
        path = rows_to_csv(self.ROWS, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["scheme"] == "rr"
        assert float(rows[1]["kbps"]) == 691.6

    def test_empty_rows(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_json_roundtrip(self, tmp_path):
        path = rows_to_json(self.ROWS, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data[0]["scheme"] == "rr"
        assert len(data) == 2


class TestNsTraceWriter:
    def test_collects_send_drop_ack(self, tmp_path):
        bus = TraceBus()
        writer = NsTraceWriter(bus)
        bus.emit(0.1, "tcp.send", "rr/f1", seqno=5, retransmit=False)
        bus.publish(
            TraceRecord(0.2, "link.drop", "R1->R2", {"packet": data_packet(1, "S", "K", 5)})
        )
        bus.emit(0.3, "tcp.ack", "rr/f1", ackno=5, duplicate=False)
        bus.emit(0.4, "tcp.timeout", "rr/f1", snd_una=5)
        assert len(writer.lines) == 4
        assert writer.lines[0].startswith("+ 0.1")
        assert writer.lines[1].startswith("d 0.2")
        assert writer.lines[2].startswith("a 0.3")
        assert writer.lines[3].startswith("t 0.4")

    def test_flow_filter_on_drops(self):
        bus = TraceBus()
        writer = NsTraceWriter(bus, flow_id=2)
        bus.publish(
            TraceRecord(0.2, "link.drop", "q", {"packet": data_packet(1, "S", "K", 5)})
        )
        bus.publish(
            TraceRecord(0.3, "link.drop", "q", {"packet": data_packet(2, "S", "K", 7)})
        )
        assert len(writer.lines) == 1
        assert "f2" in writer.lines[0]

    def test_write_to_file(self, tmp_path):
        bus = TraceBus()
        writer = NsTraceWriter(bus)
        bus.emit(0.1, "tcp.send", "rr/f1", seqno=1)
        path = writer.write(tmp_path / "trace.tr")
        assert path.read_text().startswith("+ 0.1")

    def test_end_to_end_trace(self, tmp_path):
        """A real simulation produces a nonempty, time-ordered trace."""
        from repro.experiments.common import FlowSpec, build_dumbbell_scenario
        from repro.net.loss import DeterministicLoss
        from repro.net.topology import DumbbellParams
        from repro.sim.engine import Simulator
        from repro.tcp.factory import make_connection
        from repro.app.ftp import FtpSource
        from repro.net.topology import Dumbbell

        sim = Simulator()
        bell = Dumbbell(
            sim,
            DumbbellParams(n_pairs=1, buffer_packets=25),
            forward_loss=DeterministicLoss([(1, 20)]),
        )
        writer = NsTraceWriter(bell.net.trace, flow_id=1)
        sender, _ = make_connection(
            sim, "rr", 1, bell.sender(1), bell.receiver(1), trace=bell.net.trace
        )
        FtpSource(sim, sender, amount_packets=60)
        sim.run(until=60.0)
        assert sender.completed
        times = [float(line.split()[1]) for line in writer.lines]
        assert times == sorted(times)
        assert any(line.startswith("d ") for line in writer.lines)
