"""Tests for the digest-keyed snapshot store."""

import pytest

from repro.errors import SnapshotError
from repro.runner import SnapshotStore
from repro.snapshot import Snapshot, state_digest
from repro.snapshot.golden import build_golden_scenario


def _snapshot(variant="reno", until=1.0):
    world = build_golden_scenario(variant)
    world.sim.run(until=until)
    return Snapshot.capture(world, label=f"{variant}@{until:g}")


class TestSnapshotStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snapshot = _snapshot()
        digest = store.put(snapshot)
        assert digest == snapshot.digest
        assert store.contains(digest)
        restored = store.get(digest).restore()
        assert state_digest(restored) == digest

    def test_put_is_idempotent(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snapshot = _snapshot()
        store.put(snapshot)
        mtime = store.path_for(snapshot.digest).stat().st_mtime_ns
        store.put(snapshot)
        assert store.path_for(snapshot.digest).stat().st_mtime_ns == mtime

    def test_distinct_states_get_distinct_keys(self, tmp_path):
        store = SnapshotStore(tmp_path)
        a = store.put(_snapshot(until=1.0))
        b = store.put(_snapshot(until=2.0))
        assert a != b
        assert store.contains(a) and store.contains(b)

    def test_missing_digest_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError, match="no snapshot"):
            store.get("f" * 64)

    def test_info_reads_header_only(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snapshot = _snapshot()
        store.put(snapshot)
        info = store.info(snapshot.digest)
        assert info.digest == snapshot.digest
        assert info.label == snapshot.info.label

    def test_default_root_follows_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        store = SnapshotStore()
        assert str(store.root).startswith(str(tmp_path / "cache"))
