"""Fork semantics + the warm-started Figure-5 sweep."""

from repro.experiments.figure5 import (
    Figure5Config,
    capture_warm_snapshot,
    run_figure5,
)
from repro.net.packet import set_uid_state
from repro.runner import SnapshotStore, SweepRunner
from repro.snapshot import Snapshot, state_digest
from repro.snapshot.golden import build_golden_scenario

QUICK = Figure5Config(
    variants=("newreno", "rr"),
    drop_counts=(3, 6),
    transfer_packets=300,
    sim_duration=40.0,
)


class TestFork:
    def test_forks_are_independent_worlds(self):
        world = build_golden_scenario("rr")
        world.sim.run(until=1.0)
        snapshot = Snapshot.capture(world)
        forks = snapshot.fork(2)
        assert forks[0] is not forks[1]
        forks[0].senders[1].cwnd = 999.0
        assert forks[1].senders[1].cwnd != 999.0

    def test_mutate_hook_applied_per_fork(self):
        world = build_golden_scenario("rr")
        world.sim.run(until=1.0)
        snapshot = Snapshot.capture(world)

        def tag(world, index):
            world.fork_index = index

        forks = snapshot.fork(3, mutate=tag)
        assert [w.fork_index for w in forks] == [0, 1, 2]

    def test_sequential_forks_run_identically(self):
        """Two forks of one snapshot, run one after the other in the
        same process, finish in identical states (the uid counter is
        re-rewound between runs)."""
        world = build_golden_scenario("sack")
        world.sim.run(until=1.0)
        snapshot = Snapshot.capture(world)
        digests = []
        for world in snapshot.fork(2):
            set_uid_state(snapshot.uid_next)
            world.sim.run(until=20.0)
            digests.append(state_digest(world))
        assert digests[0] == digests[1]


class TestWarmStartedFigure5:
    def test_warm_rows_bit_identical_to_cold(self, tmp_path):
        cold = run_figure5(QUICK, runner=SweepRunner())
        store = SnapshotStore(tmp_path / "snaps")
        warm = run_figure5(
            QUICK, runner=SweepRunner(), warm_start=True, store=store
        )
        assert warm.rows == cold.rows

    def test_parallel_forks_bit_identical_to_serial(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        serial = run_figure5(
            QUICK, runner=SweepRunner(jobs=1), warm_start=True, store=store
        )
        parallel = run_figure5(
            QUICK, runner=SweepRunner(jobs=2), warm_start=True, store=store
        )
        assert parallel.rows == serial.rows

    def test_warm_prefix_stops_short_of_the_loss_point(self):
        snapshot = capture_warm_snapshot("newreno", QUICK)
        world = snapshot.restore()
        assert world.senders[1].maxseq < QUICK.first_drop_seq
