"""Delta snapshots: bit-identical rebuilds, sizing, persistence."""

import pytest

from repro.errors import SnapshotError
from repro.snapshot import Snapshot, state_digest
from repro.snapshot.delta import DeltaSnapshot, should_fall_back
from repro.snapshot.golden import GOLDEN_VARIANTS, build_golden_scenario


def _base_and_fork(variant, base_t=2.0, fork_t=6.0):
    """One golden world captured in slow-start (base) and again
    mid-recovery (fork) — the shape every warm cell and triage fork
    has: same topology, diverged late-stream state."""
    world = build_golden_scenario(variant)
    world.sim.run(until=base_t)
    base = Snapshot.capture(world, label=f"{variant} base")
    world.sim.run(until=fork_t)
    fork = Snapshot.capture(world, label=f"{variant} fork")
    return base, fork


class TestDiffRebuild:
    @pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
    def test_rebuild_is_bit_identical_mid_recovery(self, variant):
        base, fork = _base_and_fork(variant)
        delta = DeltaSnapshot.diff(fork, base)
        rebuilt = delta.rebuild(base)
        assert rebuilt.payload == fork.payload
        assert rebuilt.info == fork.info
        assert state_digest(rebuilt.restore()) == fork.digest

    def test_delta_is_smaller_than_full_for_a_fork(self):
        base, fork = _base_and_fork("rr")
        delta = DeltaSnapshot.diff(fork, base)
        assert delta.nbytes < fork.nbytes
        assert not should_fall_back(delta, fork)

    def test_self_delta_changes_nothing(self):
        base, _ = _base_and_fork("reno")
        delta = DeltaSnapshot.diff(base, base)
        assert delta.changed_sections == []
        assert delta.nbytes == 0
        assert delta.rebuild(base).payload == base.payload

    def test_wrong_base_is_refused(self):
        base, fork = _base_and_fork("reno")
        other, _ = _base_and_fork("sack")
        delta = DeltaSnapshot.diff(fork, base)
        with pytest.raises(SnapshotError, match="expects base"):
            delta.rebuild(other)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        base, fork = _base_and_fork("newreno")
        delta = DeltaSnapshot.diff(fork, base)
        path = delta.save(tmp_path / "fork.delta")
        loaded = DeltaSnapshot.load(path)
        assert loaded.info == delta.info
        assert loaded.rebuild(base).payload == fork.payload

    def test_read_info_without_body(self, tmp_path):
        base, fork = _base_and_fork("tahoe")
        path = DeltaSnapshot.diff(fork, base).save(tmp_path / "fork.delta")
        info = DeltaSnapshot.read_info(path)
        assert info.digest == fork.digest
        assert info.base_digest == base.digest

    def test_non_delta_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.delta"
        path.write_bytes(b"{}\n")
        with pytest.raises(SnapshotError, match="not a delta"):
            DeltaSnapshot.load(path)
