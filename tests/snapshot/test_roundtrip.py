"""Bit-identical continuation: the snapshot subsystem's correctness bar.

For every TCP variant: run the golden scenario until the sender is
inside loss recovery, capture, continue the *original* to the end, then
restore the snapshot and run the copy to the end.  Both the continued
original and the restored copy must match an uninterrupted reference
run exactly — same FlowStats series, same final canonical state digest.
"""

import pytest

from repro.errors import SnapshotError
from repro.faults.campaign import CampaignRunner, CampaignSpec
from repro.faults.plan import FaultContext
from repro.snapshot import GOLDEN_VARIANTS, Snapshot, state_digest
from repro.snapshot.golden import build_golden_scenario

END_TIME = 40.0


def _run_to_mid_recovery(scenario):
    """Step until the flow is mid-recovery (Tahoe has no recovery phase
    flag — its marker is the first fast retransmit)."""
    sender = scenario.senders[1]
    while not (sender.in_recovery or sender.retransmits > 0):
        assert scenario.sim.now < 30.0, "never reached the loss episode"
        scenario.sim.run(until=scenario.sim.now + 0.02)
    return scenario


@pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
class TestBitIdenticalContinuation:
    def test_restore_matches_uninterrupted_run(self, variant):
        reference = build_golden_scenario(variant)
        reference.sim.run(until=END_TIME)
        reference_digest = state_digest(reference)
        reference_stats = reference.stats[1]

        world = _run_to_mid_recovery(build_golden_scenario(variant))
        snapshot = Snapshot.capture(world, label=f"{variant} mid-recovery")

        # Capture must not perturb: the original continues identically.
        world.sim.run(until=END_TIME)
        assert state_digest(world) == reference_digest

        restored = snapshot.restore()
        assert restored is not world
        assert state_digest(restored) == snapshot.digest
        restored.sim.run(until=END_TIME)

        stats = restored.stats[1]
        assert stats.ack_series == reference_stats.ack_series
        assert stats.send_series == reference_stats.send_series
        assert stats.cwnd_series == reference_stats.cwnd_series
        assert stats.episodes == reference_stats.episodes
        assert state_digest(restored) == reference_digest

    def test_save_load_roundtrip(self, variant, tmp_path):
        world = _run_to_mid_recovery(build_golden_scenario(variant))
        snapshot = Snapshot.capture(world)
        path = snapshot.save(tmp_path / f"{variant}.snap")

        info = Snapshot.read_info(path)
        assert info.digest == snapshot.digest
        assert info.sim_time == snapshot.sim_time

        loaded = Snapshot.load(path)
        restored = loaded.restore()
        assert state_digest(restored) == snapshot.digest


class TestFaultPlanResumability:
    def test_mid_campaign_snapshot_continues_identically(self):
        """A world with an installed fault plan (scheduled outages,
        tamper chains) snapshots mid-campaign and resumes exactly."""

        def build():
            scenario = build_golden_scenario("newreno")
            campaign = CampaignRunner(
                seed=97, spec=CampaignSpec(horizon=8.0, warmup=1.0, max_actions=3)
            )
            plan = campaign.plan_for(0)
            plan.install(FaultContext.from_scenario(scenario))
            return scenario

        reference = build()
        reference.sim.run(until=END_TIME)
        reference_digest = state_digest(reference)

        world = build()
        world.sim.run(until=3.0)  # inside the campaign window
        snapshot = Snapshot.capture(world, label="mid-campaign")
        restored = snapshot.restore()
        restored.sim.run(until=END_TIME)
        assert state_digest(restored) == reference_digest


class TestCaptureGuards:
    def test_capture_while_running_raises(self):
        scenario = build_golden_scenario("reno")
        sim = scenario.sim
        failure = {}

        def grab():
            try:
                Snapshot.capture(scenario)
            except SnapshotError as exc:
                failure["error"] = exc

        sim.schedule(0.5, grab)
        sim.run(until=1.0)
        assert "error" in failure
        assert "running" in str(failure["error"])

    def test_unpicklable_world_raises_snapshot_error(self):
        scenario = build_golden_scenario("reno")
        scenario.sim.run(until=1.0)
        # A closure in a scheduled event is the canonical capture-killer.
        scenario.sim.schedule(5.0, lambda: None)
        with pytest.raises(SnapshotError, match="picklable"):
            Snapshot.capture(scenario)

    def test_world_without_simulator_rejected(self):
        with pytest.raises(SnapshotError, match="Simulator"):
            Snapshot.capture(object())

    def test_corrupted_payload_fails_digest_verification(self, tmp_path):
        scenario = build_golden_scenario("reno")
        scenario.sim.run(until=1.0)
        snapshot = Snapshot.capture(scenario)
        # Tamper with the recorded digest: restore must notice.
        import dataclasses

        snapshot.info = dataclasses.replace(snapshot.info, digest="0" * 64)
        with pytest.raises(SnapshotError, match="digest"):
            snapshot.restore()
