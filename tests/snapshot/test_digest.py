"""Tests for the canonical state digest."""

import random

import pytest

from repro.errors import SnapshotError
from repro.snapshot import state_digest, state_fingerprints


class Plain:
    def __init__(self, **kw):
        self.__dict__.update(kw)

    def ping(self):
        return self.__dict__


class TestCanonicalization:
    def test_deterministic_across_calls(self):
        obj = {"a": [1, 2.5, "x"], "b": (True, None, b"raw")}
        assert state_digest(obj) == state_digest(obj)

    def test_dict_key_order_irrelevant_for_primitive_keys(self):
        assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})
        assert state_digest({1: "x", 2: "y"}) == state_digest({2: "y", 1: "x"})

    def test_set_iteration_order_irrelevant(self):
        # Same elements inserted in different orders hash identically —
        # the property that makes digests PYTHONHASHSEED-independent.
        a = set()
        b = set()
        for item in [(1, 100), (1, 101), (2, 7), ("flow", 3)]:
            a.add(item)
        for item in [("flow", 3), (2, 7), (1, 101), (1, 100)]:
            b.add(item)
        assert state_digest(a) == state_digest(b)

    def test_value_differences_detected(self):
        assert state_digest({"a": 1}) != state_digest({"a": 2})
        assert state_digest([1, 2]) != state_digest([2, 1])
        assert state_digest(1.0) != state_digest(1)
        assert state_digest("1") != state_digest(1)
        assert state_digest(set()) != state_digest({})

    def test_float_precision_preserved(self):
        assert state_digest(0.1 + 0.2) != state_digest(0.3)

    def test_shared_object_vs_equal_copies(self):
        # One list referenced twice is not the same state as two equal
        # lists: mutating through one alias diverges differently.
        shared = [1, 2]
        assert state_digest([shared, shared]) != state_digest([[1, 2], [1, 2]])

    def test_cycles_terminate(self):
        a = Plain(name="a")
        b = Plain(name="b", peer=a)
        a.peer = b
        digest = state_digest(a)
        assert isinstance(digest, str) and len(digest) == 64

    def test_random_state_encoded(self):
        rng = random.Random(7)
        before = state_digest(rng)
        rng.random()
        assert state_digest(rng) != before

    def test_bound_method_encodes_function_and_receiver(self):
        a = Plain(x=1)
        b = Plain(x=2)
        hook_a = {"cb": a.ping, "owner": a}
        hook_b = {"cb": b.ping, "owner": b}
        assert state_digest(hook_a) != state_digest(hook_b)

    def test_object_uses_getstate(self):
        class Canonical:
            def __init__(self):
                self.visible = 1
                self.cache = object()  # undigestable, must be excluded

            def __getstate__(self):
                return {"visible": self.visible}

        assert state_digest(Canonical()) == state_digest(Canonical())

    def test_undigestable_object_raises(self):
        class Bad:
            def __getstate__(self):
                raise RuntimeError("nope")

        with pytest.raises(SnapshotError):
            state_digest(Bad())


class TestFingerprints:
    def test_names_the_drifted_section(self):
        a = Plain(clock=1.0, queue=[1, 2], stats={"acks": 5})
        b = Plain(clock=1.0, queue=[1, 2], stats={"acks": 6})
        fa = state_fingerprints(a)
        fb = state_fingerprints(b)
        assert set(fa) == {"clock", "queue", "stats"}
        assert fa["clock"] == fb["clock"]
        assert fa["queue"] == fb["queue"]
        assert fa["stats"] != fb["stats"]
