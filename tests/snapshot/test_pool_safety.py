"""Object pools vs snapshots: recycling must never leak into captures.

The packet pool and the engine's event free list recycle dead objects
on the hot path.  Snapshot.capture drains both first, so a pickled
world can never reach pooled garbage and a restored continuation starts
from the same (empty-pool) allocator state as the uninterrupted
original.  These tests pin that contract mid-recovery — the pools are
hottest exactly when a TCP sender is retransmitting — across every
golden variant, plus a leak/balance check over a full figure5 cell.
"""

import pytest

from repro.experiments.figure5 import Figure5Config, run_single
from repro.net.packet import drain_packet_pool, packet_pool, set_uid_state
from repro.snapshot import Snapshot, state_digest
from repro.snapshot.golden import build_golden_scenario

#: Mid-recovery checkpoint: the golden scenario's engineered 3-drop
#: burst hits around t=2-3s; by t=6 every variant is inside (or just
#: completing) loss recovery with retransmissions in flight.
MID_RECOVERY_T = 6.0

VARIANTS = ("tahoe", "reno", "newreno", "sack", "rr")


def run_to_recovery(variant):
    scenario = build_golden_scenario(variant)
    scenario.sim.run(until=MID_RECOVERY_T)
    return scenario


class TestCaptureDrainsPools:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_capture_restore_roundtrip_with_active_pools(self, variant):
        scenario = run_to_recovery(variant)
        # The run above recycled packets and events; both pools may be
        # non-empty right now.  Capture must drain them and still
        # round-trip bit-identically.
        snapshot = Snapshot.capture(scenario)
        assert packet_pool().stats()["free"] == 0
        assert len(scenario.sim._event_free) == 0
        restored = snapshot.restore()  # verify=True re-checks the digest
        assert state_digest(restored) == snapshot.digest

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fork_continuations_bit_identical(self, variant):
        scenario = run_to_recovery(variant)
        snapshot = Snapshot.capture(scenario)
        digests = []
        for world in snapshot.fork(2):
            set_uid_state(snapshot.uid_next)
            world.sim.run(until=12.0)
            digests.append(state_digest(world))
        assert digests[0] == digests[1]

    def test_restored_world_runs_like_the_original(self):
        # The uninterrupted original and a restored continuation agree
        # at the end even though the original keeps recycling through
        # pools the restore never saw.
        original = run_to_recovery("rr")
        snapshot = Snapshot.capture(original)
        original.sim.run(until=12.0)
        final = state_digest(original)
        restored = snapshot.restore()
        restored.sim.run(until=12.0)
        assert state_digest(restored) == final


class TestPoolBalance:
    def test_figure5_cell_returns_every_pooled_object(self):
        # A full figure5 cell (build, transfer, engineered burst,
        # recovery, completion): every packet the pool handed out was
        # either recycled back or skipped-and-GC'd — the pool never
        # grows past its released minus reused balance, and draining
        # accounts for every free-list entry.
        pool = packet_pool()
        drain_packet_pool()
        base = pool.stats()
        config = Figure5Config(transfer_packets=300, sim_duration=40.0)
        row = run_single("rr", 3, config)
        assert row.completed
        stats = pool.stats()
        released = stats["released"] - base["released"]
        reused = stats["reused"] - base["reused"]
        assert released > 0, "the cell must actually exercise the pool"
        assert reused <= released
        # Everything still parked in the free list is exactly the
        # released-but-not-yet-reused surplus (no double releases, no
        # objects lost between the free list and the counters).
        assert stats["free"] <= released - reused + base["free"]
        drained = drain_packet_pool()
        assert drained == stats["free"]
        assert pool.stats()["free"] == 0

    def test_event_pool_drain_reports_and_empties(self):
        scenario = run_to_recovery("reno")
        sim = scenario.sim
        free_before = len(sim._event_free)
        drained = sim.drain_event_pool()
        assert drained == free_before
        assert len(sim._event_free) == 0
        # The engine keeps running fine with a cold pool.
        sim.run(until=MID_RECOVERY_T + 1.0)
