"""Golden-state regression: committed digests per variant per checkpoint.

A mismatch here means a TCP variant (or the engine, or the digest
encoding) changed behavior.  If the change is intentional, regenerate
with ``python scripts/update_golden.py`` and commit the diff; if not,
the test writes a state-diff report naming the drifted sections to
``$REPRO_ARTIFACT_DIR`` (when set) so CI uploads it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.snapshot import (
    CHECKPOINT_TIMES,
    DIGEST_VERSION,
    GOLDEN_VARIANTS,
    golden_digests,
    state_fingerprints,
)
from repro.snapshot.golden import build_golden_scenario

GOLDEN_FILE = Path(__file__).parent.parent / "golden" / "state_digests.json"


@pytest.fixture(scope="module")
def committed():
    return json.loads(GOLDEN_FILE.read_text())


def _write_drift_report(variant, mismatches):
    artifact_dir = os.environ.get("REPRO_ARTIFACT_DIR")
    if not artifact_dir:
        return None
    scenario = build_golden_scenario(variant)
    lines = [f"=== golden state drift: {variant} ==="]
    for checkpoint, expected, got in mismatches:
        lines.append(f"{checkpoint}: expected {expected}")
        lines.append(f"{' ' * len(checkpoint)}  got      {got}")
    # Fingerprint the world at the first drifted checkpoint so the
    # report names sections, not just one opaque hash.
    first = float(mismatches[0][0].split("=", 1)[1])
    scenario.sim.run(until=first)
    lines.append(f"per-section fingerprints at t={first:g}:")
    for name, digest in state_fingerprints(scenario).items():
        lines.append(f"  {name:<12} {digest}")
    lines.append("")
    path = Path(artifact_dir)
    path.mkdir(parents=True, exist_ok=True)
    report = path / "golden-state-drift.txt"
    with open(report, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return report


class TestGoldenFile:
    def test_digest_version_matches(self, committed):
        assert committed["digest_version"] == DIGEST_VERSION, (
            "digest encoding changed: regenerate tests/golden/"
            "state_digests.json with scripts/update_golden.py"
        )

    def test_checkpoints_match(self, committed):
        assert tuple(committed["checkpoint_times"]) == CHECKPOINT_TIMES

    def test_every_variant_committed(self, committed):
        assert set(committed["digests"]) == set(GOLDEN_VARIANTS)


@pytest.mark.parametrize("variant", GOLDEN_VARIANTS)
def test_variant_state_matches_golden(variant, committed):
    expected = committed["digests"][variant]
    actual = golden_digests(variant)
    mismatches = [
        (checkpoint, expected[checkpoint], actual[checkpoint])
        for checkpoint in expected
        if actual.get(checkpoint) != expected[checkpoint]
    ]
    if mismatches:
        report = _write_drift_report(variant, mismatches)
        where = f" (report: {report})" if report else ""
        pytest.fail(
            f"{variant} drifted at {[m[0] for m in mismatches]}{where} — "
            "if intentional, run scripts/update_golden.py and commit"
        )


class TestDigestSensitivity:
    def test_one_line_variant_change_flips_the_digest(self, committed, monkeypatch):
        """The golden layer's reason to exist: a one-line behavioral
        tweak to a variant must flip its digests."""
        from repro.core.robust_recovery import RobustRecoverySender

        original = RobustRecoverySender._recovery_dupack

        def tweaked(self, packet):
            original(self, packet)
            self.ndup += 1  # the intentional one-line change

        monkeypatch.setattr(RobustRecoverySender, "_recovery_dupack", tweaked)
        perturbed = golden_digests("rr")
        expected = committed["digests"]["rr"]
        # Recovery starts after the first checkpoint, so at least the
        # later checkpoints must drift.
        assert perturbed != expected
        assert perturbed["t=12"] != expected["t=12"]
