"""The rivals harness: modern senders vs RR under modern regimes."""

import dataclasses

import pytest

from repro.experiments import rivals
from repro.experiments.export_results import export_result
from repro.obs.manifest import RunManifest
from repro.runner import SweepRunner

QUICK = rivals.RivalsConfig(
    rivals=("cubic", "relentless"),
    regimes=("delack", "ecn-red", "mobile"),
    flows_per_side=2,
    duration=8.0,
    warmup=2.0,
    model_loss_rates=(0.03,),
    model_duration=30.0,
    seed=11,
)


@pytest.fixture(scope="module")
def quick_result():
    return rivals.run_rivals(dataclasses.replace(QUICK))


def test_grid_shape(quick_result):
    # Per regime: one match cell per rival, plus pure baselines for rr
    # and each rival; model cells ride along once per loss rate.
    n_regimes, n_rivals = len(QUICK.regimes), len(QUICK.rivals)
    match = [c for c in quick_result.cells if c.kind == "match"]
    pure = [c for c in quick_result.cells if c.kind == "pure"]
    model = [c for c in quick_result.cells if c.kind == "model"]
    assert len(match) == n_regimes * n_rivals
    assert len(pure) == n_regimes * (n_rivals + 1)
    assert len(model) == len(QUICK.model_loss_rates)
    assert len(quick_result.rows) == len(match)


def test_match_cells_carry_both_groups(quick_result):
    for cell in quick_result.cells:
        if cell.kind != "match":
            continue
        assert cell.rr_goodput_bps > 0, cell.label
        assert cell.rival_goodput_bps > 0, cell.label
        assert 0.0 < cell.jain <= 1.0
        assert cell.events > 0


def test_regimes_shape_tcp_config():
    config = dataclasses.replace(QUICK)
    delack = rivals._regime_tcp_config("delack", config)
    ecn = rivals._regime_tcp_config("ecn-red", config)
    wired = rivals._regime_tcp_config("wired", config)
    assert delack.delayed_ack and not delack.ecn_enabled
    assert ecn.ecn_enabled and not ecn.delayed_ack
    assert not wired.delayed_ack and not wired.ecn_enabled
    forced = rivals._regime_tcp_config(
        "wired", dataclasses.replace(config, force_delayed_ack=True, force_ecn=True)
    )
    assert forced.delayed_ack and forced.ecn_enabled


def test_model_cell_verdict(quick_result):
    model = [c for c in quick_result.cells if c.kind == "model"]
    assert model and all(c.verdict is not None for c in model)
    for cell in model:
        assert cell.verdict.passed, cell.verdict.format()
    assert quick_result.all_passed


def test_mobile_cells_share_channel_trace():
    config = dataclasses.replace(QUICK)
    a = rivals.mobile_schedule(config)
    b = rivals.mobile_schedule(config)
    assert a.steps == b.steps  # same seed, same channel for every cell


def test_serial_equals_parallel():
    config = dataclasses.replace(QUICK, duration=6.0, warmup=1.5)
    serial = rivals.run_rivals(
        dataclasses.replace(config), runner=SweepRunner(jobs=1, cache=None)
    )
    parallel = rivals.run_rivals(
        dataclasses.replace(config), runner=SweepRunner(jobs=2, cache=None)
    )
    assert serial.cells == parallel.cells
    assert serial.rows == parallel.rows


def test_warm_start_matches_cold(tmp_path):
    from repro.runner import SnapshotStore

    config = dataclasses.replace(QUICK, duration=6.0, warmup=1.5)
    cold = rivals.run_rivals(dataclasses.replace(config))
    store = SnapshotStore(tmp_path / "snaps")
    warm = rivals.run_rivals(
        dataclasses.replace(config), warm_start="force", store=store
    )
    assert store.prefix_captures >= 1
    assert warm.cells == cold.cells


def test_manifest_records_model_verdicts():
    manifest = RunManifest.begin("rivals", fingerprint="test")
    result = rivals.run_rivals(dataclasses.replace(QUICK), manifest=manifest)
    model = [c for c in result.cells if c.kind == "model"]
    assert manifest.oracle is not None and len(manifest.oracle) == len(model)
    entry = manifest.oracle[0]
    assert entry["passed"] == model[0].verdict.passed
    loaded = RunManifest.from_json(manifest.to_json())
    assert loaded.oracle == manifest.oracle


def test_reduce_reports_friendliness(quick_result):
    for row in quick_result.rows:
        assert 0.0 < row.rival_share < 1.0
        assert row.friendliness > 0.0
        assert row.rr_retained > 0.0


def test_format_report(quick_result):
    report = rivals.format_report(quick_result)
    assert "share" in report
    assert "relentless-model" in report
    assert "within tolerance" in report


def test_export_rows(tmp_path, quick_result):
    paths = export_result("rivals", quick_result, tmp_path)
    assert sorted(p.name for p in paths) == ["rivals.csv", "rivals.json"]
    text = (tmp_path / "rivals.csv").read_text()
    assert "oracle_passed" in text
    assert "relentless" in text
