"""Tests for the experiment harnesses: each must run at reduced scale,
return structured results, and reproduce the paper's qualitative shape.
(The full-scale runs live in benchmarks/.)
"""

import pytest

from repro.experiments.ablation import AblationConfig, run_ablation
from repro.experiments.ackloss import AckLossConfig, run_ackloss
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.experiments.figure5 import Figure5Config, format_report as fig5_report, run_figure5
from repro.experiments.figure6 import Figure6Config, format_report as fig6_report, run_figure6
from repro.experiments.figure7 import Figure7Config, format_report as fig7_report, run_figure7
from repro.experiments.table5 import Table5Config, format_report as t5_report, run_table5
from repro.errors import ConfigurationError


class TestCommonBuilder:
    def test_requires_flows(self):
        with pytest.raises(ConfigurationError):
            build_dumbbell_scenario(flows=[])

    def test_flow_ids_are_one_based(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr"), FlowSpec(variant="reno")]
        )
        assert set(scenario.senders) == {1, 2}
        assert scenario.senders[1].variant == "rr"
        assert scenario.senders[2].variant == "reno"

    def test_pairs_grow_to_fit_flows(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr") for _ in range(5)]
        )
        assert len(scenario.dumbbell.senders) == 5


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure5Config(transfer_packets=300, sim_duration=30.0)
        return run_figure5(config)

    def test_all_cells_present(self, result):
        assert len(result.rows) == len(result.config.variants) * 2

    def test_every_scheme_recovered(self, result):
        for row in result.rows:
            assert row.recovery_throughput_bps is not None
            assert row.completed

    def test_paper_shape_rr_vs_newreno(self, result):
        rr = result.row("rr", 6).recovery_throughput_bps
        newreno = result.row("newreno", 6).recovery_throughput_bps
        assert rr > 1.5 * newreno

    def test_paper_shape_tahoe_vs_newreno_heavy(self, result):
        assert (
            result.row("tahoe", 6).recovery_throughput_bps
            > result.row("newreno", 6).recovery_throughput_bps
        )

    def test_report_renders(self, result):
        text = fig5_report(result)
        assert "6 packet losses" in text
        assert "rr" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6(Figure6Config(duration=4.0))

    def test_all_variants_present(self, result):
        assert set(result.flows) == {"newreno", "sack", "rr"}

    def test_rr_ahead_of_newreno(self, result):
        assert result.flows["rr"].final_ack > result.flows["newreno"].final_ack

    def test_traces_populated(self, result):
        for flow in result.flows.values():
            assert flow.trace.sends
            assert flow.trace.acks

    def test_report_renders(self, result):
        text = fig6_report(result, plots=True)
        assert "final pkt" in text
        assert "--- rr (flow 1) ---" in text
        assert "fleet-wide" in text

    def test_fleet_aggregates_populated(self, result):
        for flow in result.flows.values():
            assert flow.fleet_goodput_bps > 0
            assert 0.0 < flow.fleet_jain <= 1.0
            assert flow.fleet_timeouts >= flow.timeouts


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure7Config(
            loss_rates=(0.01, 0.05), duration=30.0, runs_per_point=1
        )
        return run_figure7(config)

    def test_grid_complete(self, result):
        assert len(result.points) == 4  # 2 variants x 2 rates

    def test_window_decreases_with_loss(self, result):
        for variant in ("sack", "rr"):
            series = dict(result.series(variant))
            assert series[0.01] > series[0.05]

    def test_measured_below_model_at_high_loss(self, result):
        for point in result.points:
            if point.loss_rate >= 0.05:
                assert point.window < point.model_window * 1.1

    def test_report_renders(self, result):
        text = fig7_report(result, plot=True)
        assert "model" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(Table5Config(sim_duration=90.0, runs_per_case=2))

    def test_four_cases(self, result):
        assert len(result.rows) == 4

    def test_target_always_finishes(self, result):
        for row in result.rows:
            assert row.transfer_delay is not None

    def test_reno_not_hurt_by_rr_background(self, result):
        reno_reno = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("reno", "reno")
        )
        reno_rr = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("reno", "rr")
        )
        assert reno_rr.transfer_delay <= reno_reno.transfer_delay * 1.1

    def test_rr_target_interoperates_among_renos(self, result):
        """The robust part of the paper's claim: an RR target among
        Renos is not *penalised* (the strict single-run "RR wins" did
        not survive replication — see EXPERIMENTS.md)."""
        baseline = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("reno", "reno")
        )
        rr_target = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("rr", "reno")
        )
        assert rr_target.transfer_delay < baseline.transfer_delay * 1.35
        assert rr_target.loss_rate <= baseline.loss_rate + 0.05

    def test_all_rr_fleet_is_best_for_everyone(self, result):
        baseline = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("reno", "reno")
        )
        all_rr = next(
            r for r in result.rows
            if (r.target_variant, r.background_variant) == ("rr", "rr")
        )
        assert all_rr.transfer_delay <= baseline.transfer_delay * 1.1
        assert all_rr.loss_rate <= baseline.loss_rate + 0.02

    def test_report_renders(self, result):
        assert "target/background" in t5_report(result)


class TestAckLoss:
    @pytest.fixture(scope="class")
    def result(self):
        config = AckLossConfig(
            ack_loss_rates=(0.0, 0.2), runs_per_point=1, sim_duration=30.0
        )
        return run_ackloss(config)

    def test_grid_complete(self, result):
        assert len(result.rows) == 6  # 3 variants x 2 rates

    def test_rr_degrades_gracefully(self, result):
        rr_clean = next(
            r for r in result.rows if r.variant == "rr" and r.ack_loss_rate == 0.0
        )
        rr_lossy = next(
            r for r in result.rows if r.variant == "rr" and r.ack_loss_rate == 0.2
        )
        assert rr_lossy.goodput_bps > 0.2 * rr_clean.goodput_bps


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation(AblationConfig(transfer_packets=300, sim_duration=30.0))

    def test_all_configurations_ran(self, result):
        assert len(result.rows) == 5

    def test_retreat_always_hurts(self, result):
        full = next(r for r in result.rows if r.name == "rr")
        crippled = next(r for r in result.rows if r.name == "rr-retreat-always")
        assert crippled.recovery_throughput_bps < full.recovery_throughput_bps
