"""The manyflow harness: sweep, oracle wiring, parallel determinism."""

import dataclasses

import pytest

from repro.experiments import manyflow
from repro.experiments.export_results import export_result
from repro.obs.manifest import RunManifest
from repro.runner import SweepRunner

QUICK = manyflow.ManyflowConfig(
    flow_counts=(12,), max_ps=(0.02,), duration=6.0, seed=5
)


@pytest.fixture(scope="module")
def quick_result():
    return manyflow.run_manyflow(dataclasses.replace(QUICK))


def test_quick_sweep_passes_oracle(quick_result):
    assert len(quick_result.cells) == 1
    cell = quick_result.cells[0]
    assert cell.verdict is not None
    assert cell.verdict.passed, cell.verdict.format()
    assert quick_result.all_passed
    assert cell.events > 0
    assert 0.0 <= cell.measured_loss < 1.0


def test_cell_spec_scales_bandwidth_with_flows():
    small = manyflow.cell_spec(10, 0.02, dataclasses.replace(QUICK))
    large = manyflow.cell_spec(100, 0.02, dataclasses.replace(QUICK))
    assert (
        large.topology.bottleneck_bandwidth_bps
        == 10 * small.topology.bottleneck_bandwidth_bps
    )
    assert small.digest() != large.digest()


def test_serial_equals_parallel():
    serial = manyflow.run_manyflow(
        dataclasses.replace(QUICK), runner=SweepRunner(jobs=1, cache=None)
    )
    parallel = manyflow.run_manyflow(
        dataclasses.replace(QUICK), runner=SweepRunner(jobs=2, cache=None)
    )
    assert serial.cells == parallel.cells


def test_manifest_records_oracle_verdicts():
    manifest = RunManifest.begin("manyflow", fingerprint="test")
    result = manyflow.run_manyflow(dataclasses.replace(QUICK), manifest=manifest)
    assert manifest.oracle is not None and len(manifest.oracle) == 1
    entry = manifest.oracle[0]
    assert entry["passed"] == result.cells[0].verdict.passed
    assert entry["label"] == result.cells[0].label
    assert entry["regime"] == result.cells[0].verdict.regime
    # The verdict survives the manifest's JSON round trip.
    loaded = RunManifest.from_json(manifest.to_json())
    assert loaded.oracle == manifest.oracle


def test_multibottleneck_family_skips_oracle():
    config = manyflow.ManyflowConfig(
        family="parkinglot", flow_counts=(8,), max_ps=(0.02,), duration=4.0
    )
    result = manyflow.run_manyflow(config)
    assert result.cells[0].verdict is None
    assert result.all_passed  # vacuously: nothing checked, nothing failed
    report = manyflow.format_report(result)
    assert "no oracle" in report


def test_format_report_mentions_verdict(quick_result):
    report = manyflow.format_report(quick_result)
    assert "PASS" in report
    assert "within tolerance" in report


def test_export_rows(tmp_path, quick_result):
    paths = export_result("manyflow", quick_result, tmp_path)
    assert sorted(p.name for p in paths) == ["manyflow.csv", "manyflow.json"]
    text = (tmp_path / "manyflow.csv").read_text()
    assert "oracle_passed" in text


def test_warm_start_matches_cold(tmp_path):
    from repro.runner import SnapshotStore

    config = dataclasses.replace(QUICK)
    cold = manyflow.run_manyflow(dataclasses.replace(config))
    store = SnapshotStore(tmp_path / "snaps")
    warm = manyflow.run_manyflow(
        dataclasses.replace(config), warm_start="force", store=store
    )
    assert store.prefix_captures >= 1
    assert warm.cells == cold.cells
