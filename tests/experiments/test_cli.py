"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestDispatch:
    def test_all_design_md_ids_registered(self):
        assert {"fig5", "fig6", "fig7", "table5", "ackloss", "ablation",
                "vegas", "burst"} <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["does-not-exist"])
        assert excinfo.value.code != 0

    def test_quick_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "===== fig5 =====" in out
        assert "6 packet losses" in out

    def test_quick_ablation_runs(self, capsys):
        assert main(["ablation", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rr-retreat-always" in out

    def test_out_directory_written(self, capsys, tmp_path):
        target = tmp_path / "reports"
        assert main(["ablation", "--quick", "--out", str(target)]) == 0
        written = target / "ablation.txt"
        assert written.exists()
        assert "rr-retreat-always" in written.read_text()

    def test_vegas_quick_runs(self, capsys):
        assert main(["vegas", "--quick"]) == 0
        assert "vegas-rec-only" in capsys.readouterr().out

    def test_burst_quick_runs(self, capsys):
        assert main(["burst", "--quick"]) == 0
        assert "burst len" in capsys.readouterr().out
