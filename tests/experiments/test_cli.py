"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestDispatch:
    def test_all_design_md_ids_registered(self):
        assert {"fig5", "fig6", "fig7", "table5", "ackloss", "ablation",
                "vegas", "burst"} <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["does-not-exist"])
        assert excinfo.value.code != 0

    def test_quick_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "===== fig5 =====" in out
        assert "6 packet losses" in out

    def test_quick_ablation_runs(self, capsys):
        assert main(["ablation", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rr-retreat-always" in out

    def test_out_directory_written(self, capsys, tmp_path):
        target = tmp_path / "reports"
        assert main(["ablation", "--quick", "--out", str(target)]) == 0
        written = target / "ablation.txt"
        assert written.exists()
        assert "rr-retreat-always" in written.read_text()

    def test_vegas_quick_runs(self, capsys):
        assert main(["vegas", "--quick"]) == 0
        assert "vegas-rec-only" in capsys.readouterr().out

    def test_burst_quick_runs(self, capsys):
        assert main(["burst", "--quick"]) == 0
        assert "burst len" in capsys.readouterr().out


class TestTelemetry:
    """Every CLI run writes a provenance manifest (ISSUE 5 acceptance)."""

    def _runs(self, tmp_path):
        root = tmp_path / "artifacts" / "runs"
        return sorted(root.iterdir()) if root.is_dir() else []

    def test_run_writes_a_manifest(self, capsys, tmp_path, monkeypatch):
        from repro.obs import RunManifest

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
        assert main(["ablation", "--quick", "--quiet", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[manifest]" in out
        runs = self._runs(tmp_path)
        assert len(runs) == 1
        manifest = RunManifest.load(runs[0] / "manifest.json")
        assert manifest.harness == "ablation"
        assert manifest.outcome == "ok"
        assert manifest.run_id.startswith("ablation-")
        assert manifest.args["quick"] is True
        assert manifest.args["cache"] is False
        assert manifest.args["config"]["__dataclass__"].endswith("AblationConfig")
        assert manifest.total == len(manifest.tasks) > 0
        assert manifest.executed + manifest.cached == manifest.total
        assert manifest.failed == 0
        assert manifest.code_fingerprint

    def test_heartbeat_log_written_next_to_manifest(self, tmp_path, monkeypatch, capsys):
        from repro.obs import read_events

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
        assert main(["ablation", "--quick", "--quiet", "--no-cache"]) == 0
        (run_dir,) = self._runs(tmp_path)
        events = read_events(run_dir / "events.jsonl")
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert "task_finished" in kinds

    def test_fig5_profile_writes_pstats_and_merged_table(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
        assert main(["fig5", "--quick", "--quiet", "--no-cache", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "hot function (merged)" in out
        (run_dir,) = self._runs(tmp_path)
        captures = sorted((run_dir / "profiles").glob("*.pstats"))
        assert captures
        assert all(p.name.startswith("task-") for p in captures)

    def test_failed_run_still_writes_manifest(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import EXPERIMENTS
        from repro.obs import RunManifest

        def exploding(args, runner, manifest=None):
            raise RuntimeError("harness blew up")

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
        monkeypatch.setitem(EXPERIMENTS, "ablation", exploding)
        with pytest.raises(RuntimeError, match="harness blew up"):
            main(["ablation", "--quick", "--quiet"])
        (run_dir,) = self._runs(tmp_path)
        manifest = RunManifest.load(run_dir / "manifest.json")
        assert manifest.outcome.startswith("failed: RuntimeError")


class TestListing:
    def test_list_enumerates_every_experiment(self, capsys):
        from repro.experiments.cli import DESCRIPTIONS

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name, description in DESCRIPTIONS.items():
            assert name in out
            assert description in out
        assert "all" in out

    def test_every_experiment_has_a_description(self):
        from repro.experiments.cli import DESCRIPTIONS

        assert set(DESCRIPTIONS) == set(EXPERIMENTS)

    def test_no_arguments_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code != 0


class TestSnapshotSubcommand:
    def test_capture_inspect_run_cycle(self, capsys, tmp_path):
        path = tmp_path / "rr.snap"
        assert main([
            "snapshot", "capture", "rr", "--checkpoint-at", "2.0",
            "--out", str(path),
        ]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "captured rr at t=2" in out

        assert main(["snapshot", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format 2" in out
        assert "t=2" in out

        assert main([
            "snapshot", "run", "--from-snapshot", str(path), "--until", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "flow 1 (rr)" in out

    def test_unknown_verb_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["snapshot", "explode"])
        assert excinfo.value.code != 0
