"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestDispatch:
    def test_all_design_md_ids_registered(self):
        assert {"fig5", "fig6", "fig7", "table5", "ackloss", "ablation",
                "vegas", "burst"} <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["does-not-exist"])
        assert excinfo.value.code != 0

    def test_quick_fig5_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "===== fig5 =====" in out
        assert "6 packet losses" in out

    def test_quick_ablation_runs(self, capsys):
        assert main(["ablation", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rr-retreat-always" in out

    def test_out_directory_written(self, capsys, tmp_path):
        target = tmp_path / "reports"
        assert main(["ablation", "--quick", "--out", str(target)]) == 0
        written = target / "ablation.txt"
        assert written.exists()
        assert "rr-retreat-always" in written.read_text()

    def test_vegas_quick_runs(self, capsys):
        assert main(["vegas", "--quick"]) == 0
        assert "vegas-rec-only" in capsys.readouterr().out

    def test_burst_quick_runs(self, capsys):
        assert main(["burst", "--quick"]) == 0
        assert "burst len" in capsys.readouterr().out


class TestListing:
    def test_list_enumerates_every_experiment(self, capsys):
        from repro.experiments.cli import DESCRIPTIONS

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name, description in DESCRIPTIONS.items():
            assert name in out
            assert description in out
        assert "all" in out

    def test_every_experiment_has_a_description(self):
        from repro.experiments.cli import DESCRIPTIONS

        assert set(DESCRIPTIONS) == set(EXPERIMENTS)

    def test_no_arguments_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code != 0


class TestSnapshotSubcommand:
    def test_capture_inspect_run_cycle(self, capsys, tmp_path):
        path = tmp_path / "rr.snap"
        assert main([
            "snapshot", "capture", "rr", "--checkpoint-at", "2.0",
            "--out", str(path),
        ]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "captured rr at t=2" in out

        assert main(["snapshot", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format 2" in out
        assert "t=2" in out

        assert main([
            "snapshot", "run", "--from-snapshot", str(path), "--until", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "flow 1 (rr)" in out

    def test_unknown_verb_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["snapshot", "explode"])
        assert excinfo.value.code != 0
