"""Tests for the Vegas-decomposition harness."""

import pytest

from repro.experiments.vegas_decomposition import (
    CONFIGURATIONS,
    VegasDecompositionConfig,
    format_report,
    run_vegas_decomposition,
)


@pytest.fixture(scope="module")
def result():
    config = VegasDecompositionConfig(transfer_packets=200, sim_duration=60.0)
    return run_vegas_decomposition(config)


class TestHarness:
    def test_all_configurations_ran(self, result):
        assert {r.name for r in result.rows} == set(CONFIGURATIONS)

    def test_all_completed(self, result):
        for row in result.rows:
            assert row.complete_time is not None

    def test_vegas_beats_reno(self, result):
        assert result.row("vegas").complete_time < result.row("reno").complete_time

    def test_recovery_side_dominates_the_gain(self, result):
        """The [8] decomposition the paper's motivation rests on."""
        reno = result.row("reno").complete_time
        gain_full = reno - result.row("vegas").complete_time
        gain_rec = reno - result.row("vegas-rec-only").complete_time
        gain_ca = reno - result.row("vegas-ca-only").complete_time
        assert gain_rec > gain_ca

    def test_vegas_ca_avoids_self_induced_losses(self, result):
        """What the delay-based CA *does* buy: fewer drops."""
        assert result.row("vegas").drops_observed < result.row("reno").drops_observed

    def test_report_renders(self, result):
        text = format_report(result)
        assert "vegas-rec-only" in text
