"""Tests for the chaos harness experiment."""

import pytest

from repro.errors import InvariantViolation
from repro.experiments.chaos import (
    ChaosConfig,
    format_report,
    run_chaos,
)
from repro.experiments.cli import main
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.faults.campaign import CampaignSpec
from repro.net.topology import DumbbellParams
from repro.sim.invariants import InvariantSuite
from repro.tcp.newreno import NewRenoSender


def small_config(**overrides):
    defaults = dict(
        variants=("newreno", "rr"),
        seeds=2,
        transfer_packets=400,
        campaign=CampaignSpec(
            horizon=10.0, warmup=1.0, max_actions=2, episode_max=5.0
        ),
    )
    defaults.update(overrides)
    return ChaosConfig(**defaults)


class TestCampaignRuns:
    def test_small_campaign_survives_cleanly(self):
        result = run_chaos(small_config())
        assert len(result.runs) == 4  # 2 variants x 2 seeds
        assert result.clean
        for run in result.runs:
            # The acceptance contract: exactly-once in-order delivery,
            # no invariant violations, no watchdog aborts.
            assert run.completed
            assert run.delivered == 400
            assert run.violation is None
            assert run.crash is None
            assert run.records_checked > 0
        for variant in ("newreno", "rr"):
            summary = result.summary(variant)
            assert summary.survival_rate == 1.0
            assert summary.baseline_time > 0.0
            assert 0.0 < summary.goodput_vs_baseline <= 1.01

    def test_runs_are_reproducible(self):
        config = small_config(variants=("rr",), seeds=1)
        a = run_chaos(config)
        b = run_chaos(config)
        assert a.runs[0].finish_time == b.runs[0].finish_time
        assert a.runs[0].plan == b.runs[0].plan

    def test_report_renders(self):
        result = run_chaos(small_config(variants=("rr",), seeds=1))
        report = format_report(result)
        assert "Chaos harness" in report
        assert "rr" in report
        assert "all runs survived" in report


class BrokenAckSender(NewRenoSender):
    """Test fixture: a sender that publishes a regressing cumulative
    ACK level once the transfer is under way — the corruption the
    online checkers exist to catch."""

    variant = "newreno"

    def receive(self, packet):
        super().receive(packet)
        if self.snd_una >= 20:
            self._emit("tcp.ack", ackno=0, snd_una=self.snd_una, snd_nxt=self.snd_nxt)


class TestBrokenVariantIsCaught:
    def test_ack_monotonicity_violation_carries_trace_tail(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="newreno", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            sender_overrides={1: BrokenAckSender},
        )
        suite = InvariantSuite.standard()
        suite.install(scenario.dumbbell.net.trace)
        with pytest.raises(InvariantViolation) as excinfo:
            scenario.sim.run(until=300.0)
        violation = excinfo.value
        assert violation.invariant == "ack-monotonic"
        assert len(violation.tail) > 0
        assert violation.tail[-1] is violation.record
        # The engine annotated the escaping error with clock context.
        assert violation.sim_context["sim_time"] == scenario.sim.now


class TestCli:
    def test_chaos_cli_quick(self, capsys):
        assert main(["chaos", "--quick", "--seeds", "1", "--variants", "rr"]) == 0
        out = capsys.readouterr().out
        assert "===== chaos =====" in out
        assert "Chaos harness" in out
        assert "all runs survived" in out
