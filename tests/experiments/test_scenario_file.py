"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario_file import (
    run_scenario,
    run_scenario_file,
    summarize_scenario,
)


BASIC = {
    "flows": [{"variant": "rr", "packets": 100}],
    "duration": 60.0,
}


class TestBasicScenarios:
    def test_minimal_scenario_runs(self):
        scenario = run_scenario(dict(BASIC))
        sender, _ = scenario.flow(1)
        assert sender.completed

    def test_flows_required(self):
        with pytest.raises(ConfigurationError):
            run_scenario({"flows": []})
        with pytest.raises(ConfigurationError):
            run_scenario({})

    def test_multiple_flows_with_starts(self):
        spec = {
            "flows": [
                {"variant": "rr", "packets": 50},
                {"variant": "reno", "start": 1.0, "packets": 50},
            ],
            "duration": 120.0,
        }
        scenario = run_scenario(spec)
        assert scenario.senders[1].variant == "rr"
        assert scenario.senders[2].variant == "reno"
        assert all(s.completed for s in scenario.senders.values())

    def test_topology_units_converted(self):
        spec = dict(BASIC)
        spec["topology"] = {
            "n_pairs": 1,
            "bottleneck_bandwidth_mbps": 1.6,
            "bottleneck_delay_ms": 10,
            "buffer_packets": 30,
        }
        scenario = run_scenario(spec)
        assert scenario.dumbbell.params.bottleneck_bandwidth_bps == pytest.approx(1.6e6)
        assert scenario.dumbbell.params.bottleneck_delay == pytest.approx(0.010)
        assert scenario.dumbbell.bottleneck_queue.limit == 30

    def test_tcp_section(self):
        spec = dict(BASIC)
        spec["tcp"] = {"receiver_window": 32, "initial_ssthresh": 10.0}
        scenario = run_scenario(spec)
        assert scenario.senders[1].config.receiver_window == 32


class TestLossSections:
    def test_uniform_loss(self):
        spec = dict(BASIC)
        spec["loss"] = {"kind": "uniform", "rate": 0.05}
        spec["seed"] = 5
        scenario = run_scenario(spec)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert stats.drops_observed > 0

    def test_deterministic_loss(self):
        spec = dict(BASIC)
        spec["loss"] = {"kind": "deterministic", "drops": [[1, 20], [1, 21]]}
        scenario = run_scenario(spec)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert stats.drops_observed == 2

    def test_gilbert_elliott_loss(self):
        spec = dict(BASIC)
        spec["loss"] = {"kind": "gilbert-elliott", "p_good_to_bad": 0.02}
        spec["duration"] = 120.0
        scenario = run_scenario(spec)
        assert scenario.senders[1].completed

    def test_ack_loss(self):
        spec = dict(BASIC)
        spec["ack_loss"] = {"rate": 0.1}
        spec["duration"] = 120.0
        scenario = run_scenario(spec)
        assert scenario.senders[1].completed

    def test_unknown_loss_kind_rejected(self):
        spec = dict(BASIC)
        spec["loss"] = {"kind": "martian"}
        with pytest.raises(ConfigurationError):
            run_scenario(spec)


class TestQueueSection:
    def test_red_queue(self):
        from repro.net.red import RedQueue

        spec = dict(BASIC)
        spec["queue"] = {"kind": "red", "min_th": 3, "max_th": 9, "limit": 12}
        scenario = run_scenario(spec)
        queue = scenario.dumbbell.bottleneck_queue
        assert isinstance(queue, RedQueue)
        assert queue.params.min_th == 3

    def test_unknown_queue_kind_rejected(self):
        spec = dict(BASIC)
        spec["queue"] = {"kind": "codel"}
        with pytest.raises(ConfigurationError):
            run_scenario(spec)


class TestExtendedSections:
    def test_fair_queue(self):
        from repro.net.fairqueue import FairQueue

        spec = dict(BASIC)
        spec["queue"] = {"kind": "fq", "limit": 20, "quantum_bytes": 500}
        scenario = run_scenario(spec)
        queue = scenario.dumbbell.bottleneck_queue
        assert isinstance(queue, FairQueue)
        assert queue.quantum_bytes == 500

    def test_jitter_section(self):
        from repro.net.reorder import JitterReorderer

        spec = dict(BASIC)
        spec["jitter"] = {"max_ms": 10}
        scenario = run_scenario(spec)
        reorderer = scenario.dumbbell.forward_link.reorder
        assert isinstance(reorderer, JitterReorderer)
        assert reorderer.max_jitter == pytest.approx(0.010)
        assert scenario.senders[1].completed

    def test_outage_section(self):
        spec = dict(BASIC)
        spec["outage"] = {"start": 0.5, "duration": 0.1}
        spec["duration"] = 120.0
        scenario = run_scenario(spec)
        assert scenario.dumbbell.forward_link.outage_drops > 0
        assert scenario.senders[1].completed

    def test_symmetric_bottleneck_flag(self):
        spec = dict(BASIC)
        spec["topology"] = {"n_pairs": 1, "buffer_packets": 15,
                            "symmetric_bottleneck": True}
        scenario = run_scenario(spec)
        assert scenario.dumbbell.reverse_link.queue.limit == 15


class TestFileAndSummary:
    def test_round_trip_through_json_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(BASIC))
        scenario = run_scenario_file(path)
        assert scenario.senders[1].completed

    def test_summary_structure(self):
        scenario = run_scenario(dict(BASIC))
        summary = summarize_scenario(scenario)
        flow = summary["flows"]["1"]
        assert flow["variant"] == "rr"
        assert flow["completed"] is True
        assert flow["final_ack"] == 100
        json.dumps(summary)  # must be JSON-serialisable

    def test_seed_determinism(self):
        spec = dict(BASIC)
        spec["loss"] = {"kind": "uniform", "rate": 0.03}
        spec["seed"] = 9
        first = summarize_scenario(run_scenario(spec))
        second = summarize_scenario(run_scenario(spec))
        assert first == second
