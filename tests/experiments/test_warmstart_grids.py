"""Warm-started sweeps are bit-identical to cold ones, per grid.

figure5's warm path is covered in tests/snapshot/test_fork.py; this
module covers the other four harnesses that adopted the
:mod:`repro.runner.warmstart` contract, each with a trimmed grid.

``warm_start="force"`` bypasses the warm-start cost model
(:func:`repro.runner.warmstart.warm_start_decision`) so these suites
always exercise the snapshot machinery — the trimmed grids are exactly
the shape the model would (correctly) refuse to warm-start.  The model
itself is covered in tests/runner/test_warmstart_economics.py.
"""

import pytest

from repro.experiments.ackloss import AckLossConfig, run_ackloss
from repro.experiments.figure6 import Figure6Config, run_figure6
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.table5 import Table5Config, run_table5
from repro.runner import SnapshotStore, SweepRunner

FIG6 = Figure6Config(variants=("newreno", "rr"), duration=4.0)
FIG7 = Figure7Config(
    variants=("rr",), loss_rates=(0.02, 0.05), duration=15.0, runs_per_point=2
)
TAB5 = Table5Config(cases=(("reno", "rr"),), runs_per_case=2, sim_duration=20.0)
ACK = AckLossConfig(
    variants=("rr",),
    ack_loss_rates=(0.0, 0.2),
    runs_per_point=2,
    transfer_packets=300,
    sim_duration=30.0,
)

GRIDS = [
    ("figure6", run_figure6, FIG6, lambda r: r.flows),
    ("figure7", run_figure7, FIG7, lambda r: r.points),
    ("table5", run_table5, TAB5, lambda r: r.rows),
    ("ackloss", run_ackloss, ACK, lambda r: r.rows),
]


@pytest.mark.parametrize(
    "run_fn,config,rows_of",
    [grid[1:] for grid in GRIDS],
    ids=[grid[0] for grid in GRIDS],
)
def test_warm_matches_cold(tmp_path, run_fn, config, rows_of):
    cold = run_fn(config, runner=SweepRunner())
    store = SnapshotStore(tmp_path / "snaps")
    warm = run_fn(config, runner=SweepRunner(), warm_start="force", store=store)
    assert rows_of(warm) == rows_of(cold)
    # Replay through the prefix index (no recapture) stays identical.
    replay = run_fn(config, runner=SweepRunner(), warm_start="force", store=store)
    assert rows_of(replay) == rows_of(cold)


def test_table5_first_warm_pass_captures_prefixes_in_parallel(tmp_path):
    # Two replications → two missing (background, run) prefixes on the
    # first warm pass; with a parallel runner they are captured over
    # the worker pool rather than one after another, and the rows stay
    # bit-identical to cold.
    config = Table5Config(cases=(("reno", "rr"),), runs_per_case=2, sim_duration=20.0)
    cold = run_table5(config, runner=SweepRunner())
    store = SnapshotStore(tmp_path / "snaps")
    warm = run_table5(
        config, runner=SweepRunner(jobs=2), warm_start="force", store=store
    )
    assert warm.rows == cold.rows
    assert store.prefix_captures == 2
    assert store.prefix_hits == 0


def test_parallel_warm_matches_serial(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    serial = run_figure7(
        FIG7, runner=SweepRunner(jobs=1), warm_start="force", store=store
    )
    parallel = run_figure7(
        FIG7, runner=SweepRunner(jobs=2), warm_start="force", store=store
    )
    assert parallel.points == serial.points
