"""Tests for the multi-seed replication helpers."""

import pytest

from repro.experiments.replication import Summary, format_summaries, replicate, summarize


class TestSummarize:
    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.stdev == 0.0
        assert summary.ci_half_width == 0.0
        assert summary.n == 1

    def test_mean_and_bounds(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_ci_formula(self):
        values = [10.0, 12.0, 14.0, 16.0]
        summary = summarize(values, confidence=0.95)
        import statistics, math

        expected = 1.96 * statistics.stdev(values) / math.sqrt(4)
        assert summary.ci_half_width == pytest.approx(expected, rel=1e-3)
        assert summary.ci_low == pytest.approx(summary.mean - expected, rel=1e-3)
        assert summary.ci_high == pytest.approx(summary.mean + expected, rel=1e-3)

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 5.0, 9.0]
        assert (
            summarize(values, 0.99).ci_half_width
            > summarize(values, 0.90).ci_half_width
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=0.5)

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "n=3" in text and "±" in text


class TestReplicate:
    def test_runs_every_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return {"metric": float(seed)}

        result = replicate(run, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert result["metric"].mean == pytest.approx(2.0)

    def test_multiple_metrics(self):
        result = replicate(
            lambda seed: {"a": seed, "b": seed * 10}, seeds=[1, 2]
        )
        assert set(result) == {"a", "b"}
        assert result["b"].mean == pytest.approx(15.0)

    def test_mismatched_keys_rejected(self):
        def run(seed):
            return {"a": 1.0} if seed == 1 else {"b": 2.0}

        with pytest.raises(ValueError):
            replicate(run, seeds=[1, 2])

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"a": 1.0}, seeds=[])

    def test_with_real_scenario(self):
        """Replicate a tiny random-loss run: the summary must cover the
        per-seed spread."""
        from repro.experiments.common import FlowSpec, build_dumbbell_scenario
        from repro.net.loss import UniformLoss
        from repro.net.topology import DumbbellParams
        from repro.sim.rng import RngStream

        def run(seed):
            loss = UniformLoss(0.02, RngStream(seed, "loss"))
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant="rr", amount_packets=80)],
                params=DumbbellParams(n_pairs=1, buffer_packets=50),
                forward_loss=loss,
            )
            scenario.sim.run(until=300.0)
            sender, _ = scenario.flow(1)
            assert sender.completed
            return {"complete_time": sender.complete_time}

        result = replicate(run, seeds=[1, 2, 3, 4])
        summary = result["complete_time"]
        assert summary.n == 4
        assert summary.minimum <= summary.mean <= summary.maximum


class TestFormatting:
    def test_format_summaries(self):
        text = format_summaries(
            {"throughput": summarize([1.0, 2.0]), "delay": summarize([5.0])}
        )
        lines = text.splitlines()
        assert lines[0].startswith("delay")
        assert lines[1].startswith("throughput")
