"""Tests for the Gilbert-Elliott burst-channel harness."""

import pytest

from repro.experiments.burstchannel import (
    BurstChannelConfig,
    _chain_params,
    format_report,
    run_burstchannel,
)


class TestChainCalibration:
    @pytest.mark.parametrize("burst", [1.0, 2.0, 5.0])
    @pytest.mark.parametrize("rate", [0.01, 0.02, 0.05])
    def test_stationary_rate_matches_target(self, burst, rate):
        from repro.net.loss import GilbertElliott
        from repro.sim.rng import RngStream

        p_g2b, p_b2g = _chain_params(rate, burst, p_bad=0.5)
        module = GilbertElliott(
            RngStream(1, "cal"), p_good_to_bad=p_g2b, p_bad_to_good=p_b2g, p_bad=0.5
        )
        assert module.expected_loss_rate() == pytest.approx(rate, rel=1e-6)

    def test_burst_length_sets_exit_probability(self):
        _, p_b2g = _chain_params(0.02, burst_length=4.0, p_bad=0.5)
        assert p_b2g == pytest.approx(0.25)


class TestHarness:
    @pytest.fixture(scope="class")
    def result(self):
        config = BurstChannelConfig(
            variants=("newreno", "rr"),
            burst_lengths=(1.0, 3.0),
            transfer_packets=150,
            runs_per_point=2,
        )
        return run_burstchannel(config)

    def test_grid_complete(self, result):
        assert len(result.rows) == 4

    def test_everything_completed(self, result):
        for row in result.rows:
            assert row.completed_ratio == 1.0

    def test_cell_lookup(self, result):
        cell = result.cell("rr", 3.0)
        assert cell.variant == "rr"
        assert cell.throughput_bps > 0

    def test_report_renders(self, result):
        text = format_report(result)
        assert "burst len" in text
        assert "rr kbps" in text
