"""Tests for the experiment-result exporters."""

import csv
import json

import pytest

from repro.experiments.export_results import export_result
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.experiments.figure6 import Figure6Config, run_figure6


@pytest.fixture(scope="module")
def fig5_result():
    return run_figure5(
        Figure5Config(variants=("newreno", "rr"), drop_counts=(3,),
                      transfer_packets=300, sim_duration=30.0)
    )


class TestExport:
    def test_fig5_csv_and_json(self, fig5_result, tmp_path):
        paths = export_result("fig5", fig5_result, tmp_path)
        assert [p.suffix for p in paths] == [".csv", ".json"]
        with paths[0].open() as handle:
            rows = list(csv.DictReader(handle))
        assert {row["variant"] for row in rows} == {"newreno", "rr"}
        assert all(float(row["recovery_throughput_bps"]) > 0 for row in rows)
        data = json.loads(paths[1].read_text())
        assert len(data) == 2

    def test_fig6_export(self, tmp_path):
        result = run_figure6(Figure6Config(variants=("rr",), duration=3.0))
        paths = export_result("fig6", result, tmp_path)
        data = json.loads(paths[1].read_text())
        assert data[0]["variant"] == "rr"
        assert "final_ack" in data[0]

    def test_non_scalar_fields_stripped(self, fig5_result, tmp_path):
        paths = export_result("fig5", fig5_result, tmp_path)
        data = json.loads(paths[1].read_text())
        for row in data:
            for value in row.values():
                assert isinstance(value, (int, float, str, bool)) or value is None

    def test_unknown_id_rejected(self, fig5_result, tmp_path):
        with pytest.raises(KeyError):
            export_result("fig99", fig5_result, tmp_path)
