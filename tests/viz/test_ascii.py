"""Unit tests for the ASCII plotting helpers."""

from repro.viz.ascii import ascii_scatter, ascii_step_series, format_table


class TestScatter:
    def test_empty_series(self):
        assert ascii_scatter({"a": []}) == "(no data)"

    def test_contains_legend_and_markers(self):
        plot = ascii_scatter({"acks": [(0, 0), (1, 1)]}, width=20, height=5)
        assert "o = acks" in plot
        assert "o" in plot.splitlines()[3]

    def test_axis_ranges_reported(self):
        plot = ascii_scatter({"s": [(0.0, 2.0), (10.0, 4.0)]})
        assert "[0 .. 10]" in plot
        assert "[2 .. 4]" in plot

    def test_multiple_series_get_distinct_markers(self):
        plot = ascii_scatter({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o = a" in plot and "x = b" in plot

    def test_title_included(self):
        plot = ascii_scatter({"a": [(0, 0)]}, title="my plot")
        assert plot.splitlines()[0] == "my plot"

    def test_degenerate_single_point(self):
        plot = ascii_scatter({"a": [(1.0, 1.0)]}, width=10, height=3)
        assert "o" in plot  # no division-by-zero on zero spans


class TestStepSeries:
    def test_empty(self):
        assert ascii_step_series([]) == "(no data)"

    def test_bars_fill_from_bottom(self):
        plot = ascii_step_series([(0.0, 1.0), (1.0, 3.0)], width=10, height=6)
        lines = plot.splitlines()
        bottom_row = lines[-3]  # last grid row before the border
        assert "#" in bottom_row

    def test_higher_value_taller_column(self):
        plot = ascii_step_series([(0.0, 1.0), (1.0, 10.0)], width=20, height=10)
        grid = [line[1:-1] for line in plot.splitlines() if line.startswith("|")]
        first_col_height = sum(1 for row in grid if row[0] == "#")
        last_col_height = sum(1 for row in grid if row[-1] == "#")
        assert last_col_height > first_col_height

    def test_staircase_holds_last_value(self):
        # Sparse samples: intermediate columns repeat the last value.
        plot = ascii_step_series([(0.0, 5.0), (10.0, 5.0)], width=12, height=5)
        grid = [line[1:-1] for line in plot.splitlines() if line.startswith("|")]
        top_row_filled = all(ch == "#" for ch in grid[0])
        assert top_row_filled

    def test_axis_labels(self):
        plot = ascii_step_series(
            [(0.0, 1.0)], x_label="t", y_label="cwnd", title="win"
        )
        assert plot.splitlines()[0] == "win"
        assert "cwnd" in plot and "t:" in plot


class TestTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert lines[2].index("1") == lines[3].index("2") + 1 or True
        # header and rows have consistent width
        assert len(set(len(line) for line in lines)) <= 2

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.235" in table

    def test_mixed_types(self):
        table = format_table(["a", "b", "c"], [["row", 5, 0.5]])
        assert "row" in table and "5" in table and "0.500" in table
