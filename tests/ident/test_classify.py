"""Unit tests for the nearest-centroid classifier and the identity
oracle's verdict semantics."""

import pickle

import pytest

from repro.ident.classify import MIN_SCALE, NearestCentroidClassifier
from repro.ident.features import FeatureVector, FlowTrace
from repro.ident.oracle import (
    MIN_MARGIN,
    IdentityVerdict,
    identify_features,
    identify_trace,
    load_reference_classifier,
    reference_model_path,
)


def vec(a, b):
    return FeatureVector(names=("a", "b"), values=(float(a), float(b)))


SAMPLES = [
    ("left", vec(0.0, 0.0)),
    ("left", vec(0.2, 0.1)),
    ("right", vec(4.0, 4.0)),
    ("right", vec(3.8, 3.9)),
]


class TestFit:
    def test_fit_is_permutation_invariant(self):
        forward = NearestCentroidClassifier.fit(SAMPLES)
        backward = NearestCentroidClassifier.fit(list(reversed(SAMPLES)))
        assert forward.to_json() == backward.to_json()
        assert forward.digest() == backward.digest()
        assert forward == backward

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier.fit([])

    def test_constant_feature_hits_scale_floor(self):
        model = NearestCentroidClassifier.fit(
            [("x", vec(1.0, 5.0)), ("y", vec(2.0, 5.0))]
        )
        assert model.scales[model.feature_names.index("b")] == MIN_SCALE

    def test_wrong_arity_centroid_rejected(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier(
                feature_names=("a", "b"),
                means=(0.0, 0.0),
                scales=(1.0, 1.0),
                centroids={"x": (0.0,)},
            )


class TestClassify:
    def test_nearest_label_wins(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        assert model.classify(vec(0.3, 0.3)).label == "left"
        assert model.classify(vec(3.5, 3.5)).label == "right"

    def test_margin_bounds_and_distances(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        result = model.classify(vec(0.0, 0.0))
        assert 0.0 <= result.margin <= 1.0
        assert set(result.distances) == {"left", "right"}
        assert result.distance == result.distances["left"]

    def test_tie_breaks_lexicographically(self):
        model = NearestCentroidClassifier(
            feature_names=("a",),
            means=(0.0,),
            scales=(1.0,),
            centroids={"zeta": (-1.0,), "alpha": (1.0,)},
        )
        result = model.classify(FeatureVector(names=("a",), values=(0.0,)))
        assert result.label == "alpha"
        assert result.margin == 0.0

    def test_accepts_reordered_features(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        flipped = FeatureVector(names=("b", "a"), values=(0.1, 0.2))
        assert model.classify(flipped).label == "left"


class TestSerialization:
    def test_json_round_trip(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        back = NearestCentroidClassifier.from_json(model.to_json())
        assert back == model
        assert back.digest() == model.digest()

    def test_unknown_kind_and_format_rejected(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        with pytest.raises(ValueError):
            NearestCentroidClassifier.from_json(
                model.to_json().replace("nearest-centroid", "svm")
            )
        with pytest.raises(ValueError):
            NearestCentroidClassifier.from_json(
                model.to_json().replace('"format": 1', '"format": 2')
            )

    def test_pickles_cleanly(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model


class TestReferenceModel:
    def test_committed_model_loads_and_caches(self):
        model = load_reference_classifier()
        assert load_reference_classifier() is model
        assert reference_model_path().exists()

    def test_reference_covers_the_five_variants(self):
        from repro.ident.dataset import IDENT_VARIANTS

        assert load_reference_classifier().labels == tuple(
            sorted(IDENT_VARIANTS)
        )


class TestVerdicts:
    def test_conclusive_match(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        verdict = identify_features(
            vec(0.0, 0.0), declared="left", classifier=model
        )
        assert verdict.identified == "left"
        assert verdict.conclusive
        assert verdict.ok is True
        assert not verdict.diverged

    def test_conclusive_divergence(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        verdict = identify_features(
            vec(4.0, 4.0), declared="left", classifier=model
        )
        assert verdict.identified == "right"
        assert verdict.ok is False
        assert verdict.diverged

    def test_thin_margin_is_inconclusive_not_diverged(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        # Exactly between the centroids: margin ~ 0 < MIN_MARGIN.
        verdict = identify_features(
            vec(2.0, 2.0), declared="left", classifier=model
        )
        assert verdict.margin < MIN_MARGIN
        assert not verdict.conclusive
        assert verdict.ok is None
        assert not verdict.diverged

    def test_undeclared_has_no_ok(self):
        model = NearestCentroidClassifier.fit(SAMPLES)
        verdict = identify_features(vec(0.0, 0.0), classifier=model)
        assert verdict.conclusive
        assert verdict.ok is None

    def test_traces_without_loss_evidence_are_inconclusive(self):
        # A clean run matches every variant; the oracle must refuse to
        # call it rather than pick whichever centroid sits closest.
        verdict = identify_trace(
            FlowTrace(flow_id=1), declared="reno"
        )
        assert not verdict.conclusive
        assert verdict.ok is None

    def test_as_dict_is_flat_manifest_payload(self):
        verdict = IdentityVerdict(
            identified="rr",
            declared="reno",
            distance=1.25,
            margin=0.5,
            conclusive=True,
            ok=False,
        )
        payload = verdict.as_dict()
        assert payload == {
            "identified": "rr",
            "declared": "reno",
            "distance": 1.25,
            "margin": 0.5,
            "conclusive": True,
            "ok": False,
        }
        assert "DIVERGED" in verdict.describe()
