"""Determinism contract of the identification pipeline.

The same seed must yield bit-identical feature vectors: rerun in the
same process, serial vs a parallel sweep, and across processes with
different hash seeds and engine backends.  Everything downstream (the
committed reference model, the golden behavior classes, cached sweep
cells) leans on this.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.ident.classify import NearestCentroidClassifier
from repro.ident.dataset import (
    TRAINING_GRID,
    collect_grid,
    collect_run,
    fit_reference_classifier,
    scenario_by_key,
)
from repro.ident.oracle import load_reference_classifier
from repro.runner import SweepRunner

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestInProcess:
    def test_rerun_is_bit_identical(self):
        scenario = scenario_by_key("gilbert-s23")
        first = collect_run("newreno", scenario)
        second = collect_run("newreno", scenario)
        assert first.to_json() == second.to_json()

    def test_refit_is_byte_identical(self):
        first = fit_reference_classifier()
        second = fit_reference_classifier()
        assert first.to_json() == second.to_json()

    def test_refit_reproduces_the_committed_model(self):
        """Fitting from scratch over the training grid must land on
        the exact committed reference model — the model artifact is a
        pure function of the code."""
        assert fit_reference_classifier() == load_reference_classifier()


class TestSerialVsParallel:
    def test_parallel_sweep_matches_serial(self):
        grid = TRAINING_GRID[:2]
        variants = ("reno", "rr")
        serial = collect_grid(grid, variants=variants)
        parallel = collect_grid(
            grid, variants=variants, runner=SweepRunner(jobs=2)
        )
        assert [(v, k) for v, k, _ in serial] == [
            (v, k) for v, k, _ in parallel
        ]
        for (_, _, a), (_, _, b) in zip(serial, parallel):
            assert a.to_json() == b.to_json()

    def test_fit_through_runner_matches_inline(self):
        assert fit_reference_classifier(
            runner=SweepRunner(jobs=2)
        ) == fit_reference_classifier()


_CELL_SCRIPT = """\
import json
from repro.ident.dataset import collect_run, scenario_by_key
for variant, key in (("reno", "burst-3@100"), ("rr", "gilbert-s23")):
    vector = collect_run(variant, scenario_by_key(key))
    print(f"{variant}/{key} {vector.to_json()}")
"""


def _run_cells(extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.update(extra_env)
    result = subprocess.run(
        [sys.executable, "-c", _CELL_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


class TestCrossProcess:
    def test_backends_and_hash_seeds_agree(self):
        """Pure-python engine in one process, the default (compiled
        when available) in another, different PYTHONHASHSEED in each:
        the printed feature vectors must be byte-identical.  On a
        build without the compiled core both runs are pure and the
        comparison degrades to plain cross-process determinism."""
        pure = _run_cells(
            {"REPRO_PURE_PYTHON": "1", "PYTHONHASHSEED": "1"}
        )
        default = _run_cells(
            {"REPRO_PURE_PYTHON": "0", "PYTHONHASHSEED": "2"}
        )
        assert pure == default
        assert "reno/burst-3@100" in pure


class TestModelArtifact:
    def test_committed_model_is_canonical_json(self):
        """The committed file must be the classifier's own canonical
        serialization, byte for byte — hand-edits or non-canonical
        rewrites would silently change the digest the runner
        fingerprints."""
        from repro.ident.oracle import reference_model_path

        text = reference_model_path().read_text(encoding="utf-8")
        assert NearestCentroidClassifier.from_json(text).to_json() == text

    def test_digest_is_stable_across_loads(self):
        from repro.ident.oracle import reference_model_path

        text = reference_model_path().read_text(encoding="utf-8")
        a = NearestCentroidClassifier.from_json(text)
        b = NearestCentroidClassifier.from_json(json.dumps(json.loads(text)))
        assert a.digest() == b.digest()
