"""Unit tests for the trace-bus feature extraction layer.

The load-bearing property here is label-blindness: the collector must
key flows by numeric id and throw away the variant prefix of the
source label, so identification can never degenerate into string
matching on ``"reno/f1"``.
"""

import json

import pytest

from repro.ident.features import (
    FEATURE_NAMES,
    TCP_CATEGORIES,
    FeatureVector,
    FlowTrace,
    FlowTraceCollector,
    _flow_id_of,
    extract_features,
)
from repro.sim.tracing import TraceBus


class TestFeatureVector:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureVector(names=("a", "b"), values=(1.0,))

    def test_getitem_and_as_dict(self):
        vec = FeatureVector(names=("a", "b"), values=(1.5, 2.5))
        assert vec["b"] == 2.5
        assert vec.as_dict() == {"a": 1.5, "b": 2.5}
        with pytest.raises(KeyError):
            vec["missing"]

    def test_json_round_trip_is_bit_exact(self):
        vec = FeatureVector(
            names=("a", "b"), values=(1.0 / 3.0, 0.1 + 0.2)
        )
        back = FeatureVector.from_json(vec.to_json())
        assert back.values == vec.values
        assert back.to_json() == vec.to_json()

    def test_to_json_is_canonical(self):
        ab = FeatureVector(names=("a", "b"), values=(1.0, 2.0))
        ba = FeatureVector(names=("b", "a"), values=(2.0, 1.0))
        assert ab.to_json() == ba.to_json()
        assert list(json.loads(ab.to_json())) == ["a", "b"]

    def test_reordered(self):
        vec = FeatureVector(names=("a", "b"), values=(1.0, 2.0))
        assert vec.reordered(("b", "a")).values == (2.0, 1.0)


class TestFlowIdParsing:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("reno/f1", 1),
            ("newreno/f12", 12),
            ("mystery/f3", 3),
            ("queue", None),  # not a flow label
            ("/f1", None),  # no variant head at all
            ("reno/fx", None),  # non-numeric id
        ],
    )
    def test_flow_id_of(self, source, expected):
        assert _flow_id_of(source) == expected


class TestCollector:
    def test_taps_exclude_rr_instrumentation(self):
        # tcp.rr carries RR-only internals (actnum/ndup); a behavior
        # classifier listening to it would identify RR by channel
        # presence, not behavior.
        assert "tcp.rr" not in TCP_CATEGORIES

    def test_collects_per_flow_and_ignores_foreign_sources(self):
        bus = TraceBus()
        collector = FlowTraceCollector().install(bus)
        bus.emit(0.1, "tcp.send", "reno/f1", seqno=0, retransmit=False)
        bus.emit(0.2, "tcp.send", "reno/f2", seqno=5, retransmit=True)
        bus.emit(0.3, "tcp.cwnd", "reno/f1", cwnd=4.0)
        bus.emit(0.4, "tcp.ack", "queue-tap", ackno=1, duplicate=False)
        collector.uninstall()
        assert sorted(collector.flows) == [1, 2]
        assert collector.flows[1].sends == [(0, 0.1, 0, False)]
        assert collector.flows[2].sends == [(1, 0.2, 5, True)]
        assert collector.flows[1].cwnd == [(2, 0.3, 4.0)]

    def test_uninstall_stops_collection(self):
        bus = TraceBus()
        collector = FlowTraceCollector().install(bus)
        bus.emit(0.1, "tcp.send", "reno/f1", seqno=0, retransmit=False)
        collector.uninstall()
        bus.emit(0.2, "tcp.send", "reno/f1", seqno=1, retransmit=False)
        assert len(collector.flows[1].sends) == 1

    def test_double_install_rejected(self):
        collector = FlowTraceCollector().install(TraceBus())
        with pytest.raises(ValueError):
            collector.install(TraceBus())

    def test_features_for_unknown_flow_raises(self):
        with pytest.raises(KeyError):
            FlowTraceCollector().features(flow_id=9)


class TestExtraction:
    def test_empty_trace_yields_all_zero_vector(self):
        vec = extract_features(FlowTrace(flow_id=1))
        assert vec.names == FEATURE_NAMES
        # entry_cwnd_drop defaults to 1.0 ("cwnd untouched") when no
        # episode was observed; everything else is zero.
        expected = {name: 0.0 for name in FEATURE_NAMES}
        expected["entry_cwnd_drop"] = 1.0
        assert vec.as_dict() == expected

    def test_entry_drop_is_time_strict(self):
        # The halving a sender performs while reacting to the 3rd dup
        # ACK lands at the SAME sim time as the recovery_enter marker
        # (and earlier in arrival order).  The "before" cwnd must be
        # the value strictly before that instant.
        trace = FlowTrace(flow_id=1)
        trace.sends = [(0, 0.0, 0, False)]
        trace.acks = [(1, 1.0, 1, False)]
        trace.cwnd = [(2, 1.0, 8.0), (3, 2.0, 4.0)]  # halved at t=2.0
        trace.enters = [(4, 2.0, 10)]  # same instant, later in order
        trace.exits = [(5, 3.0)]
        vec = extract_features(trace)
        assert vec["entry_cwnd_drop"] == pytest.approx(4.0 / 8.0)


class TestLabelLeak:
    def test_renamed_variant_identifies_identically(self, monkeypatch):
        """Renaming a sender class must change nothing: the features
        and the classification depend on behavior alone."""
        from repro.core.robust_recovery import RobustRecoverySender
        from repro.ident.dataset import collect_run, scenario_by_key
        from repro.ident.oracle import identify_features

        scenario = scenario_by_key("burst-5@90")
        baseline = collect_run("rr", scenario)
        monkeypatch.setattr(RobustRecoverySender, "variant", "mystery")
        renamed = collect_run("rr", scenario)
        assert renamed.to_json() == baseline.to_json()
        verdict = identify_features(renamed)
        assert verdict.identified == "rr"
