"""Golden behavior-class regression: committed held-out feature
vectors, confusion matrix, and reference-model digest.

This is the behavioral complement to tests/snapshot/test_golden.py.
The state-digest golden answers "did any byte of sender state drift?";
this file answers "did the *behavior class* drift?" — and, crucially,
tolerates refactors that flip the digest without changing behavior.
A mismatch here means a recovery variant changed how it acts on the
wire.  If intentional, regenerate both committed artifacts with
``PYTHONPATH=src python scripts/update_ident.py`` and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.ident.dataset import (
    HELDOUT_GRID,
    IDENT_VARIANTS,
    collect_run,
    scenario_by_key,
)
from repro.ident.oracle import (
    MIN_MARGIN,
    identify_features,
    load_reference_classifier,
)

GOLDEN_FILE = Path(__file__).parent.parent / "golden" / "behavior_classes.json"


@pytest.fixture(scope="module")
def committed():
    return json.loads(GOLDEN_FILE.read_text())


class TestGoldenFile:
    def test_format(self, committed):
        assert committed["format"] == 1

    def test_min_margin_matches_oracle(self, committed):
        assert committed["min_margin"] == MIN_MARGIN

    def test_model_digest_matches_packaged_model(self, committed):
        # The committed vectors were classified by *this* model; a
        # digest mismatch means reference_model.json and the golden
        # file were regenerated out of step.
        assert committed["model_digest"] == load_reference_classifier().digest()

    def test_every_variant_and_cell_committed(self, committed):
        assert set(committed["vectors"]) == set(IDENT_VARIANTS)
        heldout_keys = {scenario.key for scenario in HELDOUT_GRID}
        for variant, cells in committed["vectors"].items():
            assert set(cells) == heldout_keys, variant

    def test_confusion_matrix_is_perfect_diagonal(self, committed):
        for declared, row in committed["confusion"].items():
            for identified, count in row.items():
                expected = len(HELDOUT_GRID) if identified == declared else 0
                assert count == expected, (declared, identified)

    def test_confusion_matrix_consistent_with_vectors(self, committed):
        for declared, cells in committed["vectors"].items():
            for key, cell in cells.items():
                assert (
                    committed["confusion"][declared][cell["identified"]] > 0
                ), (declared, key)


@pytest.mark.parametrize("variant", IDENT_VARIANTS)
def test_heldout_vectors_match_golden(variant, committed):
    """Re-run every held-out cell and demand *bit-exact* features and
    the same conclusive identification as committed."""
    model = load_reference_classifier()
    for scenario in HELDOUT_GRID:
        cell = committed["vectors"][variant][scenario.key]
        vector = collect_run(variant, scenario)
        drifted = {
            name: (value, cell["features"][name])
            for name, value in vector.as_dict().items()
            if value != cell["features"][name]
        }
        assert not drifted, (
            f"{variant}/{scenario.key} behavior drifted: {drifted} — if"
            " intentional, run scripts/update_ident.py and commit"
        )
        verdict = identify_features(vector, declared=variant, classifier=model)
        assert verdict.identified == cell["identified"]
        assert verdict.margin == cell["margin"]
        assert verdict.ok is True


class TestBehaviorSensitivity:
    def test_one_line_variant_change_drifts_the_features(self, monkeypatch, committed):
        """The gate's reason to exist: the same one-line RR tweak the
        state-digest golden uses must also move the behavior features
        — drift is caught at the behavior level, not just the
        state-bytes level."""
        from repro.core.robust_recovery import RobustRecoverySender

        original = RobustRecoverySender._recovery_dupack

        def tweaked(self, packet):
            original(self, packet)
            self.ndup += 1  # the intentional one-line change

        monkeypatch.setattr(RobustRecoverySender, "_recovery_dupack", tweaked)
        scenario = scenario_by_key("burst-5@90")
        perturbed = collect_run("rr", scenario)
        expected = committed["vectors"]["rr"][scenario.key]["features"]
        assert perturbed.as_dict() != expected

    def test_digest_only_refactor_is_tolerated(self, monkeypatch, committed):
        """The converse guarantee: a refactor that changes sender
        *state bytes* (flipping every snapshot digest) but not wire
        behavior must leave the feature vectors bit-identical — this
        gate does not cry wolf on representation changes."""
        from repro.core.robust_recovery import RobustRecoverySender
        from repro.snapshot import golden_digests

        original_init = RobustRecoverySender.__init__

        def refactored(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            self._refactor_scratch = []  # benign new attribute

        monkeypatch.setattr(RobustRecoverySender, "__init__", refactored)

        state_golden = json.loads(
            (Path(__file__).parent.parent / "golden" / "state_digests.json").read_text()
        )
        assert golden_digests("rr") != state_golden["digests"]["rr"], (
            "the refactor was supposed to flip the state digest"
        )

        scenario = scenario_by_key("burst-5@90")
        vector = collect_run("rr", scenario)
        assert (
            vector.as_dict()
            == committed["vectors"]["rr"][scenario.key]["features"]
        )
