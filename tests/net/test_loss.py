"""Unit tests for the loss-injection modules."""

import pytest

from repro.errors import ConfigurationError
from repro.net.loss import AckLoss, Composite, DeterministicLoss, NoLoss, UniformLoss
from repro.net.packet import ack_packet, data_packet
from repro.sim.rng import RngStream


def data(seqno, flow=1, retransmit=False):
    return data_packet(flow, "S1", "K1", seqno, is_retransmit=retransmit)


def ack(ackno, flow=1):
    return ack_packet(flow, "K1", "S1", ackno)


class TestNoLoss:
    def test_passes_everything(self):
        module = NoLoss()
        assert not module.should_drop(data(1))
        assert not module.should_drop(ack(1))


class TestUniformLoss:
    def test_rate_zero_never_drops(self):
        module = UniformLoss(0.0, RngStream(1))
        assert not any(module.should_drop(data(i)) for i in range(100))

    def test_rate_one_always_drops_data(self):
        module = UniformLoss(1.0, RngStream(1))
        assert all(module.should_drop(data(i)) for i in range(10))

    def test_acks_never_dropped(self):
        module = UniformLoss(1.0, RngStream(1))
        assert not module.should_drop(ack(1))

    def test_flow_filter(self):
        module = UniformLoss(1.0, RngStream(1), flow_id=2)
        assert not module.should_drop(data(1, flow=1))
        assert module.should_drop(data(1, flow=2))

    def test_retransmit_exemption(self):
        module = UniformLoss(1.0, RngStream(1), drop_retransmits=False)
        assert not module.should_drop(data(1, retransmit=True))
        assert module.should_drop(data(1, retransmit=False))

    def test_approximate_rate(self):
        module = UniformLoss(0.2, RngStream(7))
        drops = sum(module.should_drop(data(i)) for i in range(10_000))
        assert 1500 < drops < 2500

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLoss(1.5, RngStream(1))

    def test_drop_counter(self):
        module = UniformLoss(1.0, RngStream(1))
        module.should_drop(data(1))
        module.should_drop(data(2))
        assert module.injected_drops == 2


class TestDeterministicLoss:
    def test_drops_listed_first_transmission(self):
        module = DeterministicLoss([(1, 5)])
        assert module.should_drop(data(5))

    def test_retransmission_passes(self):
        module = DeterministicLoss([(1, 5)])
        module.should_drop(data(5))
        assert not module.should_drop(data(5, retransmit=True))
        assert not module.should_drop(data(5))

    def test_unlisted_passes(self):
        module = DeterministicLoss([(1, 5)])
        assert not module.should_drop(data(4))

    def test_flow_specific(self):
        module = DeterministicLoss([(2, 5)])
        assert not module.should_drop(data(5, flow=1))
        assert module.should_drop(data(5, flow=2))

    def test_acks_pass(self):
        module = DeterministicLoss([(1, 5)])
        assert not module.should_drop(ack(5))

    def test_pending_and_executed(self):
        module = DeterministicLoss([(1, 5), (1, 6)])
        module.should_drop(data(5))
        assert module.pending == {(1, 6)}
        assert module.executed == {(1, 5)}


class TestAckLoss:
    def test_drop_by_index(self):
        module = AckLoss(drop_indices={1, 3})
        results = [module.should_drop(ack(i)) for i in range(5)]
        assert results == [False, True, False, True, False]

    def test_data_never_dropped(self):
        module = AckLoss(rate=1.0, rng=RngStream(1))
        assert not module.should_drop(data(1))

    def test_rate_based(self):
        module = AckLoss(rate=1.0, rng=RngStream(1))
        assert module.should_drop(ack(1))

    def test_flow_filter(self):
        module = AckLoss(drop_indices={0}, flow_id=2)
        assert not module.should_drop(ack(1, flow=1))
        assert module.should_drop(ack(1, flow=2))

    def test_indices_counted_per_flow(self):
        module = AckLoss(drop_indices={0})
        assert module.should_drop(ack(1, flow=1))
        assert module.should_drop(ack(1, flow=2))  # each flow has its own index

    def test_rate_without_rng_rejected(self):
        with pytest.raises(ConfigurationError):
            AckLoss(rate=0.5)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            AckLoss(rate=-0.1, rng=RngStream(1))


class TestComposite:
    def test_any_module_can_drop(self):
        composite = Composite(DeterministicLoss([(1, 5)]), DeterministicLoss([(1, 7)]))
        assert composite.should_drop(data(5))
        assert composite.should_drop(data(7))
        assert not composite.should_drop(data(6))

    def test_counts_drops(self):
        composite = Composite(DeterministicLoss([(1, 5)]))
        composite.should_drop(data(5))
        assert composite.injected_drops == 1
