"""Unit tests for the dumbbell topology builder."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import data_packet
from repro.net.node import Agent
from repro.net.red import RedParams, RedQueue
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


class RecordingAgent(Agent):
    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestConstruction:
    def test_paper_defaults(self):
        params = DumbbellParams()
        assert params.bottleneck_bandwidth_bps == pytest.approx(0.8e6)
        assert params.side_bandwidth_bps == pytest.approx(10e6)
        assert params.buffer_packets == 8

    def test_host_naming_matches_paper(self, sim):
        bell = Dumbbell(sim, DumbbellParams(n_pairs=3))
        assert [h.name for h in bell.senders] == ["S1", "S2", "S3"]
        assert [h.name for h in bell.receivers] == ["K1", "K2", "K3"]
        assert bell.sender(2).name == "S2"
        assert bell.receiver(3).name == "K3"

    def test_invalid_params_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            Dumbbell(sim, DumbbellParams(n_pairs=0))
        with pytest.raises(ConfigurationError):
            Dumbbell(sim, DumbbellParams(buffer_packets=0))

    def test_bottleneck_queue_respects_buffer(self, sim):
        bell = Dumbbell(sim, DumbbellParams(n_pairs=1, buffer_packets=8))
        assert bell.bottleneck_queue.limit == 8

    def test_custom_queue_factory(self, sim):
        rng = RngStream(1, "red")
        bell = Dumbbell(
            sim,
            DumbbellParams(n_pairs=1),
            bottleneck_queue_factory=lambda name: RedQueue(
                sim, RedParams(), rng, name=name
            ),
        )
        assert isinstance(bell.bottleneck_queue, RedQueue)

    def test_base_rtt(self, sim):
        params = DumbbellParams(side_delay=0.001, bottleneck_delay=0.050)
        bell = Dumbbell(sim, params)
        assert bell.base_rtt() == pytest.approx(2 * (0.001 + 0.050 + 0.001))


class TestConnectivity:
    def test_data_path_s_to_k(self, sim):
        bell = Dumbbell(sim, DumbbellParams(n_pairs=2))
        receiver = RecordingAgent(1)
        bell.receiver(1).register(receiver)
        sender = RecordingAgent(1)
        bell.sender(1).register(sender)
        sender.send(data_packet(1, "S1", "K1", 0))
        sim.run()
        assert len(receiver.received) == 1

    def test_reverse_path_k_to_s(self, sim):
        bell = Dumbbell(sim, DumbbellParams(n_pairs=1))
        sender_side = RecordingAgent(1)
        bell.sender(1).register(sender_side)
        receiver_side = RecordingAgent(1)
        bell.receiver(1).register(receiver_side)
        receiver_side.send(data_packet(1, "K1", "S1", 0))
        sim.run()
        assert len(sender_side.received) == 1

    def test_all_pairs_share_bottleneck(self, sim):
        bell = Dumbbell(sim, DumbbellParams(n_pairs=3))
        receivers = []
        for i in range(1, 4):
            agent = RecordingAgent(i)
            bell.receiver(i).register(agent)
            receivers.append(agent)
            sender = RecordingAgent(i)
            bell.sender(i).register(sender)
            sender.send(data_packet(i, f"S{i}", f"K{i}", 0))
        sim.run()
        assert all(len(agent.received) == 1 for agent in receivers)
        assert bell.forward_link.packets_delivered == 3

    def test_latency_through_bottleneck(self, sim):
        params = DumbbellParams(n_pairs=1, side_delay=0.001, bottleneck_delay=0.050)
        bell = Dumbbell(sim, params)
        receiver = RecordingAgent(1)
        bell.receiver(1).register(receiver)
        sender = RecordingAgent(1)
        bell.sender(1).register(sender)
        sender.send(data_packet(1, "S1", "K1", 0, size=1000))
        sim.run()
        # propagation 0.052 + transmissions: 2x 0.8ms on 10 Mb/s sides
        # + 10 ms on the 0.8 Mb/s bottleneck
        expected = 0.052 + 2 * (8000 / 10e6) + 8000 / 0.8e6
        assert sim.now == pytest.approx(expected, rel=1e-6)
