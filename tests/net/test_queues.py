"""Unit tests for queue disciplines (base + drop-tail)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue


def pkt(seqno=0, flow=1):
    return data_packet(flow, "S1", "K1", seqno)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(limit=10)
        for i in range(3):
            assert queue.enqueue(pkt(i))
        assert [queue.dequeue().seqno for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(limit=2).dequeue() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(limit=2)
        assert queue.enqueue(pkt(0))
        assert queue.enqueue(pkt(1))
        assert not queue.enqueue(pkt(2))
        assert len(queue) == 2
        assert queue.drops == 1

    def test_tail_drop_keeps_earlier_packets(self):
        queue = DropTailQueue(limit=2)
        queue.enqueue(pkt(0))
        queue.enqueue(pkt(1))
        queue.enqueue(pkt(2))
        assert queue.dequeue().seqno == 0

    def test_space_freed_by_dequeue(self):
        queue = DropTailQueue(limit=1)
        queue.enqueue(pkt(0))
        queue.dequeue()
        assert queue.enqueue(pkt(1))

    def test_drop_callback_invoked(self):
        queue = DropTailQueue(limit=1)
        dropped = []
        queue.on_drop = lambda packet, reason: dropped.append((packet.seqno, reason))
        queue.enqueue(pkt(0))
        queue.enqueue(pkt(1))
        assert dropped == [(1, "overflow")]

    def test_counters(self):
        queue = DropTailQueue(limit=1)
        queue.enqueue(pkt(0))
        queue.enqueue(pkt(1))
        queue.dequeue()
        assert (queue.enqueues, queue.dequeues, queue.drops) == (1, 1, 1)
        queue.reset_counters()
        assert (queue.enqueues, queue.dequeues, queue.drops) == (0, 0, 0)

    def test_is_empty(self):
        queue = DropTailQueue(limit=1)
        assert queue.is_empty
        queue.enqueue(pkt(0))
        assert not queue.is_empty

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(limit=0)
