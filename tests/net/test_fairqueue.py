"""Tests for the DRR fair queue — including the paper's §2.3 fair-share
conjecture about ACK losses."""

import pytest

from repro.errors import ConfigurationError
from repro.net.fairqueue import FairQueue
from repro.net.packet import ack_packet, data_packet


def data(flow, seqno=0, size=1000):
    return data_packet(flow, f"S{flow}", f"K{flow}", seqno, size=size)


def ack(flow, ackno=0):
    return ack_packet(flow, f"K{flow}", f"S{flow}", ackno)


class TestBasics:
    def test_single_flow_is_fifo(self):
        queue = FairQueue(limit=10)
        for i in range(3):
            queue.enqueue(data(1, i))
        assert [queue.dequeue().seqno for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        assert FairQueue(limit=4).dequeue() is None

    def test_len_counts_all_flows(self):
        queue = FairQueue(limit=10)
        queue.enqueue(data(1))
        queue.enqueue(data(2))
        assert len(queue) == 2
        assert queue.flow_backlog(1) == 1

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            FairQueue(limit=4, quantum_bytes=0)


class TestRoundRobin:
    def test_equal_size_packets_interleave(self):
        queue = FairQueue(limit=20)
        for i in range(3):
            queue.enqueue(data(1, i))
        for i in range(3):
            queue.enqueue(data(2, i + 100))
        order = [queue.dequeue().flow_id for _ in range(6)]
        # Strict alternation between the two backlogged flows.
        assert order in ([1, 2, 1, 2, 1, 2], [2, 1, 2, 1, 2, 1])

    def test_byte_fairness_with_mixed_sizes(self):
        """A flow of 40-byte ACKs gets ~25 packets per 1000-byte data
        packet of a competing flow (byte-fair DRR)."""
        queue = FairQueue(limit=200, quantum_bytes=1000)
        for i in range(50):
            queue.enqueue(data(1, i))          # 1000 B each
        for i in range(100):
            queue.enqueue(ack(2, i))           # 40 B each
        first_40 = [queue.dequeue() for _ in range(40)]
        data_bytes = sum(p.size for p in first_40 if p.flow_id == 1)
        ack_bytes = sum(p.size for p in first_40 if p.flow_id == 2)
        # Service is byte-fair within a quantum: neither flow starves
        # and ACKs get plenty of slots despite their tiny size.
        assert data_bytes > 0 and ack_bytes > 0
        acks_served = sum(1 for p in first_40 if p.flow_id == 2)
        assert acks_served >= 15

    def test_idle_flow_removed_from_ring(self):
        queue = FairQueue(limit=10)
        queue.enqueue(data(1))
        queue.dequeue()
        queue.enqueue(data(2))
        assert queue.dequeue().flow_id == 2


class TestLongestQueueDrop:
    def test_drop_hits_the_hog(self):
        queue = FairQueue(limit=5)
        for i in range(5):
            queue.enqueue(data(1, i))
        accepted = queue.enqueue(data(2, 0))  # over limit
        assert accepted                        # the newcomer stays
        assert queue.drops_by_flow == {1: 1}   # the hog pays
        assert queue.flow_backlog(2) == 1

    def test_own_flow_can_be_victim(self):
        queue = FairQueue(limit=3)
        for i in range(4):
            queue.enqueue(data(1, i))
        assert queue.drops_by_flow == {1: 1}
        assert len(queue) == 3

    def test_drop_callback(self):
        dropped = []
        queue = FairQueue(limit=2)
        queue.on_drop = lambda packet, reason: dropped.append((packet.flow_id, reason))
        queue.enqueue(data(1, 0))
        queue.enqueue(data(1, 1))
        queue.enqueue(data(2, 0))
        assert dropped == [(1, "fq-overflow")]

    def test_buffer_never_exceeds_limit(self):
        queue = FairQueue(limit=6)
        for flow in (1, 2, 3):
            for i in range(5):
                queue.enqueue(data(flow, i))
        assert len(queue) <= 6


class TestPaperConjecture:
    def test_acks_survive_fair_share_gateway(self):
        """§2.3: with per-flow fair share at the router, an ACK stream
        (40 B packets) sharing the buffer with aggressive data streams
        is essentially never the drop victim."""
        queue = FairQueue(limit=30)
        # Aggressive data flows overfill the buffer...
        for flow in (1, 2):
            for i in range(25):
                queue.enqueue(data(flow, i))
        # ...while a modest ACK stream trickles through.
        for i in range(10):
            queue.enqueue(ack(3, i))
        assert queue.drops_by_flow.get(3, 0) == 0
        assert queue.drops_by_flow.get(1, 0) + queue.drops_by_flow.get(2, 0) > 0

    def test_end_to_end_ack_loss_rate_under_fq(self):
        """Same conjecture through a live reverse-path gateway: data
        flows congest the ACK direction, but FQ protects the ACKs."""
        from repro.experiments.common import FlowSpec, build_dumbbell_scenario
        from repro.net.topology import DumbbellParams

        # Forward flows 1-2 (S->K) plus a reverse data flow would need
        # asymmetric wiring; instead verify at queue granularity with a
        # congested shared FairQueue on the bottleneck.
        queue_holder = {}

        def factory(name):
            queue_holder["q"] = FairQueue(limit=12, name=name)
            return queue_holder["q"]

        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="newreno", amount_packets=200) for _ in range(3)],
            params=DumbbellParams(n_pairs=3),
            bottleneck_queue_factory=factory,
        )
        scenario.sim.run(until=120.0)
        assert all(s.completed for s in scenario.senders.values())
        assert queue_holder["q"].drops > 0  # congestion really happened
