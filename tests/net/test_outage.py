"""Tests for link outages — a natural burst-loss generator."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.link import Link
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator


class SinkNode:
    def __init__(self):
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append(packet)


def make_link(sim):
    link = Link(sim, "A->B", 1e6, 0.001, DropTailQueue(100))
    sink = SinkNode()
    link.connect(sink)
    return link, sink


class TestOutageMechanics:
    def test_packets_dropped_while_down(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.set_down()
        link.send(data_packet(1, "S", "K", 0))
        sim.run()
        assert sink.arrivals == []
        assert link.outage_drops == 1

    def test_packets_flow_after_up(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.set_down()
        link.set_up()
        link.send(data_packet(1, "S", "K", 0))
        sim.run()
        assert len(sink.arrivals) == 1

    def test_queued_packets_survive_outage(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.send(data_packet(1, "S", "K", 0))  # queued/transmitting
        link.set_down()
        sim.run()
        assert len(sink.arrivals) == 1  # already accepted: delivered

    def test_scheduled_outage_window(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.schedule_outage(start=1.0, duration=0.5)
        sim.schedule(0.5, link.send, data_packet(1, "S", "K", 0))   # before
        sim.schedule(1.2, link.send, data_packet(1, "S", "K", 1))   # during
        sim.schedule(2.0, link.send, data_packet(1, "S", "K", 2))   # after
        sim.run()
        assert sorted(p.seqno for p in sink.arrivals) == [0, 2]

    def test_negative_duration_rejected(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ConfigurationError):
            link.schedule_outage(start=1.0, duration=-1.0)


class TestOutageRecovery:
    @pytest.mark.parametrize("variant", ["tahoe", "newreno", "sack", "rr"])
    def test_transfer_survives_short_outage(self, variant):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        # 150 ms forward-path outage mid-transfer: a raw loss burst.
        scenario.dumbbell.forward_link.schedule_outage(start=1.0, duration=0.15)
        scenario.sim.run(until=300.0)
        sender, _ = scenario.flow(1)
        assert sender.completed, variant
        assert scenario.receivers[1].delivered == 200
        assert scenario.dumbbell.forward_link.outage_drops > 0

    def test_rr_outage_burst_single_episode(self):
        """A short outage is exactly the in-window burst RR targets:
        one recovery episode, no timeout, when enough of the window
        survives to keep the ACK clock alive."""
        from repro.config import TcpConfig

        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=400)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        )
        # Short outage: clips a few packets from the middle of a window.
        scenario.dumbbell.forward_link.schedule_outage(start=1.5, duration=0.05)
        scenario.sim.run(until=300.0)
        sender, stats = scenario.flow(1)
        assert sender.completed
        drops = scenario.dumbbell.forward_link.outage_drops
        assert drops >= 2
        assert sender.timeouts == 0
        assert len(stats.episodes) == 1

    def test_ack_path_outage(self):
        """Losing a stretch of ACKs must not break reliability."""
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        scenario.dumbbell.reverse_link.schedule_outage(start=1.0, duration=0.2)
        scenario.sim.run(until=300.0)
        sender, _ = scenario.flow(1)
        assert sender.completed


class TestOutageTracing:
    def make_traced_link(self, sim):
        from repro.sim.tracing import TraceBus

        bus = TraceBus()
        link = Link(sim, "A->B", 1e6, 0.001, DropTailQueue(100), trace=bus)
        link.connect(SinkNode())
        return link, bus

    def test_down_up_events_published(self):
        sim = Simulator()
        link, bus = self.make_traced_link(sim)
        seen = []
        bus.subscribe("*", lambda r: seen.append((r.time, r.category)))
        link.schedule_outage(start=1.0, duration=0.5)
        sim.run()
        assert seen == [(1.0, "link.down"), (1.5, "link.up")]

    def test_redundant_transitions_not_emitted(self):
        sim = Simulator()
        link, bus = self.make_traced_link(sim)
        seen = []
        bus.subscribe("*", lambda r: seen.append(r.category))
        link.set_down()
        link.set_down()  # no-op: already down
        link.set_up()
        link.set_up()    # no-op: already up
        assert seen == ["link.down", "link.up"]

    def test_overlapping_outages_union(self):
        """Two overlapping windows: the link is down for the union and
        the trailing set_up of the first window is a harmless no-op."""
        sim = Simulator()
        link, bus = self.make_traced_link(sim)
        link.schedule_outage(start=1.0, duration=1.0)   # [1.0, 2.0)
        link.schedule_outage(start=1.5, duration=1.0)   # [1.5, 2.5)
        probes = []
        for t in (0.5, 1.2, 2.2, 3.0):
            sim.schedule_at(t, lambda: probes.append((sim.now, link.is_down)))
        sim.run()
        # The first window's set_up at t=2.0 re-opened the link early:
        # scheduled outages compose as toggles, documented behaviour.
        assert probes[0] == (0.5, False)
        assert probes[1] == (1.2, True)
        assert probes[3] == (3.0, False)

    def test_zero_duration_outage_is_legal(self):
        sim = Simulator()
        link, _ = self.make_traced_link(sim)
        link.schedule_outage(start=1.0, duration=0.0)
        sim.run()
        assert not link.is_down
