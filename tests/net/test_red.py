"""Unit tests for the RED gateway."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import data_packet
from repro.net.red import RedParams, RedQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


def pkt(seqno=0):
    return data_packet(1, "S1", "K1", seqno)


def make_queue(sim=None, **overrides):
    sim = sim or Simulator()
    params = RedParams(**overrides) if overrides else RedParams()
    return RedQueue(sim, params, RngStream(1, "red")), sim


class TestRedParams:
    def test_paper_defaults(self):
        params = RedParams()
        assert params.min_th == 5.0
        assert params.max_th == 20.0
        assert params.max_p == 0.02
        assert params.weight == 0.002
        assert params.limit == 25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"weight": 1.5},
            {"min_th": 10.0, "max_th": 5.0},
            {"max_p": 0.0},
            {"max_p": 2.0},
            {"limit": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RedParams(**kwargs).validate()


class TestRedBehaviour:
    def test_accepts_below_min_threshold(self):
        queue, _ = make_queue()
        for i in range(4):
            assert queue.enqueue(pkt(i))
        assert queue.drops == 0

    def test_average_tracks_queue_slowly(self):
        queue, _ = make_queue()
        for i in range(10):
            queue.enqueue(pkt(i))
        # With w=0.002 the average stays far below the instantaneous size.
        assert 0 < queue.avg < 1.0

    def test_forced_drop_above_max_threshold(self):
        queue, _ = make_queue(weight=1.0)  # avg == instantaneous queue
        for i in range(30):
            queue.enqueue(pkt(i))
        # With avg above max_th every arrival is dropped.
        assert queue.forced_drops > 0

    def test_overflow_drop_at_limit(self):
        queue, _ = make_queue(limit=5, min_th=100, max_th=200)
        for i in range(10):
            queue.enqueue(pkt(i))
        assert len(queue) == 5
        assert queue.overflow_drops == 5

    def test_early_drops_in_between_region(self):
        # Force avg into [min_th, max_th) with weight=1 and a high max_p.
        queue, _ = make_queue(weight=1.0, min_th=2, max_th=50, max_p=0.5, limit=100)
        for i in range(200):
            queue.enqueue(pkt(i))
            if len(queue) > 10:
                queue.dequeue()
        assert queue.early_drops > 0

    def test_no_drops_when_idle_and_small(self):
        queue, sim = make_queue()
        for burst in range(3):
            queue.enqueue(pkt(burst))
            queue.dequeue()
            sim.run(until=sim.now + 1.0)
        assert queue.drops == 0

    def test_idle_period_decays_average(self):
        queue, sim = make_queue(weight=0.5)
        for i in range(10):
            queue.enqueue(pkt(i))
        avg_before = queue.avg
        while queue.dequeue() is not None:
            pass
        sim.run(until=sim.now + 10.0)  # long idle period
        queue.enqueue(pkt(99))
        assert queue.avg < avg_before

    def test_count_spreads_drops(self):
        # With avg pinned in the drop region, the count mechanism must
        # guarantee a drop within 1/pb packets (pa -> 1 as count grows).
        queue, _ = make_queue(weight=1.0, min_th=1, max_th=100, max_p=0.1, limit=1000)
        for i in range(60):
            queue.enqueue(pkt(i))
        assert queue.early_drops >= 1

    def test_dequeue_marks_idle_start(self):
        queue, sim = make_queue()
        queue.enqueue(pkt(0))
        queue.dequeue()
        assert queue.is_empty
        # Entering idle must not crash subsequent enqueues.
        sim.run(until=sim.now + 0.5)
        assert queue.enqueue(pkt(1))
