"""Unit tests for links (transmission + propagation + queueing)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.loss import DeterministicLoss
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus


class SinkNode:
    """Records packet arrivals with timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, bandwidth_bps=8000.0, delay=1.0, limit=10, loss=None, trace=None):
    link = Link(
        sim,
        "A->B",
        bandwidth_bps,
        delay,
        DropTailQueue(limit=limit, name="q"),
        trace=trace,
        loss=loss,
    )
    sink = SinkNode(sim)
    link.connect(sink)
    return link, sink


def pkt(seqno=0, size=1000):
    return data_packet(1, "S1", "K1", seqno, size=size)


class TestDelays:
    def test_single_packet_latency(self):
        sim = Simulator()
        # 1000 B at 8000 bps = 1 s transmission + 1 s propagation = 2 s.
        link, sink = make_link(sim)
        link.send(pkt())
        sim.run()
        assert sink.arrivals[0][0] == pytest.approx(2.0)

    def test_transmission_time_scales_with_size(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.send(pkt(size=500))  # 0.5 s tx + 1 s prop
        sim.run()
        assert sink.arrivals[0][0] == pytest.approx(1.5)

    def test_back_to_back_packets_are_serialised(self):
        sim = Simulator()
        link, sink = make_link(sim)
        link.send(pkt(0))
        link.send(pkt(1))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        # Second packet waits one transmission time behind the first.
        assert times[0] == pytest.approx(2.0)
        assert times[1] == pytest.approx(3.0)

    def test_pipelining_propagation(self):
        sim = Simulator()
        # Tiny transmission time, long propagation: both packets in
        # flight simultaneously.
        link, sink = make_link(sim, bandwidth_bps=8_000_000.0, delay=5.0)
        link.send(pkt(0))
        link.send(pkt(1))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        assert times[1] - times[0] == pytest.approx(0.001)

    def test_delivery_order_preserved(self):
        sim = Simulator()
        link, sink = make_link(sim)
        for i in range(5):
            link.send(pkt(i))
        sim.run()
        assert [p.seqno for _, p in sink.arrivals] == [0, 1, 2, 3, 4]


class TestQueueing:
    def test_overflow_drops_via_queue(self):
        sim = Simulator()
        link, sink = make_link(sim, limit=2)
        for i in range(10):
            link.send(pkt(i))
        sim.run()
        # One in the transmitter + 2 queued survive.
        assert len(sink.arrivals) == 3

    def test_busy_flag(self):
        sim = Simulator()
        link, _ = make_link(sim)
        assert not link.busy
        link.send(pkt())
        assert link.busy

    def test_counters(self):
        sim = Simulator()
        link, _ = make_link(sim)
        link.send(pkt(0, size=100))
        link.send(pkt(1, size=100))
        sim.run()
        assert link.packets_delivered == 2
        assert link.bytes_delivered == 200


class TestLossAndTracing:
    def test_injected_loss_destroys_packet(self):
        sim = Simulator()
        link, sink = make_link(sim, loss=DeterministicLoss([(1, 0)]))
        link.send(pkt(0))
        link.send(pkt(1))
        sim.run()
        assert [p.seqno for _, p in sink.arrivals] == [1]

    def test_drop_trace_record(self):
        sim = Simulator()
        trace = TraceBus()
        drops = []
        trace.subscribe("link.drop", drops.append)
        link, _ = make_link(sim, limit=1, trace=trace)
        for i in range(3):
            link.send(pkt(i))
        sim.run()
        assert len(drops) == 1
        assert drops[0].fields["reason"] == "overflow"

    def test_injected_drop_trace_record(self):
        sim = Simulator()
        trace = TraceBus()
        drops = []
        trace.subscribe("link.injected_drop", drops.append)
        link, _ = make_link(sim, loss=DeterministicLoss([(1, 0)]), trace=trace)
        link.send(pkt(0))
        sim.run()
        assert len(drops) == 1


class TestValidation:
    def test_invalid_bandwidth(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, "x", 0.0, 1.0, DropTailQueue(1))

    def test_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, "x", 1.0, -1.0, DropTailQueue(1))

    def test_unconnected_link_raises_on_delivery(self):
        sim = Simulator()
        link = Link(sim, "x", 8000.0, 0.1, DropTailQueue(5))
        link.send(pkt())
        with pytest.raises(ConfigurationError):
            sim.run()
