"""Tests for reordering injection — including the paper's §2.2.2 claim
that RR's ndup accounting survives out-of-order delivery."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import DeterministicLoss
from repro.net.packet import ack_packet, data_packet
from repro.net.reorder import DeterministicReorderer, RandomReorderer
from repro.net.topology import DumbbellParams
from repro.sim.rng import RngStream


class TestReordererUnits:
    def test_random_validation(self):
        with pytest.raises(ConfigurationError):
            RandomReorderer(RngStream(1), probability=1.5)
        with pytest.raises(ConfigurationError):
            RandomReorderer(RngStream(1), probability=0.5, delay=-1.0)

    def test_random_probability_one_delays_all_data(self):
        reorderer = RandomReorderer(RngStream(1), probability=1.0, delay=0.05)
        assert reorderer.extra_delay(data_packet(1, "S", "K", 0)) == 0.05
        assert reorderer.extra_delay(ack_packet(1, "K", "S", 0)) == 0.0
        assert reorderer.reordered == 1

    def test_random_flow_filter(self):
        reorderer = RandomReorderer(RngStream(1), probability=1.0, flow_id=2)
        assert reorderer.extra_delay(data_packet(1, "S", "K", 0)) == 0.0
        assert reorderer.extra_delay(data_packet(2, "S", "K", 0)) > 0.0

    def test_deterministic_first_pass_only(self):
        reorderer = DeterministicReorderer([(1, 5)], delay=0.03)
        assert reorderer.extra_delay(data_packet(1, "S", "K", 5)) == 0.03
        assert reorderer.extra_delay(data_packet(1, "S", "K", 5)) == 0.0

    def test_deterministic_skips_retransmissions(self):
        reorderer = DeterministicReorderer([(1, 5)])
        rtx = data_packet(1, "S", "K", 5, is_retransmit=True)
        assert reorderer.extra_delay(rtx) == 0.0


class TestReorderingOnTheWire:
    def run_with_reorder(self, variant, targets, packets=200, loss=None):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=packets)],
            params=DumbbellParams(n_pairs=1, buffer_packets=50),
            default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
            forward_loss=loss,
        )
        scenario.dumbbell.forward_link.reorder = DeterministicReorderer(
            targets, delay=0.03
        )
        scenario.sim.run(until=300.0)
        return scenario

    def test_reordering_causes_out_of_order_arrivals(self):
        scenario = self.run_with_reorder("newreno", [(1, 50)])
        receiver = scenario.receivers[1]
        assert receiver.duplicates_received >= 0  # completed without error
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert receiver.delivered == 200

    def test_mild_reordering_does_not_trigger_fast_retransmit(self):
        """A 2-position swap yields < 3 dup ACKs: no spurious recovery."""
        scenario = self.run_with_reorder("rr", [(1, 50)])
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert len(stats.episodes) == 0
        assert sender.retransmits == 0

    def test_deep_reordering_triggers_spurious_retransmit(self):
        """A long displacement generates >= 3 dup ACKs: classic TCP
        (and RR) must treat it as loss — the packet is retransmitted
        spuriously but the transfer still completes correctly."""
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=50),
            default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        )
        scenario.dumbbell.forward_link.reorder = DeterministicReorderer(
            [(1, 50)], delay=0.2
        )
        scenario.sim.run(until=300.0)
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert sender.retransmits >= 1
        assert scenario.receivers[1].delivered == 200

    def test_rr_accounting_survives_reordering_during_recovery(self):
        """Paper §2.2.2: reordering of the *new* packets sent during
        recovery must not skew ndup and fabricate further losses."""
        loss = DeterministicLoss([(1, 100), (1, 101), (1, 102)])
        # Reorder two of the new packets RR sends during the probe.
        scenario = self.run_with_reorder(
            "rr", [(1, 126), (1, 128)], packets=400, loss=loss
        )
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert sender.timeouts == 0
        assert sender.further_losses_detected == 0  # no fabricated losses

    def test_random_reordering_reliable_delivery(self):
        for variant in ("newreno", "sack", "rr"):
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant=variant, amount_packets=150)],
                params=DumbbellParams(n_pairs=1, buffer_packets=50),
            )
            scenario.dumbbell.forward_link.reorder = RandomReorderer(
                RngStream(13, variant), probability=0.05, delay=0.015
            )
            scenario.sim.run(until=300.0)
            sender, _ = scenario.flow(1)
            assert sender.completed, variant
            assert scenario.receivers[1].delivered == 150
