"""Compact routing: degree-1 nodes get a single ``"*"`` default route."""

from repro.net.network import Network
from repro.net.node import Agent
from repro.net.packet import data_packet


class RecordingAgent(Agent):
    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def linear(sim, n_routers=2):
    """A - R0 - ... - B with duplex links; hosts have degree 1."""
    net = Network(sim)
    net.add_host("A")
    for i in range(n_routers):
        net.add_router(f"R{i}")
    net.add_host("B")
    names = ["A"] + [f"R{i}" for i in range(n_routers)] + ["B"]
    for a, b in zip(names, names[1:]):
        net.add_duplex_link(a, b, 1e6, 0.001)
    return net


def test_compact_gives_degree_one_nodes_a_default_route(sim):
    net = linear(sim)
    net.compute_routes(compact=True)
    assert set(net.nodes["A"].routes) == {"*"}
    assert set(net.nodes["B"].routes) == {"*"}
    # Interior routers keep explicit per-destination tables.
    assert "*" not in net.nodes["R0"].routes
    assert "B" in net.nodes["R0"].routes


def test_compact_routes_still_deliver(sim):
    net = linear(sim, n_routers=3)
    net.compute_routes(compact=True)
    agent = RecordingAgent(7)
    net.nodes["B"].register(agent)
    net.nodes["A"].send(data_packet(7, "A", "B", 3))
    sim.run()
    assert [p.seqno for p in agent.received] == [3]


def test_default_mode_has_no_star_routes(sim):
    net = linear(sim)
    net.compute_routes()
    assert "*" not in net.nodes["A"].routes
    assert "B" in net.nodes["A"].routes


def test_compact_falls_back_when_not_strongly_connected(sim):
    # One-way attachment: nothing routes back to LONELY, so the graph
    # is not strongly connected and compact must silently fall back to
    # full per-destination Dijkstra tables everywhere.
    net = linear(sim)
    net.add_router("LONELY")
    net.add_link("LONELY", "A", 1e6, 0.001)
    net.compute_routes(compact=True)
    assert "*" not in net.nodes["A"].routes
    assert "B" in net.nodes["A"].routes
