"""Unit tests for the network container and shortest-path routing."""

import pytest

from repro.errors import TopologyError
from repro.net.network import Network
from repro.net.node import Agent
from repro.net.packet import data_packet
from repro.sim.engine import Simulator


class RecordingAgent(Agent):
    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def linear_network(sim, names, bandwidth=1e6, delay=0.001):
    """hosts at the ends, routers in the middle: A - R... - B."""
    net = Network(sim)
    net.add_host(names[0])
    for name in names[1:-1]:
        net.add_router(name)
    net.add_host(names[-1])
    for a, b in zip(names, names[1:]):
        net.add_duplex_link(a, b, bandwidth, delay)
    net.compute_routes()
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self, sim):
        net = Network(sim)
        net.add_host("A")
        with pytest.raises(TopologyError):
            net.add_router("A")

    def test_link_requires_existing_endpoints(self, sim):
        net = Network(sim)
        net.add_host("A")
        with pytest.raises(TopologyError):
            net.add_link("A", "B", 1e6, 0.001)

    def test_duplicate_link_rejected(self, sim):
        net = Network(sim)
        net.add_host("A")
        net.add_host("B")
        net.add_link("A", "B", 1e6, 0.001)
        with pytest.raises(TopologyError):
            net.add_link("A", "B", 1e6, 0.001)

    def test_link_lookup(self, sim):
        net = Network(sim)
        net.add_host("A")
        net.add_host("B")
        forward, backward = net.add_duplex_link("A", "B", 1e6, 0.001)
        assert net.link("A", "B") is forward
        assert net.link("B", "A") is backward
        with pytest.raises(TopologyError):
            net.link("A", "C")

    def test_host_lookup_type_checked(self, sim):
        net = Network(sim)
        net.add_router("R")
        with pytest.raises(TopologyError):
            net.host("R")


class TestRouting:
    def test_multi_hop_delivery(self, sim):
        net = linear_network(sim, ["A", "R1", "R2", "B"])
        agent = RecordingAgent(1)
        net.host("B").register(agent)
        sender = RecordingAgent(1)
        net.host("A").register(sender)
        sender.send(data_packet(1, "A", "B", 0))
        sim.run()
        assert len(agent.received) == 1

    def test_reverse_path_delivery(self, sim):
        net = linear_network(sim, ["A", "R1", "B"])
        agent_a = RecordingAgent(1)
        net.host("A").register(agent_a)
        agent_b = RecordingAgent(1)
        net.host("B").register(agent_b)
        agent_b.send(data_packet(1, "B", "A", 0))
        sim.run()
        assert len(agent_a.received) == 1

    def test_shortest_delay_path_chosen(self, sim):
        net = Network(sim)
        for name in ["A", "FAST", "SLOW", "B"]:
            if name in ("A", "B"):
                net.add_host(name)
            else:
                net.add_router(name)
        net.add_duplex_link("A", "FAST", 1e6, 0.001)
        net.add_duplex_link("FAST", "B", 1e6, 0.001)
        net.add_duplex_link("A", "SLOW", 1e6, 0.5)
        net.add_duplex_link("SLOW", "B", 1e6, 0.5)
        net.compute_routes()
        assert net.nodes["A"].routes["B"].name == "A->FAST"

    def test_routes_cover_all_reachable_nodes(self, sim):
        net = linear_network(sim, ["A", "R1", "R2", "B"])
        assert set(net.nodes["A"].routes) == {"R1", "R2", "B"}

    def test_recompute_after_adding_nodes(self, sim):
        net = linear_network(sim, ["A", "R1", "B"])
        net.add_host("C")
        net.add_duplex_link("R1", "C", 1e6, 0.001)
        net.compute_routes()
        assert "C" in net.nodes["A"].routes

    def test_validate_passes_on_wired_network(self, sim):
        net = linear_network(sim, ["A", "R1", "B"])
        net.validate()
