"""Tests for the parking-lot (multi-bottleneck) topology."""

import pytest

from repro.app.ftp import FtpSource
from repro.errors import ConfigurationError
from repro.metrics.flowstats import FlowStats
from repro.net.parkinglot import ParkingLot, ParkingLotParams
from repro.sim.engine import Simulator
from repro.tcp.factory import make_connection


def build(n_hops=3, **kwargs):
    sim = Simulator()
    lot = ParkingLot(sim, ParkingLotParams(n_hops=n_hops, **kwargs))
    return sim, lot


class TestConstruction:
    def test_router_chain(self):
        _, lot = build(n_hops=3)
        assert [r.name for r in lot.routers] == ["R1", "R2", "R3", "R4"]
        assert len(lot.bottlenecks) == 3

    def test_host_naming(self):
        _, lot = build(n_hops=2)
        assert lot.long_src.name == "L_src"
        assert lot.long_dst.name == "L_dst"
        assert lot.cross_pair(1)[0].name == "X1_src"
        assert lot.cross_pair(2)[1].name == "X2_dst"

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ParkingLot(sim, ParkingLotParams(n_hops=0))

    def test_long_path_rtt(self):
        _, lot = build(n_hops=3)
        p = lot.params
        expected = 2 * (2 * p.side_delay + 3 * p.bottleneck_delay)
        assert lot.long_path_rtt() == pytest.approx(expected)


class TestTraffic:
    def test_long_flow_crosses_every_hop(self):
        sim, lot = build(n_hops=3)
        sender, _ = make_connection(sim, "rr", 1, lot.long_src, lot.long_dst)
        FtpSource(sim, sender, amount_packets=50)
        sim.run(until=60.0)
        assert sender.completed
        for bottleneck in lot.bottlenecks:
            assert bottleneck.packets_delivered >= 50

    def test_cross_flows_use_single_hop(self):
        sim, lot = build(n_hops=2)
        src, dst = lot.cross_pair(1)
        sender, _ = make_connection(sim, "newreno", 1, src, dst)
        FtpSource(sim, sender, amount_packets=30)
        sim.run(until=60.0)
        assert sender.completed
        assert lot.bottlenecks[0].packets_delivered >= 30
        assert lot.bottlenecks[1].packets_delivered == 0

    def test_multi_bottleneck_bias(self):
        """The classic parking-lot result: the long flow, competing at
        every hop, gets less throughput than the single-hop cross
        flows."""
        sim, lot = build(n_hops=3, buffer_packets=15)
        stats = {}
        long_stats = FlowStats(flow_id=1)
        long_sender, _ = make_connection(
            sim, "newreno", 1, lot.long_src, lot.long_dst, observer=long_stats
        )
        FtpSource(sim, long_sender, amount_packets=None)
        for hop in range(1, 4):
            src, dst = lot.cross_pair(hop)
            flow_stats = FlowStats(flow_id=hop + 1)
            sender, _ = make_connection(
                sim, "newreno", hop + 1, src, dst, observer=flow_stats
            )
            FtpSource(sim, sender, amount_packets=None)
            stats[hop] = flow_stats
        sim.run(until=60.0)
        cross_mean = sum(s.final_ack for s in stats.values()) / len(stats)
        assert long_stats.final_ack < cross_mean

    def test_all_variants_complete_across_chain(self):
        for variant in ("tahoe", "sack", "rr", "vegas"):
            sim, lot = build(n_hops=2)
            sender, _ = make_connection(sim, variant, 1, lot.long_src, lot.long_dst)
            FtpSource(sim, sender, amount_packets=80)
            sim.run(until=120.0)
            assert sender.completed, variant
