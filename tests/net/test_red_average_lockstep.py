"""Property: ``RedQueue.enqueue`` and ``_update_average`` never drift.

``enqueue`` once inlined its own copy of the EWMA update, and the
idle-epoch advance was later fixed in the inlined copy only — so any
caller of ``_update_average`` saw a stale idle epoch and a different
average trajectory after drops at an empty queue.  The method is now
the single authoritative implementation and ``enqueue`` calls it.

These tests drive a *shadow* queue through the method alone (mirroring
the real queue's accept/drop outcomes, which never touch ``avg``) and
assert the two ``avg`` sequences are identical over arbitrary
arrival/idle/drain patterns.  They fail on the pre-fix code.
"""

import pytest

from repro.net.packet import data_packet
from repro.net.red import RedParams, RedQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

# A slow EWMA (small weight, coarse mean packet time) keeps ``avg`` in
# the drop region across idle gaps — drops at an *empty* queue are where
# the two code paths historically disagreed.
PARAMS = RedParams(
    min_th=3.0, max_th=8.0, max_p=0.1, weight=0.05, limit=12, mean_pkt_time=0.02
)


def make_pair(sim, params=PARAMS):
    real = RedQueue(sim, params, RngStream(7, "red/real"), name="real")
    shadow = RedQueue(sim, params, RngStream(7, "red/shadow"), name="shadow")
    return real, shadow


def offer(sim, real, shadow, seq):
    """One arrival at both queues; returns ``(real_avg, shadow_avg)``.

    The shadow only runs ``_update_average``; the accept/drop outcome
    (which does not touch ``avg``) is copied from the real queue so the
    occupancies stay in lockstep without the shadow consuming any
    random numbers.
    """
    shadow._update_average()
    accepted = real.enqueue(data_packet(1, "S1", "K1", seq))
    if accepted:
        shadow._items.append(data_packet(1, "S1", "K1", seq))
    return real.avg, shadow.avg


def drain(real, shadow, n):
    for _ in range(n):
        real.dequeue()
        shadow.dequeue()


def test_drop_at_empty_queue_keeps_epochs_aligned():
    """Forced drops at an empty queue: each drop must consume the idle
    span so far in *both* paths (pre-fix, only ``enqueue`` advanced the
    epoch, so the method decayed over the whole span every time)."""
    sim = Simulator()
    real, shadow = make_pair(sim)
    real.avg = shadow.avg = 40.0  # forced-drop region, queues empty
    pairs = []
    for i in range(5):
        sim.run(until=sim.now + 0.04)
        pairs.append(offer(sim, real, shadow, i))
        drain(real, shadow, len(real._items))  # keep the link idle
    assert real.forced_drops > 0
    for got, want in pairs:
        assert got == want, pairs


@pytest.mark.parametrize("seed", [11, 29, 83])
def test_random_patterns_stay_in_lockstep(seed):
    pattern = RngStream(seed, "red/pattern")
    sim = Simulator()
    real, shadow = make_pair(sim)
    real.avg = shadow.avg = 20.0  # start hot: early arrivals find drops
    seq = 0
    real_avgs, shadow_avgs = [], []
    for _ in range(500):
        roll = pattern.random()
        if roll < 0.55:
            r, s = offer(sim, real, shadow, seq)
            real_avgs.append(r)
            shadow_avgs.append(s)
            seq += 1
        elif roll < 0.8:
            drain(real, shadow, 1 + int(pattern.random() * 4))
        else:
            # Idle gap: advance the clock with nothing in flight.
            sim.run(until=sim.now + pattern.random() * 0.05)
    assert real.early_drops + real.forced_drops > 0  # pattern hit RED
    assert real_avgs == shadow_avgs


def test_occupancy_mirroring_is_sound():
    """Sanity for the harness itself: shadow occupancy tracks real."""
    sim = Simulator()
    real, shadow = make_pair(sim)
    for i in range(20):
        offer(sim, real, shadow, i)
        if i % 5 == 4:
            drain(real, shadow, 2)
    assert len(real._items) == len(shadow._items)
