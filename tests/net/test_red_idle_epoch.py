"""Regression: the RED idle epoch must survive drops at an empty queue.

An overloaded many-flow scene can push ``avg`` past the forced-drop
threshold and then go idle: every subsequent arrival finds an empty
queue and is force-dropped.  Before the fix, the drop wiped the idle
epoch, disabling the idle decay exactly when it was the only way for
``avg`` to recover — a permanent lockout.  The epoch must instead
advance to the drop time (the decay so far has been consumed) so the
next arrival only decays over the interval since the drop.
"""

import pytest

from repro.net.packet import data_packet
from repro.net.red import RedParams, RedQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


def _queue(sim):
    params = RedParams(
        min_th=5.0, max_th=15.0, max_p=0.1, limit=50, mean_pkt_time=0.001
    )
    return RedQueue(sim, params, RngStream(1, "red"))


def test_forced_drops_at_empty_queue_do_not_lock_out():
    sim = Simulator()
    queue = _queue(sim)
    queue.avg = 40.0  # deep in the forced-drop region, queue empty
    outcomes = []

    def offer(seq):
        outcomes.append(queue.enqueue(data_packet(1, "S1", "K1", seq)))
        while queue.dequeue() is not None:
            pass  # drain immediately so the link goes idle again

    for i in range(30):
        sim.schedule_at(0.1 * (i + 1), offer, i)
    sim.run()

    # ~100 mean packet times of idle decay per gap bring avg back below
    # min_th; later arrivals are accepted again.  (With the epoch wiped
    # on drop, avg would still be ~37 here and every offer refused.)
    assert queue.avg < queue.params.min_th
    assert outcomes[-1] is True
    assert any(outcomes)


def test_idle_epoch_advances_to_the_drop_time():
    """Each drop consumes the idle span so far — no double decay."""
    sim = Simulator()
    queue = _queue(sim)
    w = queue.params.weight
    queue.avg = 40.0
    sim.schedule_at(0.05, queue.enqueue, data_packet(1, "S1", "K1", 0))
    sim.schedule_at(0.08, queue.enqueue, data_packet(1, "S1", "K1", 1))
    sim.run()

    expected = 40.0 * (1 - w) ** 50 * (1 - w)  # 50 idle slots, then the arrival
    expected *= (1 - w) ** 30 * (1 - w)  # only the 30 slots since the drop
    assert queue.avg == pytest.approx(expected, rel=1e-12)
    assert queue.forced_drops == 2 and len(queue) == 0
