"""Tests for the ECN extension: RED marking, receiver echo, sender
reaction."""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.packet import ack_packet, data_packet
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.newreno import NewRenoSender
from repro.tcp.receiver import TcpReceiver
from tests.conftest import SenderHarness


class TestRedMarking:
    def make_queue(self, ecn=True):
        sim = Simulator()
        params = RedParams(weight=1.0, min_th=1, max_th=50, max_p=1.0, limit=100, ecn=ecn)
        return RedQueue(sim, params, RngStream(1, "red"))

    def test_capable_packets_marked_not_dropped(self):
        queue = self.make_queue(ecn=True)
        for i in range(10):
            packet = data_packet(1, "S", "K", i)
            packet.ecn_capable = True
            queue.enqueue(packet)
        assert queue.ecn_marks > 0
        assert queue.early_drops == 0

    def test_incapable_packets_still_dropped(self):
        queue = self.make_queue(ecn=True)
        for i in range(10):
            queue.enqueue(data_packet(1, "S", "K", i))
        assert queue.early_drops > 0
        assert queue.ecn_marks == 0

    def test_ecn_off_drops_capable_packets(self):
        queue = self.make_queue(ecn=False)
        for i in range(10):
            packet = data_packet(1, "S", "K", i)
            packet.ecn_capable = True
            queue.enqueue(packet)
        assert queue.early_drops > 0
        assert queue.ecn_marks == 0


class TestReceiverEcho:
    def make_receiver(self):
        sim = Simulator()
        receiver = TcpReceiver(sim, flow_id=1)

        class Host:
            name = "K1"
            sent = []

            def send(self, packet):
                self.sent.append(packet)

        host = Host()
        host.sent = []
        receiver.attach(host)
        return receiver, host

    def test_marked_packet_echoed(self):
        receiver, host = self.make_receiver()
        packet = data_packet(1, "S1", "K1", 0)
        packet.ecn_marked = True
        receiver.receive(packet)
        assert host.sent[0].ecn_echo
        assert receiver.ecn_marks_seen == 1

    def test_unmarked_packet_not_echoed(self):
        receiver, host = self.make_receiver()
        receiver.receive(data_packet(1, "S1", "K1", 0))
        assert not host.sent[0].ecn_echo

    def test_echo_clears_after_one_ack(self):
        receiver, host = self.make_receiver()
        marked = data_packet(1, "S1", "K1", 0)
        marked.ecn_marked = True
        receiver.receive(marked)
        receiver.receive(data_packet(1, "S1", "K1", 1))
        assert host.sent[0].ecn_echo
        assert not host.sent[1].ecn_echo


class TestSenderReaction:
    def make(self):
        return SenderHarness(
            NewRenoSender,
            TcpConfig(initial_cwnd=10.0, initial_ssthresh=64, ecn_enabled=True),
        )

    def echo(self, harness, ackno):
        ack = ack_packet(1, "K1", "S1", ackno)
        ack.ecn_echo = True
        harness.sender.receive(ack)

    def test_halves_on_echo(self):
        harness = self.make()
        harness.start()
        self.echo(harness, 1)
        assert harness.sender.cwnd == pytest.approx(5.0)  # flight was 10
        assert harness.sender.ecn_reactions == 1

    def test_at_most_once_per_window(self):
        harness = self.make()
        harness.start()
        self.echo(harness, 1)
        cwnd = harness.sender.cwnd
        self.echo(harness, 2)  # same window of data
        assert harness.sender.cwnd == pytest.approx(cwnd)
        assert harness.sender.ecn_reactions == 1

    def test_reacts_again_next_window(self):
        harness = self.make()
        harness.start()
        self.echo(harness, 1)
        # advance past the reaction marker (= snd_nxt at reaction)
        marker = harness.sender._ecn_react_marker
        for ack in range(2, marker + 1):
            harness.ack(ack)
        self.echo(harness, marker + 1)
        assert harness.sender.ecn_reactions == 2

    def test_disabled_by_default(self):
        harness = SenderHarness(NewRenoSender, TcpConfig(initial_cwnd=10.0))
        harness.start()
        assert not harness.host.sent[0].ecn_capable
        self.echo(harness, 1)
        assert harness.sender.ecn_reactions == 0

    def test_data_packets_carry_ect(self):
        harness = self.make()
        harness.start()
        assert all(p.ecn_capable for p in harness.host.sent if p.is_data)


class TestEcnEndToEnd:
    def test_ecn_flow_avoids_early_drops(self):
        sim = Simulator()
        rng = RngStream(5, "red")
        params = RedParams(ecn=True, weight=0.02)  # fast-moving average
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="newreno", amount_packets=800)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            default_config=TcpConfig(ecn_enabled=True),
            bottleneck_queue_factory=lambda name: RedQueue(
                sim, params, rng.substream(name), name=name
            ),
            sim=sim,
        )
        scenario.sim.run(until=120.0)
        sender, stats = scenario.flow(1)
        queue = scenario.dumbbell.bottleneck_queue
        assert sender.completed
        assert queue.ecn_marks > 0
        assert sender.ecn_reactions > 0
        # Early drops replaced by marks; only overflow can still drop.
        assert queue.early_drops == 0
