"""Unit tests for time-varying links (repro.net.varlink): rate
schedules, handover outages, bufferbloat presets, batched-egress
refusal and checkpoint compatibility."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.net.varlink import RateSchedule, bufferbloat_limit, bufferbloat_queue
from repro.sim.engine import Simulator


class SinkNode:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, bandwidth_bps=8000.0, delay=0.0, limit=50):
    link = Link(sim, "A->B", bandwidth_bps, delay, DropTailQueue(limit=limit, name="q"))
    sink = SinkNode(sim)
    link.connect(sink)
    return link, sink


def pkt(seqno=0, size=1000):
    return data_packet(1, "S1", "K1", seqno, size=size)


class TestValidation:
    def test_steps_must_increase(self):
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((0.0, 1e6), (0.0, 2e6))).validate()

    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((0.0, 0.0),)).validate()

    def test_negative_outage_rejected(self):
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((0.0, 1e6),), outages=((1.0, -0.5),)).validate()

    def test_rate_at(self):
        sched = RateSchedule.steps_every([1e6, 2e6, 3e6], interval=10.0)
        assert sched.rate_at(-1.0, default=5e5) == 5e5
        assert sched.rate_at(0.0) == 1e6
        assert sched.rate_at(15.0) == 2e6
        assert sched.rate_at(100.0) == 3e6
        assert sched.min_rate() == 1e6


class TestApplication:
    def test_rate_step_changes_service_time(self):
        sim = Simulator()
        link, sink = make_link(sim)  # 8000 bps: 1 s per 1000 B packet
        RateSchedule(steps=((1.5, 16000.0),)).apply(link)
        link.send(pkt(0))  # served [0, 1]
        link.send(pkt(1))  # served [1, 2]: admitted before the step
        sim.run(until=10.0)
        # Packet 1 entered service at t=1 (old rate still in force when
        # its service began? no — service starts at 1.0, before the
        # 1.5 s step, so it still takes 1 s), packet 2 queued below.
        assert [t for t, _ in sink.arrivals] == pytest.approx([1.0, 2.0])
        sim2 = Simulator()
        link2, sink2 = make_link(sim2)
        RateSchedule(steps=((1.5, 16000.0),)).apply(link2)
        for i in range(3):
            link2.send(pkt(i))
        sim2.run(until=10.0)
        # Third packet starts service at t=2, after the step: 0.5 s.
        assert [t for t, _ in sink2.arrivals] == pytest.approx([1.0, 2.0, 2.5])

    def test_outage_destroys_arrivals(self):
        sim = Simulator()
        link, sink = make_link(sim)
        RateSchedule(steps=((0.0, 8000.0),), outages=((5.0, 2.0),)).apply(link)
        sim.schedule_at(6.0, link.send, pkt(0))  # inside the window
        sim.schedule_at(8.0, link.send, pkt(1))  # after it lifts
        sim.run(until=20.0)
        assert link.outage_drops == 1
        assert len(sink.arrivals) == 1

    def test_schedule_recorded_on_link(self):
        sim = Simulator()
        link, _ = make_link(sim)
        sched = RateSchedule(steps=((1.0, 1e6),))
        sched.apply(link)
        assert link.rate_schedule is sched

    def test_double_apply_rejected(self):
        sim = Simulator()
        link, _ = make_link(sim)
        RateSchedule(steps=((1.0, 1e6),)).apply(link)
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((2.0, 2e6),)).apply(link)

    def test_past_step_rejected(self):
        sim = Simulator()
        link, _ = make_link(sim)
        sim.run(until=5.0)
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((1.0, 1e6),)).apply(link)

    def test_set_bandwidth_validates(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ConfigurationError):
            link.set_bandwidth(0.0)


class TestBatchedEgressExclusion:
    def test_scheduled_link_refuses_batching(self):
        sim = Simulator()
        link, _ = make_link(sim)
        RateSchedule(steps=((1.0, 1e6),)).apply(link)
        with pytest.raises(ConfigurationError):
            link.enable_batched_egress()

    def test_batched_link_refuses_schedule(self):
        sim = Simulator()
        link, _ = make_link(sim)
        link.enable_batched_egress()
        with pytest.raises(ConfigurationError):
            RateSchedule(steps=((1.0, 1e6),)).apply(link)


class TestSeededGenerator:
    def test_same_seed_same_schedule(self):
        a = RateSchedule.mobile(7, duration=30.0, mean_bps=2e6, handover_period=10.0)
        b = RateSchedule.mobile(7, duration=30.0, mean_bps=2e6, handover_period=10.0)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = RateSchedule.mobile(7, duration=30.0, mean_bps=2e6)
        b = RateSchedule.mobile(8, duration=30.0, mean_bps=2e6)
        assert a != b

    def test_rates_respect_spread_and_floor(self):
        sched = RateSchedule.mobile(
            3, duration=60.0, mean_bps=1e6, spread=0.5, min_bps=6e5
        )
        for _, bps in sched.steps:
            assert 6e5 <= bps <= 1.5e6

    def test_handovers_within_duration(self):
        sched = RateSchedule.mobile(
            3, duration=40.0, mean_bps=1e6, handover_period=8.0, handover_duration=0.5
        )
        assert sched.outages
        for start, duration in sched.outages:
            assert 0 <= start < 40.0
            assert duration == 0.5


class TestCheckpointCompatibility:
    def test_default_link_pickles_without_schedule_key(self):
        sim = Simulator()
        link, _ = make_link(sim)
        assert "rate_schedule" not in link.__getstate__()

    def test_scheduled_link_roundtrips(self):
        sim = Simulator()
        link, _ = make_link(sim)
        sched = RateSchedule(steps=((1.0, 1e6),), outages=((5.0, 0.5),))
        sched.apply(link)
        clone = pickle.loads(pickle.dumps(link))
        assert clone.rate_schedule == sched

    def test_restored_default_link_has_attribute(self):
        sim = Simulator()
        link, _ = make_link(sim)
        clone = pickle.loads(pickle.dumps(link))
        assert clone.rate_schedule is None


class TestBufferbloat:
    def test_limit_is_bdp_multiple(self):
        # 8 Mbps * 0.1 s = 100 kB = 100 packets of 1000 B; x10 = 1000.
        assert bufferbloat_limit(8e6, 0.1, multiple=10.0) == 1000

    def test_limit_floor(self):
        assert bufferbloat_limit(8000.0, 0.001, multiple=1.0) == 1

    def test_queue_preset(self):
        q = bufferbloat_queue(8e6, 0.1, multiple=5.0, name="bb")
        assert isinstance(q, DropTailQueue)
        assert q.limit == 500
        assert q.name == "bb"

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            bufferbloat_limit(0.0, 0.1)
