"""Batched-egress equivalence: opt-in batching must change only the
engine event stream, never the observable network behaviour.

Every scenario here is run twice — default transmitter vs batched —
and compared on *bit-equal* delivery timestamps, delivery order, and
drop decisions.  Equality is exact (``==`` on floats), not approx:
batching elides events, it must not re-round arithmetic.
"""

import pickle
import random

import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.net.reorder import JitterReorderer
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


class SinkNode:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet.seqno))


def make_link(sim, batched, bandwidth_bps=8000.0, delay=1.0, limit=10):
    link = Link(
        sim,
        "A->B",
        bandwidth_bps,
        delay,
        DropTailQueue(limit=limit, name="q"),
    )
    sink = SinkNode(sim)
    link.connect(sink)
    if batched:
        link.enable_batched_egress()
    return link, sink


def pkt(seqno, size=1000):
    return data_packet(1, "S1", "K1", seqno, size=size)


def run_scenario(batched, sends, limit=10):
    """Drive ``sends`` = [(time, seqno, size), ...] through one link.

    Returns (arrivals, drops, events_processed).
    """
    sim = Simulator()
    link, sink = make_link(sim, batched, limit=limit)
    for t, seqno, size in sends:
        sim.schedule_at(t, link.send, pkt(seqno, size=size))
    sim.run()
    return sink.arrivals, link.queue.drops, sim.events_processed


def random_sends(seed, n=200, horizon=30.0):
    rng = random.Random(seed)
    sends = []
    for seqno in range(n):
        sends.append((rng.uniform(0.0, horizon), seqno, rng.choice([40, 500, 1000, 1500])))
    sends.sort()
    return sends


class TestEquivalence:
    def test_single_uncontended_packet_bit_equal(self):
        default, _, _ = run_scenario(False, [(0.25, 0, 1000)])
        batched, _, _ = run_scenario(True, [(0.25, 0, 1000)])
        assert batched == default  # exact float equality, incl. timestamp

    def test_back_to_back_burst_identical(self):
        sends = [(0.0, i, 1000) for i in range(5)]
        default, ddrops, _ = run_scenario(False, sends)
        batched, bdrops, _ = run_scenario(True, sends)
        assert batched == default
        assert bdrops == ddrops == 0

    def test_overflow_drops_identical(self):
        # 20 simultaneous arrivals into a 3-slot queue: same survivors.
        sends = [(0.0, i, 1000) for i in range(20)]
        default, ddrops, _ = run_scenario(False, sends, limit=3)
        batched, bdrops, _ = run_scenario(True, sends, limit=3)
        assert batched == default
        assert bdrops == ddrops > 0

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_randomised_traffic_bit_equal(self, seed):
        sends = random_sends(seed)
        default, ddrops, _ = run_scenario(False, sends, limit=5)
        batched, bdrops, _ = run_scenario(True, sends, limit=5)
        assert batched == default
        assert bdrops == ddrops

    def test_tx_aligned_sends_hit_the_busy_boundary_exactly(self):
        # Sends landing at exact multiples of the transmission time tie
        # with the drain event at _busy_until.  A kick that trusts
        # ``now >= _busy_until`` while a drain is pending double-books
        # the service slot (two packets served in one tx window) —
        # regression for exactly that.  tx = 1500*8/8e6 = 1.5 ms; sends
        # every 0.5 ms land a packet on every busy boundary.
        sends = [(i * 0.0005, i, 1500) for i in range(50)]
        sim = Simulator()
        link = Link(sim, "A->B", 8e6, 0.01, DropTailQueue(limit=20, name="q"))
        sink = SinkNode(sim)
        link.connect(sink)
        for t, seqno, size in sends:
            sim.schedule_at(t, link.send, pkt(seqno, size=size))
        sim.run()
        default = (sink.arrivals, link.queue.drops)

        sim = Simulator()
        link = Link(sim, "A->B", 8e6, 0.01, DropTailQueue(limit=20, name="q"))
        link.enable_batched_egress()
        sink = SinkNode(sim)
        link.connect(sink)
        for t, seqno, size in sends:
            sim.schedule_at(t, link.send, pkt(seqno, size=size))
        sim.run()
        assert (sink.arrivals, link.queue.drops) == default

    def test_uncontended_traffic_uses_fewer_events(self):
        # Widely spaced packets: default = tx_done + deliver per packet,
        # batched = deliver only.
        sends = [(float(i * 10), i, 1000) for i in range(10)]
        _, _, devents = run_scenario(False, sends)
        _, _, bevents = run_scenario(True, sends)
        assert bevents < devents

    def test_contended_burst_never_uses_more_events(self):
        sends = [(0.0, i, 1000) for i in range(10)]
        _, _, devents = run_scenario(False, sends)
        _, _, bevents = run_scenario(True, sends)
        assert bevents <= devents


class TestBusyProperty:
    def test_busy_tracks_service_horizon(self):
        sim = Simulator()
        link, _ = make_link(sim, batched=True)
        assert not link.busy
        link.send(pkt(0))  # 1 s transmission
        assert link.busy
        sim.run(until=0.5)
        assert link.busy
        sim.run(until=1.5)
        assert not link.busy


class TestGuards:
    def test_reorderer_refuses_batching(self):
        sim = Simulator()
        link, _ = make_link(sim, batched=False)
        link.reorder = JitterReorderer(RngStream(1), max_jitter=0.01)
        with pytest.raises(ConfigurationError):
            link.enable_batched_egress()

    def test_enable_is_idempotent(self):
        sim = Simulator()
        link, _ = make_link(sim, batched=True)
        link.send(pkt(0))
        link.enable_batched_egress()  # no reset of _busy_until
        assert link.busy

    def test_default_link_pickles_without_batch_state(self):
        sim = Simulator()
        link, _ = make_link(sim, batched=False)
        state = link.__getstate__()
        assert "_batch" not in state
        assert "_busy_until" not in state

    def test_batched_link_pickle_roundtrip(self):
        sim = Simulator()
        link, _ = make_link(sim, batched=True)
        blob = pickle.dumps(link)
        clone = pickle.loads(blob)
        assert clone._batch is True
        assert clone._busy_until == link._busy_until
        assert clone._drain_pending is False
