"""Tests for the Gilbert-Elliott burst-loss channel."""

import pytest

from repro.errors import ConfigurationError
from repro.net.loss import GilbertElliott
from repro.net.packet import ack_packet, data_packet
from repro.sim.rng import RngStream


def data(seqno, flow=1):
    return data_packet(flow, "S1", "K1", seqno)


def make(**kwargs):
    seed = kwargs.pop("seed", 7)
    defaults = dict(
        p_good_to_bad=0.01, p_bad_to_good=0.3, p_good=0.0, p_bad=0.5
    )
    defaults.update(kwargs)
    return GilbertElliott(RngStream(seed, "ge"), **defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_good_to_bad": -0.1},
            {"p_bad_to_good": 1.5},
            {"p_good": 2.0},
            {"p_bad": -1.0},
        ],
    )
    def test_invalid_probabilities_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            make(**kwargs)


class TestBehaviour:
    def test_acks_never_dropped(self):
        module = make(p_good=1.0, p_bad=1.0)
        assert not module.should_drop(ack_packet(1, "K", "S", 1))

    def test_flow_filter(self):
        module = make(p_good=1.0, p_bad=1.0, flow_id=2)
        assert not module.should_drop(data(0, flow=1))
        assert module.should_drop(data(0, flow=2))

    def test_all_good_never_drops(self):
        module = make(p_good_to_bad=0.0, p_good=0.0)
        assert not any(module.should_drop(data(i)) for i in range(500))

    def test_always_bad_always_drops(self):
        module = make(p_good_to_bad=1.0, p_bad_to_good=0.0, p_bad=1.0)
        assert all(module.should_drop(data(i)) for i in range(50))

    def test_losses_are_bursty(self):
        """Compared with i.i.d. loss of the same rate, GE losses come
        in runs: the number of loss-run starts is much smaller than the
        number of losses."""
        module = make(p_good_to_bad=0.005, p_bad_to_good=0.2, p_bad=0.9, seed=3)
        outcomes = [module.should_drop(data(i)) for i in range(20_000)]
        losses = sum(outcomes)
        runs = sum(
            1 for prev, cur in zip([False] + outcomes, outcomes) if cur and not prev
        )
        assert losses > 100
        assert runs < 0.6 * losses  # mean run length clearly > 1

    def test_stationary_rate_matches_formula(self):
        module = make(p_good_to_bad=0.02, p_bad_to_good=0.2, p_bad=0.5, seed=11)
        expected = module.expected_loss_rate()
        n = 100_000
        observed = sum(module.should_drop(data(i)) for i in range(n)) / n
        assert observed == pytest.approx(expected, rel=0.15)

    def test_expected_rate_degenerate_chain(self):
        module = make(p_good_to_bad=0.0, p_bad_to_good=0.0, p_good=0.1, p_bad=0.9)
        assert module.expected_loss_rate() == pytest.approx(0.1)

    def test_bad_entries_counted(self):
        module = make(p_good_to_bad=1.0, p_bad_to_good=1.0, seed=5)
        for i in range(10):
            module.should_drop(data(i))
        assert module.bad_entries >= 1


class TestEndToEnd:
    def test_every_variant_survives_burst_channel(self):
        from repro.experiments.common import FlowSpec, build_dumbbell_scenario
        from repro.net.topology import DumbbellParams

        for variant in ("tahoe", "newreno", "sack", "rr"):
            module = GilbertElliott(
                RngStream(9, f"ge-{variant}"),
                p_good_to_bad=0.01,
                p_bad_to_good=0.3,
                p_bad=0.5,
            )
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant=variant, amount_packets=150)],
                params=DumbbellParams(n_pairs=1, buffer_packets=50),
                forward_loss=module,
            )
            scenario.sim.run(until=600.0)
            sender, _ = scenario.flow(1)
            assert sender.completed, variant
            assert scenario.receivers[1].delivered == 150


class TestDeterminism:
    def test_same_seed_identical_drop_sequence(self):
        sequences = []
        for _ in range(2):
            module = make(seed=17, p_good_to_bad=0.05, p_bad_to_good=0.3, p_bad=0.6)
            sequences.append([module.should_drop(data(i)) for i in range(2000)])
        assert sequences[0] == sequences[1]
        assert any(sequences[0])  # the channel actually dropped something

    def test_different_seeds_diverge(self):
        a = make(seed=1, p_good_to_bad=0.05, p_bad=0.6)
        b = make(seed=2, p_good_to_bad=0.05, p_bad=0.6)
        assert [a.should_drop(data(i)) for i in range(2000)] != [
            b.should_drop(data(i)) for i in range(2000)
        ]
