"""Unit tests for the packet model."""

import pytest

from repro.net.packet import (
    ACK,
    DATA,
    Packet,
    SackBlock,
    ack_packet,
    data_packet,
    merge_ranges,
)


class TestPacketConstruction:
    def test_data_packet_defaults(self):
        packet = data_packet(1, "S1", "K1", seqno=5)
        assert packet.is_data and not packet.is_ack
        assert packet.kind == DATA
        assert packet.size == 1000
        assert packet.seqno == 5
        assert not packet.is_retransmit

    def test_ack_packet_defaults(self):
        packet = ack_packet(1, "K1", "S1", ackno=7)
        assert packet.is_ack and not packet.is_data
        assert packet.kind == ACK
        assert packet.size == 40
        assert packet.ackno == 7
        assert packet.sack_blocks == []

    def test_retransmit_flag(self):
        packet = data_packet(1, "S1", "K1", seqno=5, is_retransmit=True)
        assert packet.is_retransmit

    def test_uids_are_unique(self):
        a = data_packet(1, "S1", "K1", 0)
        b = data_packet(1, "S1", "K1", 0)
        assert a.uid != b.uid

    def test_ack_carries_sack_blocks(self):
        packet = ack_packet(1, "K1", "S1", 3, sack_blocks=[SackBlock(5, 8)])
        assert packet.sack_blocks == [SackBlock(5, 8)]


class TestSackBlock:
    def test_contains(self):
        block = SackBlock(5, 8)
        assert 5 in block and 7 in block
        assert 8 not in block and 4 not in block

    def test_count(self):
        assert SackBlock(5, 8).count == 3

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            SackBlock(5, 5)
        with pytest.raises(ValueError):
            SackBlock(5, 3)


class TestMergeRanges:
    def test_empty(self):
        assert merge_ranges([]) == []

    def test_disjoint_sorted(self):
        assert merge_ranges([(1, 2), (4, 6)]) == [(1, 2), (4, 6)]

    def test_adjacent_merge(self):
        assert merge_ranges([(1, 3), (3, 5)]) == [(1, 5)]

    def test_overlapping_merge(self):
        assert merge_ranges([(1, 4), (2, 6)]) == [(1, 6)]

    def test_unsorted_input(self):
        assert merge_ranges([(4, 6), (1, 2), (2, 4)]) == [(1, 6)]

    def test_contained_range(self):
        assert merge_ranges([(1, 10), (3, 5)]) == [(1, 10)]
