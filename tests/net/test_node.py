"""Unit tests for hosts, routers and agents."""

import pytest

from repro.errors import TopologyError
from repro.net.link import Link
from repro.net.node import Agent, Host, Router
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


class RecordingAgent(Agent):
    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def link_between(sim, src, dst, name="L"):
    link = Link(sim, name, 1e6, 0.001, DropTailQueue(100, name))
    link.connect(dst)
    src.add_route(dst.name, link)
    return link


class TestHost:
    def test_register_and_deliver(self, sim):
        host = Host(sim, "K1")
        agent = RecordingAgent(flow_id=1)
        host.register(agent)
        packet = data_packet(1, "S1", "K1", 0)
        host.receive(packet)
        assert agent.received == [packet]

    def test_duplicate_flow_registration_rejected(self, sim):
        host = Host(sim, "K1")
        host.register(RecordingAgent(1))
        with pytest.raises(TopologyError):
            host.register(RecordingAgent(1))

    def test_unknown_flow_rejected(self, sim):
        host = Host(sim, "K1")
        with pytest.raises(TopologyError):
            host.receive(data_packet(9, "S1", "K1", 0))

    def test_misrouted_packet_rejected(self, sim):
        host = Host(sim, "K1")
        host.register(RecordingAgent(1))
        with pytest.raises(TopologyError):
            host.receive(data_packet(1, "S1", "K2", 0))

    def test_agent_send_goes_via_host_route(self, sim):
        src = Host(sim, "S1")
        dst = Host(sim, "K1")
        dst.register(RecordingAgent(1))
        link_between(sim, src, dst)
        agent = RecordingAgent(1)
        src.register(agent)
        agent.send(data_packet(1, "S1", "K1", 0))
        sim.run()
        assert dst.packets_received == 1

    def test_local_name(self, sim):
        host = Host(sim, "S1")
        agent = RecordingAgent(1)
        host.register(agent)
        assert agent.local_name == "S1"

    def test_unattached_agent_send_raises(self):
        agent = RecordingAgent(1)
        with pytest.raises(TopologyError):
            agent.send(data_packet(1, "S1", "K1", 0))

    def test_unattached_agent_local_name_raises(self):
        with pytest.raises(TopologyError):
            RecordingAgent(1).local_name


class TestRouter:
    def test_forwards_by_destination(self, sim):
        router = Router(sim, "R1")
        dst = Host(sim, "K1")
        dst.register(RecordingAgent(1))
        link_between(sim, router, dst)
        router.receive(data_packet(1, "S1", "K1", 0))
        sim.run()
        assert dst.packets_received == 1

    def test_no_route_raises(self, sim):
        router = Router(sim, "R1")
        with pytest.raises(TopologyError):
            router.receive(data_packet(1, "S1", "K9", 0))

    def test_counts_received(self, sim):
        router = Router(sim, "R1")
        dst = Host(sim, "K1")
        dst.register(RecordingAgent(1))
        link_between(sim, router, dst)
        for i in range(3):
            router.receive(data_packet(1, "S1", "K1", i))
        assert router.packets_received == 3
