"""Tests for gentle RED and the jitter injector."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.packet import ack_packet, data_packet
from repro.net.red import RedParams, RedQueue
from repro.net.reorder import JitterReorderer
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


def red(sim=None, **overrides):
    sim = sim or Simulator()
    return RedQueue(sim, RedParams(**overrides), RngStream(1, "red"))


class TestGentleRed:
    def test_classic_forces_drops_above_max_th(self):
        queue = red(weight=1.0, min_th=2, max_th=5, max_p=0.1, limit=100)
        for i in range(30):
            queue.enqueue(data_packet(1, "S", "K", i))
        assert queue.forced_drops > 0

    def test_gentle_region_marks_probabilistically(self):
        # Pin avg into (max_th, 2*max_th): gentle drops instead of forced.
        queue = red(
            weight=1.0, min_th=2, max_th=20, max_p=0.05, limit=100, gentle=True
        )
        accepted = 0
        for i in range(60):
            packet = data_packet(1, "S", "K", i)
            if queue.enqueue(packet):
                accepted += 1
            if len(queue) > 30:  # keep instantaneous (== avg) in (20, 40)
                queue.dequeue()
        # In the gentle band some packets still get through (classic RED
        # would force-drop every one of them above max_th).
        assert queue.early_drops > 0
        assert accepted > 0
        assert queue.forced_drops == 0

    def test_gentle_forces_beyond_twice_max_th(self):
        # Unit-test the threshold logic: with the average pinned beyond
        # 2*max_th, gentle RED force-drops like classic RED.
        queue = red(weight=1e-9, min_th=1, max_th=3, max_p=0.05, limit=100, gentle=True)
        queue.avg = 6.5  # > 2*max_th; near-zero weight keeps it there
        queue.enqueue(data_packet(1, "S", "K", 0))
        assert queue.forced_drops == 1

    def test_gentle_with_ecn_marks(self):
        queue = red(
            weight=1.0, min_th=2, max_th=10, max_p=0.2, limit=200,
            gentle=True, ecn=True,
        )
        for i in range(80):
            packet = data_packet(1, "S", "K", i)
            packet.ecn_capable = True
            queue.enqueue(packet)
            if len(queue) > 15:
                queue.dequeue()
        assert queue.ecn_marks > 0
        assert queue.early_drops == 0


class TestJitter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JitterReorderer(RngStream(1), max_jitter=-0.1)

    def test_zero_jitter_is_passthrough(self):
        jitter = JitterReorderer(RngStream(1), max_jitter=0.0)
        assert jitter.extra_delay(data_packet(1, "S", "K", 0)) == 0.0
        assert jitter.reordered == 0

    def test_data_jittered_within_bound(self):
        jitter = JitterReorderer(RngStream(1), max_jitter=0.02)
        delays = [jitter.extra_delay(data_packet(1, "S", "K", i)) for i in range(100)]
        assert all(0.0 <= d <= 0.02 for d in delays)
        assert max(delays) > 0.0

    def test_acks_exempt_by_default(self):
        jitter = JitterReorderer(RngStream(1), max_jitter=0.02)
        assert jitter.extra_delay(ack_packet(1, "K", "S", 0)) == 0.0
        jitter_all = JitterReorderer(RngStream(1), max_jitter=0.02, include_acks=True)
        assert jitter_all.extra_delay(ack_packet(1, "K", "S", 0)) >= 0.0

    def test_jitter_inflates_rto_estimate(self):
        """Path-delay variance must show up in RTTVAR and the RTO."""

        def final_rto(max_jitter):
            # Fast bottleneck: queueing delay negligible, so the RTT
            # variance the estimator sees comes from the jitter alone.
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant="newreno", amount_packets=150)],
                params=DumbbellParams(
                    n_pairs=1,
                    buffer_packets=200,
                    bottleneck_bandwidth_bps=10e6,
                ),
                default_config=TcpConfig(initial_ssthresh=10.0),
            )
            scenario.dumbbell.forward_link.reorder = JitterReorderer(
                RngStream(3, f"jitter-{max_jitter}"), max_jitter=max_jitter
            )
            scenario.sim.run(until=120.0)
            sender, _ = scenario.flow(1)
            assert sender.completed
            return sender.rto.srtt + 4 * sender.rto.rttvar

        assert final_rto(0.05) > final_rto(0.0)

    def test_transfer_reliable_under_heavy_jitter(self):
        for variant in ("newreno", "sack", "rr"):
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant=variant, amount_packets=150)],
                params=DumbbellParams(n_pairs=1, buffer_packets=100),
            )
            scenario.dumbbell.forward_link.reorder = JitterReorderer(
                RngStream(5, variant), max_jitter=0.03
            )
            scenario.sim.run(until=300.0)
            sender, _ = scenario.flow(1)
            assert sender.completed, variant
            assert scenario.receivers[1].delivered == 150
