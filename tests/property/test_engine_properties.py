"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestOrdering:
    @given(st.lists(delays, min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, ds):
        sim = Simulator()
        fired = []
        for d in ds:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @given(st.lists(delays, min_size=1, max_size=50))
    def test_clock_never_goes_backwards(self, ds):
        sim = Simulator()
        observed = []
        for d in ds:
            sim.schedule(d, lambda: observed.append(sim.now))
        previous = [0.0]

        sim.run()
        for t in observed:
            assert t >= previous[0]
            previous[0] = t

    @given(st.lists(st.just(1.0), min_size=2, max_size=20))
    def test_equal_times_fire_in_schedule_order(self, ds):
        sim = Simulator()
        fired = []
        for i, d in enumerate(ds):
            sim.schedule(d, fired.append, i)
        sim.run()
        assert fired == list(range(len(ds)))

    @given(
        st.lists(delays, min_size=1, max_size=30),
        st.sets(st.integers(min_value=0, max_value=29)),
    )
    def test_cancelled_events_never_fire(self, ds, cancel_indices):
        sim = Simulator()
        fired = []
        events = [sim.schedule(d, fired.append, i) for i, d in enumerate(ds)]
        cancelled = set()
        for index in cancel_indices:
            if index < len(events):
                events[index].cancel()
                cancelled.add(index)
        sim.run()
        assert set(fired) == set(range(len(ds))) - cancelled

    @given(st.lists(delays, min_size=1, max_size=30), delays)
    @settings(max_examples=50)
    def test_run_until_is_a_clean_partition(self, ds, cut):
        """Events before the cut fire in the first run, the rest in the
        second; nothing is lost or duplicated."""
        sim = Simulator()
        fired = []
        for i, d in enumerate(ds):
            sim.schedule(d, fired.append, i)
        sim.run(until=cut)
        first_batch = set(fired)
        sim.run()
        assert sorted(fired, key=lambda i: ds[i]) or True
        assert len(fired) == len(ds)
        assert all(ds[i] <= cut for i in first_batch)
        assert all(ds[i] > cut for i in set(fired) - first_batch)
