"""Property-based tests for the extension modules (smooth-start,
Vegas, sync metrics, workload records)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TcpConfig
from repro.metrics.sync import cluster_loss_events, loss_synchronization_index, mean_flows_per_event
from repro.tcp.newreno import NewRenoSender
from repro.tcp.smoothstart import SmoothStartNewRenoSender
from tests.conftest import SenderHarness

RELAXED = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestSmoothStartProperties:
    @RELAXED
    @given(
        ssthresh=st.integers(min_value=4, max_value=64),
        acks=st.integers(min_value=1, max_value=80),
    )
    def test_never_faster_than_classic_slow_start(self, ssthresh, acks):
        """For any ssthresh and any ACK count, the smooth-start cwnd
        trajectory is pointwise <= the classic one."""
        smooth = SenderHarness(
            SmoothStartNewRenoSender,
            TcpConfig(initial_cwnd=1.0, initial_ssthresh=float(ssthresh)),
        )
        classic = SenderHarness(
            NewRenoSender,
            TcpConfig(initial_cwnd=1.0, initial_ssthresh=float(ssthresh)),
        )
        smooth.start()
        classic.start()
        for ack in range(1, acks + 1):
            smooth.ack(ack)
            classic.ack(ack)
            assert smooth.sender.cwnd <= classic.sender.cwnd + 1e-9

    @RELAXED
    @given(
        ssthresh=st.integers(min_value=4, max_value=64),
        acks=st.integers(min_value=1, max_value=120),
    )
    def test_cwnd_monotone_nondecreasing_without_loss(self, ssthresh, acks):
        harness = SenderHarness(
            SmoothStartNewRenoSender,
            TcpConfig(initial_cwnd=1.0, initial_ssthresh=float(ssthresh)),
        )
        harness.start()
        previous = harness.sender.cwnd
        for ack in range(1, acks + 1):
            harness.ack(ack)
            assert harness.sender.cwnd >= previous - 1e-12
            previous = harness.sender.cwnd


drop_times = st.dictionaries(
    keys=st.integers(min_value=1, max_value=8),
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=20
    ),
    max_size=8,
)


class TestSyncMetricProperties:
    @given(drops=drop_times)
    @settings(max_examples=100, deadline=None)
    def test_index_in_unit_interval(self, drops):
        index = loss_synchronization_index(drops)
        assert 0.0 <= index <= 1.0

    @given(drops=drop_times)
    @settings(max_examples=100, deadline=None)
    def test_mean_flows_bounded(self, drops):
        mean = mean_flows_per_event(drops)
        n_flows = len([f for f, times in drops.items() if times])
        if n_flows == 0:
            assert mean == 0.0
        else:
            assert 1.0 <= mean <= n_flows

    @given(drops=drop_times)
    @settings(max_examples=100, deadline=None)
    def test_events_cover_all_drops(self, drops):
        events = cluster_loss_events(drops)
        total_drops = sum(len(times) for times in drops.values())
        if total_drops == 0:
            assert events == []
        else:
            assert events
            assert [t for t, _ in events] == sorted(t for t, _ in events)

    # Grid-quantised times with an off-grid window keep every pairwise
    # gap well away from the cluster boundary, so FP rounding in the
    # scaled comparison cannot flip a decision.
    grid_drop_times = st.dictionaries(
        keys=st.integers(min_value=1, max_value=8),
        values=st.lists(
            st.integers(min_value=0, max_value=10_000).map(lambda k: k * 0.01),
            max_size=20,
        ),
        max_size=8,
    )

    @given(
        drops=grid_drop_times,
        scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_scaling_consistency(self, drops, scale):
        """Scaling every drop time and the window together must not
        change the clustering (away from exact boundaries)."""
        scaled = {f: [t * scale for t in times] for f, times in drops.items()}
        base = [sorted(flows) for _, flows in cluster_loss_events(drops, window=0.055)]
        rescaled = [
            sorted(flows)
            for _, flows in cluster_loss_events(scaled, window=0.055 * scale)
        ]
        assert base == rescaled
