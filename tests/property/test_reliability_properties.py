"""The crown-jewel property: **reliable delivery under arbitrary finite
loss**.

Whatever the recovery scheme — Tahoe's bluntness, RR's probing, SACK's
scoreboard — TCP must deliver every packet, in order, exactly once, for
*any* finite pattern of data losses, ACK losses, or both.  Hypothesis
explores the loss-pattern space; the assertion is the TCP contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import AckLoss, Composite, DeterministicLoss
from repro.net.topology import DumbbellParams

TRANSFER = 60  # packets per transfer; keep runs fast

VARIANTS = ["tahoe", "reno", "newreno", "sack", "rr", "vegas", "ss-rr"]

# Patterns of data packets to kill on first transmission.
drop_sets = st.sets(st.integers(min_value=0, max_value=TRANSFER - 1), max_size=12)
# Patterns of ACK arrival indices to kill.
ack_drop_sets = st.sets(st.integers(min_value=0, max_value=80), max_size=10)

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_with_losses(variant, data_drops, ack_drops=frozenset()):
    forward = DeterministicLoss([(1, s) for s in data_drops])
    reverse = AckLoss(drop_indices=ack_drops) if ack_drops else None
    # Adversarial patterns (every first transmission of a packet doomed
    # AND its ACKs dropped) legitimately degenerate to pure RTO cycles
    # with Karn blocking every new sample; cap the exponential back-off
    # so convergence fits the simulated horizon.
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=TRANSFER)],
        params=DumbbellParams(n_pairs=1, buffer_packets=100),
        default_config=TcpConfig(receiver_window=64, max_rto=8.0),
        forward_loss=forward,
        reverse_loss=reverse,
    )
    scenario.sim.run(until=600.0)
    return scenario


@pytest.mark.parametrize("variant", VARIANTS)
class TestReliableDelivery:
    @RELAXED
    @given(drops=drop_sets)
    def test_arbitrary_data_loss(self, variant, drops):
        scenario = run_with_losses(variant, drops)
        sender, _ = scenario.flow(1)
        receiver = scenario.receivers[1]
        assert sender.completed, f"{variant} stalled with drops={sorted(drops)}"
        assert receiver.delivered == TRANSFER
        assert receiver.buffered_out_of_order == 0

    @RELAXED
    @given(ack_drops=ack_drop_sets)
    def test_arbitrary_ack_loss(self, variant, ack_drops):
        scenario = run_with_losses(variant, frozenset(), frozenset(ack_drops))
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == TRANSFER

    @RELAXED
    @given(drops=drop_sets, ack_drops=ack_drop_sets)
    def test_combined_loss(self, variant, drops, ack_drops):
        scenario = run_with_losses(variant, drops, frozenset(ack_drops))
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == TRANSFER

    @RELAXED
    @given(
        drops=drop_sets,
        reorder_targets=st.sets(
            st.integers(min_value=0, max_value=TRANSFER - 1), max_size=6
        ),
    )
    def test_loss_plus_reordering(self, variant, drops, reorder_targets):
        """Arbitrary drops AND arbitrary packet displacements together
        must still yield complete in-order delivery."""
        from repro.net.reorder import DeterministicReorderer

        forward = DeterministicLoss([(1, s) for s in drops])
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=TRANSFER)],
            params=DumbbellParams(n_pairs=1, buffer_packets=100),
            default_config=TcpConfig(receiver_window=64),
            forward_loss=forward,
        )
        scenario.dumbbell.forward_link.reorder = DeterministicReorderer(
            [(1, s) for s in reorder_targets], delay=0.04
        )
        scenario.sim.run(until=600.0)
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == TRANSFER
        assert scenario.receivers[1].buffered_out_of_order == 0


@pytest.mark.parametrize("variant", VARIANTS)
class TestSenderInvariants:
    @RELAXED
    @given(drops=drop_sets)
    def test_ack_monotone_and_window_sane(self, variant, drops):
        forward = DeterministicLoss([(1, s) for s in drops])
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=TRANSFER)],
            params=DumbbellParams(n_pairs=1, buffer_packets=100),
            forward_loss=forward,
        )
        sender, stats = scenario.flow(1)
        scenario.sim.run(until=600.0)
        # snd_una advanced monotonically (ack series is the record).
        acks = [a for _, a in stats.ack_series]
        assert acks == sorted(acks)
        # Final state invariants.
        assert sender.snd_una <= sender.snd_nxt <= sender.maxseq
        assert sender.cwnd >= 1.0
        assert sender.ssthresh >= 2.0
