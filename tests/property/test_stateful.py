"""Stateful (rule-based) hypothesis tests: random interleavings of
operations against the engine and the scoreboard, with invariants
checked after every step."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.net.packet import SackBlock
from repro.sim.engine import Simulator
from repro.tcp.scoreboard import Scoreboard


class SimulatorMachine(RuleBasedStateMachine):
    """Random schedule/cancel/step/run interleavings."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired = []
        self.scheduled = []
        self.cancelled = set()

    @rule(delay=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def schedule(self, delay):
        token = len(self.scheduled)
        event = self.sim.schedule(delay, self.fired.append, token)
        self.scheduled.append((token, event, self.sim.now + delay))

    @rule(index=st.integers(min_value=0, max_value=10_000))
    def cancel_some_event(self, index):
        if not self.scheduled:
            return
        token, event, _ = self.scheduled[index % len(self.scheduled)]
        if event.pending:
            event.cancel()
            self.cancelled.add(token)

    @rule()
    def step_once(self):
        self.sim.step()

    @rule(horizon=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    def run_for_a_while(self, horizon):
        self.sim.run(until=self.sim.now + horizon)

    @invariant()
    def fired_events_are_due_and_not_cancelled(self):
        for token in self.fired:
            assert token not in self.cancelled
            _, event, due = self.scheduled[token]
            assert due <= self.sim.now + 1e-9

    @invariant()
    def fired_in_time_order(self):
        times = [self.scheduled[token][2] for token in self.fired]
        assert times == sorted(times)

    @invariant()
    def no_duplicates(self):
        assert len(self.fired) == len(set(self.fired))


class ScoreboardMachine(RuleBasedStateMachine):
    """Random SACK updates, retransmission marks and cumulative ACKs."""

    def __init__(self):
        super().__init__()
        self.board = Scoreboard()
        self.cumulative = 0

    @rule(start=st.integers(0, 80), length=st.integers(1, 10))
    def sack_block(self, start, length):
        self.board.update(self.cumulative, [SackBlock(start, start + length)])

    @rule(advance=st.integers(0, 10))
    def cumulative_ack(self, advance):
        self.cumulative += advance
        self.board.update(self.cumulative, [])

    @rule(seqno=st.integers(0, 90))
    def mark_retransmitted(self, seqno):
        if seqno >= self.cumulative:
            self.board.mark_retransmitted(seqno)

    @invariant()
    def nothing_below_cumulative(self):
        for seqno in range(max(0, self.cumulative - 15), self.cumulative):
            assert not self.board.is_sacked(seqno)
            assert not self.board.was_retransmitted(seqno)

    @invariant()
    def pipe_bounds(self):
        snd_nxt = self.cumulative + 40
        pipe = self.board.pipe(self.cumulative, snd_nxt)
        assert 0 <= pipe <= 2 * (snd_nxt - self.cumulative)

    @invariant()
    def next_retransmission_is_valid(self):
        snd_nxt = self.cumulative + 40
        hole = self.board.next_retransmission(self.cumulative, snd_nxt)
        if hole is not None:
            assert self.cumulative <= hole < snd_nxt
            assert self.board.is_lost(hole)
            assert not self.board.was_retransmitted(hole)


TestSimulatorStateful = SimulatorMachine.TestCase
TestSimulatorStateful.settings = settings(max_examples=40, deadline=None)

TestScoreboardStateful = ScoreboardMachine.TestCase
TestScoreboardStateful.settings = settings(max_examples=40, deadline=None)
