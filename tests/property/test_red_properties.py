"""Property-based tests for the RED gateway and scoreboard."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import SackBlock, data_packet
from repro.net.red import RedParams, RedQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.scoreboard import Scoreboard


class TestRedProperties:
    @given(
        arrivals=st.lists(st.booleans(), min_size=1, max_size=300),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_and_average_stay_bounded(self, arrivals, seed):
        """For any enqueue/dequeue pattern: queue length never exceeds
        the limit, and the EWMA average stays within [0, limit]."""
        sim = Simulator()
        queue = RedQueue(sim, RedParams(limit=25), RngStream(seed, "red"))
        for index, enqueue in enumerate(arrivals):
            if enqueue:
                queue.enqueue(data_packet(1, "S", "K", index))
            else:
                queue.dequeue()
            assert 0 <= len(queue) <= 25
            assert 0.0 <= queue.avg <= 25.0

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_conservation(self, seed):
        """enqueues + drops == arrivals, dequeues <= enqueues."""
        sim = Simulator()
        queue = RedQueue(sim, RedParams(limit=10), RngStream(seed, "red"))
        arrivals = 200
        for index in range(arrivals):
            queue.enqueue(data_packet(1, "S", "K", index))
            if index % 3 == 0:
                queue.dequeue()
        assert queue.enqueues + queue.drops == arrivals
        assert queue.dequeues <= queue.enqueues


sack_blocks = st.lists(
    st.tuples(st.integers(0, 50), st.integers(1, 10)).map(
        lambda t: SackBlock(t[0], t[0] + t[1])
    ),
    max_size=4,
)


class TestScoreboardProperties:
    @given(
        updates=st.lists(st.tuples(st.integers(0, 40), sack_blocks), min_size=1, max_size=20)
    )
    @settings(max_examples=50, deadline=None)
    def test_nothing_below_cumulative_ack_survives(self, updates):
        board = Scoreboard()
        highest_ack = 0
        for ackno, blocks in updates:
            highest_ack = max(highest_ack, ackno)
            board.update(ackno, blocks)
        # Monotone cumulative semantics: re-apply the highest ack seen.
        board.update(highest_ack, [])
        for seqno in range(highest_ack):
            assert not board.is_sacked(seqno)

    @given(
        ackno=st.integers(0, 20),
        blocks=sack_blocks,
        snd_nxt=st.integers(21, 70),
    )
    @settings(max_examples=100, deadline=None)
    def test_pipe_bounded_by_outstanding(self, ackno, blocks, snd_nxt):
        board = Scoreboard()
        board.update(ackno, blocks)
        pipe = board.pipe(ackno, snd_nxt)
        outstanding = snd_nxt - ackno
        assert 0 <= pipe <= outstanding  # no retransmissions marked

    @given(blocks=sack_blocks)
    @settings(max_examples=100, deadline=None)
    def test_next_retransmission_is_a_real_hole(self, blocks):
        board = Scoreboard()
        board.update(0, blocks)
        hole = board.next_retransmission(0, 60)
        if hole is not None:
            assert not board.is_sacked(hole)
            assert board.is_lost(hole)
