"""Property-based tests of the RR state machine's invariants, checked
continuously over arbitrary loss patterns via an instrumented sender:

* ``actnum >= 0`` and ``ndup >= 0`` always;
* ``actnum == 0`` during the retreat sub-phase (the paper's own
  sub-phase discriminator, Section 2.2.1);
* ``recover`` only ever advances within an episode;
* cwnd is untouched between entry and exit of an episode;
* outside recovery the phase is NORMAL and actnum is 0.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender, RrPhase
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import AckLoss, DeterministicLoss
from repro.net.packet import Packet
from repro.net.topology import DumbbellParams

TRANSFER = 60

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class CheckedRR(RobustRecoverySender):
    """RR sender that asserts its invariants on every ACK."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.violations = []
        self._cwnd_at_entry = None
        self._recover_trace = []

    def receive(self, packet: Packet) -> None:
        was_in_recovery = self.in_recovery
        cwnd_before = self.cwnd
        super().receive(packet)
        self._check(was_in_recovery, cwnd_before)

    def _check(self, was_in_recovery, cwnd_before):
        if self.actnum < 0:
            self.violations.append(f"actnum negative: {self.actnum}")
        if self.ndup < 0:
            self.violations.append(f"ndup negative: {self.ndup}")
        if self.phase is RrPhase.RETREAT and self.actnum != 0:
            self.violations.append("actnum nonzero during retreat")
        if not self.in_recovery:
            if self.phase is not RrPhase.NORMAL:
                self.violations.append("phase not NORMAL outside recovery")
            if self.actnum != 0:
                self.violations.append("actnum nonzero outside recovery")
        # cwnd frozen while recovery continues (no entry/exit this ACK).
        if was_in_recovery and self.in_recovery and self.cwnd != cwnd_before:
            self.violations.append("cwnd changed during recovery")
        if self.in_recovery:
            if self._recover_trace and self.recover < self._recover_trace[-1]:
                self.violations.append("recover moved backwards in episode")
            self._recover_trace.append(self.recover)
        else:
            self._recover_trace.clear()


drop_sets = st.sets(st.integers(min_value=0, max_value=TRANSFER - 1), max_size=12)
ack_drop_sets = st.sets(st.integers(min_value=0, max_value=80), max_size=8)


def run_checked(drops, ack_drops=frozenset()):
    forward = DeterministicLoss([(1, s) for s in drops])
    reverse = AckLoss(drop_indices=ack_drops) if ack_drops else None
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=TRANSFER)],
        params=DumbbellParams(n_pairs=1, buffer_packets=100),
        default_config=TcpConfig(receiver_window=64),
        forward_loss=forward,
        reverse_loss=reverse,
        sender_overrides={1: CheckedRR},
    )
    scenario.sim.run(until=600.0)
    return scenario


class TestRrInvariants:
    @RELAXED
    @given(drops=drop_sets)
    def test_invariants_hold_under_data_loss(self, drops):
        scenario = run_checked(drops)
        sender, _ = scenario.flow(1)
        assert sender.violations == []
        assert sender.completed

    @RELAXED
    @given(drops=drop_sets, ack_drops=ack_drop_sets)
    def test_invariants_hold_under_combined_loss(self, drops, ack_drops):
        scenario = run_checked(drops, frozenset(ack_drops))
        sender, _ = scenario.flow(1)
        assert sender.violations == []
        assert sender.completed

    @RELAXED
    @given(drops=drop_sets)
    def test_further_loss_count_bounded_by_real_drops(self, drops):
        """Without ACK losses, RR must not report more further losses
        than packets actually dropped."""
        scenario = run_checked(drops)
        sender, _ = scenario.flow(1)
        assert sender.further_losses_detected <= len(drops)
