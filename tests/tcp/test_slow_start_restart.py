"""Tests for slow-start restart after idle (RFC 2581 §4.1, optional)."""

import pytest

from repro.config import TcpConfig
from repro.app.workload import OnOffSource
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.factory import make_connection
from repro.tcp.newreno import NewRenoSender
from tests.conftest import SenderHarness


def make(ssr=True, cwnd=1.0):
    config = TcpConfig(
        initial_cwnd=cwnd, initial_ssthresh=64, slow_start_restart=ssr,
        min_rto=1.0, initial_rto=1.0,
    )
    return SenderHarness(NewRenoSender, config)


def grow_window(harness, acks=10):
    harness.start()
    for ack in range(1, acks + 1):
        harness.advance(0.01)
        harness.ack(ack)


class TestIdleRestart:
    def test_cwnd_collapses_after_idle(self):
        harness = make()
        grow_window(harness)
        # The application goes quiet: bound the transfer at what is
        # already sent, let the final ACK drain the flight.
        sender = harness.sender
        sender.set_data_limit(sender.snd_nxt)
        harness.ack(sender.snd_nxt)
        assert sender.flight() == 0
        cwnd_before = sender.cwnd
        assert cwnd_before > 1.0
        # Idle well past the RTO, then a new burst arrives (the
        # OnOffSource pattern).
        harness.advance(10.0)
        sender.set_data_limit(None)
        sender.completed = False
        sender.send_available()
        assert sender.cwnd == pytest.approx(1.0)
        assert sender.idle_restarts == 1

    def test_no_restart_when_disabled(self):
        harness = make(ssr=False)
        grow_window(harness)
        harness.ack(harness.sender.snd_nxt)
        harness.sender._timer.stop()
        cwnd_before = harness.sender.cwnd
        harness.advance(10.0)
        harness.sender.send_available()
        assert harness.sender.cwnd == pytest.approx(cwnd_before)
        assert harness.sender.idle_restarts == 0

    def test_no_restart_without_idle(self):
        harness = make()
        grow_window(harness)
        cwnd_before = harness.sender.cwnd
        harness.sender.send_available()  # immediately: not idle
        assert harness.sender.cwnd == pytest.approx(cwnd_before)

    def test_no_restart_with_data_in_flight(self):
        harness = make()
        grow_window(harness)
        assert harness.sender.flight() > 0
        harness.advance(0.5)  # below RTO: timer must not fire
        harness.sender.send_available()
        assert harness.sender.idle_restarts == 0


class TestWithOnOffSource:
    def test_bursts_after_idle_are_tamed(self):
        """With SSR on, each burst after a long off-period starts from
        the initial window instead of blasting the stale cwnd."""
        def run(ssr):
            sim = Simulator()
            bell = Dumbbell(sim, DumbbellParams(n_pairs=1, buffer_packets=8))
            config = TcpConfig(slow_start_restart=ssr)
            sender, _ = make_connection(
                sim, "newreno", 1, bell.sender(1), bell.receiver(1), config=config
            )
            OnOffSource(
                sim, sender, RngStream(4, "onoff"),
                mean_on_packets=40, mean_off_seconds=3.0,
            )
            sim.run(until=40.0)
            return sender

        with_ssr = run(True)
        without = run(False)
        assert with_ssr.idle_restarts >= 1
        assert without.idle_restarts == 0
        # Taming the restart burst can only reduce self-inflicted loss.
        assert with_ssr.retransmits <= without.retransmits + 5
