"""Tests for the smooth-start mixin (paper reference [21])."""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams
from repro.tcp.newreno import NewRenoSender
from repro.tcp.smoothstart import SmoothStartNewRenoSender, SmoothStartRrSender
from tests.conftest import SenderHarness


def make(cls=SmoothStartNewRenoSender, ssthresh=16.0):
    config = TcpConfig(initial_cwnd=1.0, initial_ssthresh=ssthresh)
    return SenderHarness(cls, config)


def grow(harness, acks):
    """Feed in-order ACKs; return the cwnd trajectory."""
    trajectory = [harness.sender.cwnd]
    for ack in range(1, acks + 1):
        harness.ack(ack)
        trajectory.append(harness.sender.cwnd)
    return trajectory


class TestGrowthLaw:
    def test_exponential_below_half_ssthresh(self):
        harness = make(ssthresh=16.0)
        harness.start()
        harness.ack(1)
        assert harness.sender.cwnd == pytest.approx(2.0)  # classic +1/ack

    def test_tapered_above_half_ssthresh(self):
        harness = make(ssthresh=16.0)
        harness.sender.cwnd = 9.0  # just above ssthresh/2
        harness.start()
        harness.ack(1)
        # First smooth sub-phase: +1/2 per ACK, not +1.
        assert harness.sender.cwnd == pytest.approx(9.5)

    def test_final_subphase_is_slowest(self):
        harness = make(ssthresh=16.0)
        harness.sender.cwnd = 15.5  # last smooth sub-phase
        harness.start()
        harness.ack(1)
        assert harness.sender.cwnd - 15.5 < 0.3

    def test_never_overshoots_ssthresh_in_slow_start(self):
        harness = make(ssthresh=16.0)
        harness.start()
        trajectory = grow(harness, 60)
        in_ss = [c for c in trajectory if c <= 16.0 + 1e-9]
        assert max(in_ss) <= 16.0 + 1e-9

    def test_congestion_avoidance_unchanged(self):
        harness = make(ssthresh=4.0)
        harness.sender.cwnd = 8.0  # above ssthresh: CA
        harness.start()
        harness.ack(1)
        assert harness.sender.cwnd == pytest.approx(8.0 + 1.0 / 8.0)

    def test_slower_than_classic_slow_start(self):
        smooth = make(ssthresh=16.0)
        smooth.start()
        classic = SenderHarness(
            NewRenoSender, TcpConfig(initial_cwnd=1.0, initial_ssthresh=16.0)
        )
        classic.start()
        smooth_traj = grow(smooth, 25)
        classic_traj = grow(classic, 25)
        assert smooth_traj[-1] <= classic_traj[-1]
        assert all(s <= c + 1e-9 for s, c in zip(smooth_traj, classic_traj))


class TestSmoothStartEndToEnd:
    def run_variant(self, variant):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=8),
        )
        scenario.sim.run(until=60.0)
        return scenario.flow(1)

    def test_reduces_slow_start_overshoot_losses(self):
        """The point of [21]: gentler ramp -> fewer slow-start drops
        into the tiny 8-packet paper buffer."""
        _, smooth_stats = self.run_variant("ss-newreno")
        _, classic_stats = self.run_variant("newreno")
        assert smooth_stats.drops_observed <= classic_stats.drops_observed

    def test_composes_with_rr(self):
        sender, stats = self.run_variant("ss-rr")
        assert sender.completed
        assert sender.variant == "ss-rr"

    def test_mixin_mro_keeps_recovery(self):
        """Smooth-start must not alter the recovery machinery."""
        harness = make(cls=SmoothStartRrSender)
        harness.sender.cwnd = 10.0
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.in_recovery
        from repro.core.robust_recovery import RrPhase

        assert harness.sender.phase is RrPhase.RETREAT
