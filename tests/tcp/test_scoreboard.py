"""Unit tests for the SACK scoreboard."""

from repro.net.packet import SackBlock
from repro.tcp.scoreboard import Scoreboard


def make():
    return Scoreboard(dupack_threshold=3)


class TestUpdates:
    def test_sack_blocks_recorded(self):
        board = make()
        board.update(0, [SackBlock(2, 4)])
        assert board.is_sacked(2) and board.is_sacked(3)
        assert not board.is_sacked(4)

    def test_cumulative_ack_prunes(self):
        board = make()
        board.update(0, [SackBlock(2, 4)])
        board.update(3, [])
        assert not board.is_sacked(2)
        assert board.is_sacked(3)

    def test_retransmissions_pruned_by_ack(self):
        board = make()
        board.mark_retransmitted(2)
        board.update(3, [])
        assert not board.was_retransmitted(2)

    def test_clear(self):
        board = make()
        board.update(0, [SackBlock(2, 4)])
        board.mark_retransmitted(0)
        board.clear()
        assert board.sacked_count() == 0
        assert not board.was_retransmitted(0)


class TestLossDetection:
    def test_is_lost_requires_threshold_above(self):
        board = make()
        board.update(0, [SackBlock(1, 3)])  # two sacked above 0
        assert not board.is_lost(0)
        board.update(0, [SackBlock(1, 4)])  # three sacked above 0
        assert board.is_lost(0)

    def test_sacked_packet_is_not_lost(self):
        board = make()
        board.update(0, [SackBlock(1, 5)])
        assert not board.is_lost(2)

    def test_sacked_above(self):
        board = make()
        board.update(0, [SackBlock(2, 5)])
        assert board.sacked_above(0) == 3
        assert board.sacked_above(2) == 2
        assert board.sacked_above(4) == 0


class TestPipe:
    def test_all_in_flight_no_sacks(self):
        board = make()
        assert board.pipe(0, 5) == 5

    def test_sacked_packets_excluded(self):
        board = make()
        board.update(0, [SackBlock(1, 3)])
        assert board.pipe(0, 5) == 3

    def test_lost_packets_excluded(self):
        board = make()
        board.update(0, [SackBlock(1, 5)])  # 0 is lost (4 above)
        # outstanding 0..4: 0 lost -> 0; 1-4 sacked -> 0
        assert board.pipe(0, 5) == 0

    def test_retransmitted_counted(self):
        board = make()
        board.update(0, [SackBlock(1, 5)])
        board.mark_retransmitted(0)
        assert board.pipe(0, 5) == 1


class TestNextRetransmission:
    def test_lowest_lost_hole_first(self):
        board = make()
        board.update(0, [SackBlock(1, 3), SackBlock(4, 6)])
        # 0 has 4 sacked above -> lost; 3 has 2 above -> not lost
        assert board.next_retransmission(0, 6) == 0

    def test_skips_retransmitted(self):
        board = make()
        board.update(0, [SackBlock(1, 3), SackBlock(4, 6)])
        board.mark_retransmitted(0)
        # Next hole is 3 with only 2 sacked above -> not lost -> None.
        assert board.next_retransmission(0, 6) is None

    def test_second_hole_when_deeply_sacked(self):
        board = make()
        board.update(0, [SackBlock(1, 3), SackBlock(4, 8)])
        board.mark_retransmitted(0)
        # Hole 3 now has 4 sacked above -> lost.
        assert board.next_retransmission(0, 8) == 3

    def test_holes_listing(self):
        board = make()
        board.update(0, [SackBlock(1, 3)])
        assert board.holes(0, 5) == [0, 3, 4]
