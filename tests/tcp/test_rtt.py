"""Unit tests for the RTO estimator."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.tcp.rtt import RtoEstimator


def make(min_rto=0.2, max_rto=64.0, granularity=0.0, initial_rto=3.0):
    config = TcpConfig(
        min_rto=min_rto,
        max_rto=max_rto,
        timer_granularity=granularity,
        initial_rto=initial_rto,
    )
    return RtoEstimator(config)


class TestSampling:
    def test_initial_rto(self):
        estimator = make(initial_rto=3.0)
        assert estimator.current() == pytest.approx(3.0)

    def test_first_sample_rfc6298(self):
        estimator = make()
        estimator.on_sample(1.0)
        assert estimator.srtt == pytest.approx(1.0)
        assert estimator.rttvar == pytest.approx(0.5)
        # RTO = SRTT + 4*RTTVAR = 3.0
        assert estimator.current() == pytest.approx(3.0)

    def test_smoothing(self):
        estimator = make()
        estimator.on_sample(1.0)
        estimator.on_sample(1.0)
        # Stable samples: rttvar decays, srtt unchanged.
        assert estimator.srtt == pytest.approx(1.0)
        assert estimator.rttvar == pytest.approx(0.375)

    def test_variance_reacts_to_jitter(self):
        estimator = make()
        estimator.on_sample(1.0)
        estimator.on_sample(2.0)
        assert estimator.srtt == pytest.approx(1.125)
        assert estimator.rttvar > 0.5

    def test_converges_to_stable_rtt(self):
        estimator = make()
        for _ in range(200):
            estimator.on_sample(0.5)
        assert estimator.srtt == pytest.approx(0.5, rel=1e-3)
        assert estimator.current() == pytest.approx(0.5, rel=0.1)

    def test_min_rto_clamp(self):
        estimator = make(min_rto=1.0)
        for _ in range(200):
            estimator.on_sample(0.05)
        assert estimator.current() == pytest.approx(1.0)

    def test_max_rto_clamp(self):
        estimator = make(max_rto=10.0)
        estimator.on_sample(20.0)
        assert estimator.current() == pytest.approx(10.0)

    def test_granularity_term(self):
        estimator = make(granularity=0.5)
        for _ in range(300):
            estimator.on_sample(1.0)
        # RTO = srtt + max(G, 4*rttvar) -> 1.0 + 0.5 once rttvar decayed.
        assert estimator.current() == pytest.approx(1.5, rel=0.05)

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            make().on_sample(-1.0)

    def test_sample_counter(self):
        estimator = make()
        estimator.on_sample(1.0)
        estimator.on_sample(1.0)
        assert estimator.samples == 2


class TestBackoff:
    def test_backoff_doubles(self):
        estimator = make()
        estimator.on_sample(1.0)
        base = estimator.current()
        estimator.backoff()
        assert estimator.current() == pytest.approx(2 * base)
        estimator.backoff()
        assert estimator.current() == pytest.approx(4 * base)

    def test_backoff_capped_at_max(self):
        estimator = make(max_rto=8.0)
        estimator.on_sample(1.0)
        for _ in range(10):
            estimator.backoff()
        assert estimator.current() == pytest.approx(8.0)

    def test_backoff_factor_saturates_near_max(self):
        """The multiplier stops doubling once base*factor reaches
        max_rto — it must not grow without bound while current() sits
        pinned at the cap."""
        estimator = make(max_rto=10.0)
        estimator.on_sample(1.0)  # SRTT 1, RTTVAR 0.5 -> RTO 3
        base = estimator.current()
        assert base == pytest.approx(3.0)
        estimator.backoff()  # 3 -> 6
        estimator.backoff()  # 6 -> 12, clamped to 10
        saturated = estimator.backoff_factor
        assert saturated == 4
        for _ in range(50):
            estimator.backoff()
        assert estimator.backoff_factor == saturated  # no runaway doubling
        assert estimator.current() == pytest.approx(10.0)

    def test_backoff_factor_stops_at_exact_boundary(self):
        """base*factor == max_rto exactly: a further backoff would be a
        no-op for current(), so the factor must not double either."""
        estimator = make(initial_rto=4.0, max_rto=8.0)
        estimator.backoff()  # 4 -> 8, exactly the cap
        assert estimator.backoff_factor == 2
        estimator.backoff()
        assert estimator.backoff_factor == 2
        assert estimator.current() == pytest.approx(8.0)

    def test_sample_after_saturation_deflates(self):
        estimator = make(max_rto=10.0)
        estimator.on_sample(1.0)
        for _ in range(10):
            estimator.backoff()
        estimator.on_sample(1.0)
        assert estimator.backoff_factor == 1
        assert estimator.current() < 10.0

    def test_new_sample_resets_backoff(self):
        estimator = make()
        estimator.on_sample(1.0)
        estimator.backoff()
        estimator.on_sample(1.0)
        assert estimator.backoff_factor == 1

    def test_reset(self):
        estimator = make(initial_rto=3.0)
        estimator.on_sample(0.4)
        estimator.backoff()
        estimator.reset()
        assert estimator.srtt is None
        assert estimator.backoff_factor == 1
        assert estimator.current() == pytest.approx(3.0)
        assert estimator.samples == 0
