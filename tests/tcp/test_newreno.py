"""Unit tests for New-Reno partial-ACK recovery (ns-2 classic full
deflation by default, RFC 2582 partial deflation as an option)."""

import pytest

from repro.config import TcpConfig
from repro.tcp.newreno import NewRenoSender
from tests.conftest import SenderHarness


def make(cwnd=10.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(NewRenoSender, config)


class TestPartialAck:
    def test_partial_ack_stays_in_recovery(self):
        harness = make()
        harness.start()  # 0..9; pretend 0 and 3 lost
        harness.dupacks(0, 3)
        harness.ack(3)  # partial (recover = 10)
        assert harness.sender.in_recovery

    def test_partial_ack_retransmits_next_hole(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.ack(3)
        assert harness.host.retransmit_seqs() == [3]

    def test_full_deflation_on_partial_ack(self):
        harness = make()  # default: ns-2 classic
        harness.start()
        harness.dupacks(0, 3)
        harness.dupacks(0, 4)  # inflate
        harness.ack(3)
        assert harness.sender.cwnd == pytest.approx(harness.sender.ssthresh)

    def test_rfc2582_partial_deflation(self):
        harness = make()
        harness.sender.partial_window_deflation = True
        harness.start()
        harness.dupacks(0, 3)  # cwnd = 5+3 = 8
        harness.ack(3)         # deflate by 3 acked, +1 -> 6
        assert harness.sender.cwnd == pytest.approx(6.0)

    def test_one_loss_recovered_per_rtt(self):
        harness = make()
        harness.start()  # losses at 0, 3, 5
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.ack(3)
        assert harness.host.retransmit_seqs() == [3]
        harness.host.clear()
        harness.ack(5)
        assert harness.host.retransmit_seqs() == [5]
        assert harness.sender.in_recovery


class TestFullAck:
    def test_full_ack_exits(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.recover == 10
        harness.ack(10)
        assert not harness.sender.in_recovery
        assert harness.sender.cwnd == pytest.approx(harness.sender.ssthresh)

    def test_ack_beyond_recover_exits(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.dupacks(0, 4)  # inflation sends a couple of new packets
        harness.ack(11)
        assert not harness.sender.in_recovery


class TestAvoidMultipleFastRetransmits:
    def test_stale_dupacks_do_not_reenter(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)  # full ACK, exit; recover stays 10
        harness.host.clear()
        # Dup ACKs below the old recover point: must NOT trigger.
        harness.dupacks(10, 3)
        assert harness.host.retransmit_seqs() == []

    def test_fresh_losses_do_reenter(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)  # exit; new data beyond 10 flows
        harness.ack(11)
        harness.ack(12)
        harness.host.clear()
        harness.dupacks(12, 3)
        assert harness.host.retransmit_seqs() == [12]


class TestExponentialDecay:
    def test_new_data_per_rtt_shrinks(self):
        """The paper's §1 critique: with full deflation, new data sent
        per recovery RTT decreases geometrically."""
        harness = make(cwnd=16.0)
        harness.start()  # 0..15; losses 0..5 (6-burst); 10 survivors
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.dupacks(0, 7)  # remaining survivors' dups
        first_rtt_new = len(harness.host.new_data_seqs())
        assert first_rtt_new >= 1
        # RTT 2: partial ack + only the new packets' dups come back.
        harness.ack(1)
        harness.host.clear()
        harness.dupacks(1, first_rtt_new)
        second_rtt_new = len(harness.host.new_data_seqs())
        assert second_rtt_new < first_rtt_new


class TestTimeoutInteraction:
    def test_timeout_suppresses_fast_retransmit_below_old_maxseq(self):
        """RFC 2582 §3: after an RTO, duplicate ACKs caused by the
        go-back-N resends (anything below the pre-timeout maxseq) must
        not trigger a fast retransmit."""
        harness = make()
        harness.start()  # 0..9 out, maxseq 10
        harness.dupacks(0, 3)
        harness.advance(10.0)  # RTO
        assert not harness.sender.in_recovery
        harness.ack(2)
        harness.host.clear()
        harness.dupacks(2, 3)
        assert harness.host.retransmit_seqs() == []

    def test_fast_retransmit_resumes_beyond_old_maxseq(self):
        harness = make()
        harness.start()  # 0..9, maxseq 10
        harness.dupacks(0, 3)
        harness.advance(10.0)  # RTO; go-back-N
        # Receiver had 1..9 buffered: the resend of 0 is cumulatively
        # acknowledged through 10, then new data flows.
        harness.ack(10)
        harness.ack(11)
        harness.host.clear()
        harness.dupacks(11, 3)
        assert harness.host.retransmit_seqs() == [11]

    def test_maxburst_limits_release(self):
        harness = make(cwnd=20.0, max_burst=2)
        harness.start()  # 0..19
        harness.host.clear()
        harness.dupacks(0, 3)
        # Dupacks inflate cwnd past flight eventually; each ACK event
        # may release at most max_burst packets.
        for _ in range(14):
            harness.ack(0)
        sends_per_event = []
        count = 0
        for packet in harness.host.sent:
            if packet.is_data and not packet.is_retransmit:
                count += 1
        assert count >= 1  # some new data flowed
        # No single event may have released more than 2; conservatively
        # verify the total is bounded by 2 per dup ACK received.
        assert count <= 2 * 17
