"""Unit tests for the variant factory."""

import pytest

from repro.core.robust_recovery import RobustRecoverySender
from repro.errors import ConfigurationError
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.tcp.factory import (
    VARIANTS,
    make_connection,
    receiver_class_for,
    sender_class_for,
)
from repro.tcp.receiver import SackReceiver, TcpReceiver
from repro.tcp.sack import SackSender


class TestRegistry:
    def test_paper_variants_present(self):
        for name in ["tahoe", "reno", "newreno", "sack", "rr"]:
            assert name in VARIANTS

    def test_extension_variants_present(self):
        for name in ["sack3517", "rightedge", "linkung"]:
            assert name in VARIANTS

    def test_sender_class_lookup(self):
        assert sender_class_for("rr") is RobustRecoverySender
        assert sender_class_for("sack") is SackSender

    def test_only_sack_needs_modified_receiver(self):
        """The paper's deployment argument: every scheme except SACK
        works with a vanilla receiver."""
        for name, (_, receiver_cls) in VARIANTS.items():
            if name.startswith("sack"):
                assert receiver_cls is SackReceiver
            else:
                assert receiver_cls is TcpReceiver

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            sender_class_for("hybla")
        with pytest.raises(ConfigurationError):
            receiver_class_for("bbr")

    def test_variant_names_match_class_attribute(self):
        for name, (sender_cls, _) in VARIANTS.items():
            assert sender_cls.variant == name


class TestMakeConnection:
    def test_wires_both_hosts(self):
        sim = Simulator()
        bell = Dumbbell(sim, DumbbellParams(n_pairs=1))
        sender, receiver = make_connection(
            sim, "rr", 1, bell.sender(1), bell.receiver(1)
        )
        assert sender.host is bell.sender(1)
        assert receiver.host is bell.receiver(1)
        assert sender.flow_id == receiver.flow_id == 1

    def test_end_to_end_loss_free_transfer(self):
        sim = Simulator()
        bell = Dumbbell(sim, DumbbellParams(n_pairs=1, buffer_packets=100))
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        sender.set_data_limit(50)
        sender.start()
        sim.run(until=30.0)
        assert sender.completed
        assert sender.retransmits == 0
