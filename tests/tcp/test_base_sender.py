"""Unit tests for the shared sender machinery (window accounting, slow
start, congestion avoidance, RTO handling).

These run against RenoSender — the simplest concrete variant — but only
exercise code paths implemented in the base class.
"""

import pytest

from repro.config import TcpConfig
from repro.errors import ProtocolError
from repro.tcp.reno import RenoSender
from tests.conftest import SenderHarness


def make(config=None) -> SenderHarness:
    return SenderHarness(RenoSender, config=config)


class TestSlowStart:
    def test_initial_window_is_one(self):
        harness = make()
        harness.start()
        assert harness.host.data_seqs() == [0]

    def test_window_doubles_per_rtt(self):
        harness = make()
        harness.start()
        harness.ack(1)
        assert harness.sender.cwnd == pytest.approx(2.0)
        assert harness.host.data_seqs() == [0, 1, 2]
        harness.ack(2)
        harness.ack(3)
        assert harness.sender.cwnd == pytest.approx(4.0)
        assert harness.host.data_seqs() == [0, 1, 2, 3, 4, 5, 6]

    def test_starts_only_once(self):
        harness = make()
        harness.start()
        harness.start()
        assert harness.host.data_seqs() == [0]


class TestCongestionAvoidance:
    def test_linear_growth_above_ssthresh(self):
        harness = make(TcpConfig(initial_ssthresh=2.0))
        harness.start()
        harness.ack(1)  # slow start: cwnd 2
        cwnd_before = harness.sender.cwnd
        harness.ack(2)  # now at/above ssthresh -> +1/cwnd
        assert harness.sender.cwnd == pytest.approx(cwnd_before + 1.0 / cwnd_before)

    def test_receiver_window_caps_sending(self):
        harness = make(TcpConfig(receiver_window=4, initial_ssthresh=64))
        harness.start()
        for ack in range(1, 10):
            harness.ack(ack)
        # flight never exceeds rwnd
        assert harness.sender.flight() <= 4


class TestDataLimit:
    def test_stops_at_limit(self):
        harness = make()
        harness.sender.set_data_limit(3)
        harness.start()
        harness.ack(1)
        harness.ack(2)
        harness.ack(3)
        assert harness.host.data_seqs() == [0, 1, 2]

    def test_completion_recorded(self):
        harness = make()
        harness.sender.set_data_limit(2)
        harness.start()
        harness.ack(1)
        harness.ack(2)
        assert harness.sender.completed
        assert harness.sender.complete_time == harness.sim.now

    def test_completion_callback(self):
        harness = make()
        times = []
        harness.sender.completion_callbacks.append(times.append)
        harness.sender.set_data_limit(1)
        harness.start()
        harness.ack(1)
        assert len(times) == 1

    def test_acks_after_completion_ignored(self):
        harness = make()
        harness.sender.set_data_limit(1)
        harness.start()
        harness.ack(1)
        harness.ack(1)  # no crash, no sends
        assert harness.host.data_seqs() == [0]

    def test_invalid_limit_rejected(self):
        harness = make()
        with pytest.raises(ProtocolError):
            harness.sender.set_data_limit(0)


class TestAckHandling:
    def test_cumulative_ack_advances_una(self):
        harness = make()
        harness.start()
        harness.ack(1)
        assert harness.sender.snd_una == 1

    def test_stale_ack_ignored(self):
        harness = make()
        harness.start()
        harness.ack(1)
        harness.host.clear()
        harness.ack(0)  # stale
        assert harness.host.sent == []
        assert harness.sender.snd_una == 1

    def test_dupack_counting(self):
        harness = make(TcpConfig(initial_cwnd=4.0))
        harness.start()
        harness.dupacks(0, 2)
        assert harness.sender.dupacks == 2

    def test_new_ack_resets_dupacks(self):
        harness = make(TcpConfig(initial_cwnd=4.0))
        harness.start()
        harness.dupacks(0, 2)
        harness.ack(1)
        assert harness.sender.dupacks == 0

    def test_dupack_with_no_outstanding_data_ignored(self):
        harness = make()
        harness.sender.set_data_limit(1)
        harness.start()
        harness.ack(1)
        harness.ack(1)
        assert harness.sender.dupacks == 0


class TestTimeout:
    def test_timeout_collapses_window(self):
        harness = make(TcpConfig(initial_cwnd=8.0, min_rto=1.0))
        harness.start()  # 8 packets out
        harness.advance(5.0)  # RTO fires
        assert harness.sender.timeouts == 1
        assert harness.sender.cwnd == pytest.approx(1.0)
        assert harness.sender.ssthresh == pytest.approx(4.0)

    def test_timeout_triggers_go_back_n(self):
        harness = make(TcpConfig(initial_cwnd=4.0, min_rto=1.0))
        harness.start()
        harness.host.clear()
        harness.advance(5.0)
        # After collapse, one packet (the first unacked) is resent.
        assert harness.host.data_seqs() == [0]
        assert harness.host.sent[0].is_retransmit

    def test_backoff_doubles_rto(self):
        harness = make(TcpConfig(initial_cwnd=2.0, min_rto=1.0, initial_rto=1.0))
        harness.start()
        harness.advance(2.0)  # first RTO fires at t=1.0
        assert harness.sender.timeouts == 1
        # Backed-off RTO is 2.0 s from the t=1.0 restart -> fires at 3.0.
        harness.advance(0.9)  # t=2.9: not yet
        assert harness.sender.timeouts == 1
        harness.advance(0.2)  # t=3.1: fired
        assert harness.sender.timeouts == 2

    def test_no_timeout_without_outstanding_data(self):
        harness = make()
        harness.sender.set_data_limit(1)
        harness.start()
        harness.ack(1)
        harness.advance(100.0)
        assert harness.sender.timeouts == 0

    def test_ack_restarts_timer(self):
        harness = make(TcpConfig(initial_cwnd=2.0, min_rto=1.0, initial_rto=1.0))
        harness.start()
        harness.advance(0.6)
        harness.ack(1)  # restart
        harness.advance(0.6)  # total 1.2 but timer restarted at 0.6
        assert harness.sender.timeouts == 0


class TestRttSampling:
    def test_sample_taken_from_ack(self):
        harness = make()
        harness.start()
        harness.advance(0.25)
        harness.ack(1)
        assert harness.sender.rto.samples == 1
        assert harness.sender.rto.srtt == pytest.approx(0.25)

    def test_karn_rule_skips_retransmitted(self):
        harness = make(TcpConfig(initial_cwnd=2.0, min_rto=1.0, initial_rto=1.0))
        harness.start()
        harness.advance(2.0)  # timeout, packet 0 retransmitted
        harness.ack(1)
        # The sample for packet 0 must have been abandoned.
        assert harness.sender.rto.samples == 0

    def test_one_sample_per_window(self):
        harness = make(TcpConfig(initial_cwnd=4.0))
        harness.start()  # 4 packets, sample armed on packet 0
        harness.advance(0.1)
        harness.ack(1)
        harness.ack(2)
        assert harness.sender.rto.samples == 1  # second ack not sampled yet


class TestCounters:
    def test_packets_sent_counter(self):
        harness = make(TcpConfig(initial_cwnd=3.0))
        harness.start()
        assert harness.sender.packets_sent == 3

    def test_flight_accounting(self):
        harness = make(TcpConfig(initial_cwnd=3.0))
        harness.start()
        assert harness.sender.flight() == 3
        harness.ack(2)
        assert harness.sender.flight() >= 1  # new sends may refill
