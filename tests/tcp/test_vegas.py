"""Unit and behaviour tests for TCP Vegas."""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams
from repro.tcp.vegas import ALPHA, BETA, VegasSender
from tests.conftest import SenderHarness


def make(cwnd=2.0, **cfg):
    return SenderHarness(VegasSender, TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg))


def make_no_rto(cwnd=6.0):
    """Harness whose coarse RTO will not fire during the test window,
    isolating Vegas' fine-grained expedited-retransmit check."""
    config = TcpConfig(
        initial_cwnd=cwnd, initial_ssthresh=64,
        min_rto=30.0, max_rto=64.0, initial_rto=30.0,
    )
    return SenderHarness(VegasSender, config)


class TestRttTracking:
    def test_base_rtt_is_minimum(self):
        harness = make()
        harness.start()  # packets 0, 1 sent at t=0
        harness.advance(0.3)
        harness.ack(1)   # rtt(pkt 0) = 0.3; new packets sent at t=0.3
        harness.advance(0.1)
        harness.ack(3)   # rtt(pkt 2, sent at 0.3) = 0.1 -> new baseRTT
        assert harness.sender.base_rtt == pytest.approx(0.1)
        assert harness.sender.last_rtt == pytest.approx(0.1)

    def test_base_rtt_not_raised_by_slower_sample(self):
        harness = make()
        harness.start()
        harness.advance(0.1)
        harness.ack(1)
        harness.advance(0.5)
        harness.ack(2)
        assert harness.sender.base_rtt == pytest.approx(0.1)

    def test_last_rtt_updates(self):
        harness = make()
        harness.start()
        harness.advance(0.2)
        harness.ack(1)
        assert harness.sender.last_rtt == pytest.approx(0.2)


class TestSlowStart:
    def test_window_grows_every_other_rtt(self):
        harness = make(cwnd=1.0)
        harness.start()
        grown = []
        for ack in range(1, 12):
            before = harness.sender.cwnd
            harness.advance(0.05)
            harness.ack(ack)
            grown.append(harness.sender.cwnd > before)
        # Strictly slower than classic slow start's every-ACK growth.
        assert not all(grown)
        assert any(grown)

    def test_backlog_exits_slow_start(self):
        harness = make(cwnd=8.0)
        sender = harness.sender
        sender.base_rtt = 0.1
        sender.last_rtt = 0.3  # heavy queueing: diff >> gamma
        sender._vegas_slow_start()
        assert sender.ssthresh == pytest.approx(8.0)  # clamped to cwnd


class TestCongestionAvoidance:
    def ca_sender(self, base=0.1, last=0.1, cwnd=10.0):
        harness = make(cwnd=cwnd)
        sender = harness.sender
        sender.ssthresh = 5.0  # force CA
        harness.start()
        sender.base_rtt = base
        sender.last_rtt = last
        sender._adjust_marker = 0
        return sender

    def test_grows_when_backlog_below_alpha(self):
        sender = self.ca_sender(base=0.1, last=0.1)  # diff = 0 < ALPHA
        cwnd = sender.cwnd
        sender._vegas_adjust()
        assert sender.cwnd == pytest.approx(cwnd + 1)

    def test_shrinks_when_backlog_above_beta(self):
        # expected=100 pkt/s, actual=33 -> diff = 6.7 > BETA
        sender = self.ca_sender(base=0.1, last=0.3)
        cwnd = sender.cwnd
        sender._vegas_adjust()
        assert sender.cwnd == pytest.approx(cwnd - 1)

    def test_stable_inside_band(self):
        # expected=100, actual=80 -> diff = 2, inside [ALPHA, BETA]
        sender = self.ca_sender(base=0.1, last=0.125)
        cwnd = sender.cwnd
        sender._vegas_adjust()
        assert sender.cwnd == pytest.approx(cwnd)

    def test_adjustment_once_per_rtt(self):
        sender = self.ca_sender()
        sender._vegas_adjust()
        cwnd = sender.cwnd
        # marker now at snd_nxt; a second call within the window is a no-op
        sender._vegas_adjust()
        assert sender.cwnd == pytest.approx(cwnd)

    def test_backlog_estimate_formula(self):
        sender = self.ca_sender(base=0.1, last=0.2, cwnd=10.0)
        # expected=100 pkt/s, actual=50 -> diff = 50*0.1 = 5 packets
        assert sender.backlog_estimate() == pytest.approx(5.0)


class TestExpeditedRetransmit:
    def test_first_dupack_retransmits_if_stale(self):
        harness = make_no_rto()
        harness.start()
        harness.advance(0.1)
        harness.ack(1)  # RTT sample ~0.1 -> fine timeout ~0.5
        harness.advance(2.0)  # oldest outstanding is now very stale
        harness.host.clear()
        harness.ack(1)  # FIRST duplicate
        assert 1 in harness.host.retransmit_seqs()
        assert harness.sender.expedited_retransmits == 1

    def test_fresh_dupack_waits_for_threshold(self):
        harness = make_no_rto()
        harness.start()
        harness.advance(0.1)
        harness.ack(1)
        harness.host.clear()
        harness.ack(1)  # immediately: not stale
        assert harness.host.retransmit_seqs() == []

    def test_disabled_switch(self):
        harness = make_no_rto()
        harness.sender.enable_expedited_rtx = False
        harness.start()
        harness.advance(0.1)
        harness.ack(1)
        harness.advance(2.0)
        harness.host.clear()
        harness.ack(1)
        assert harness.host.retransmit_seqs() == []


class TestVegasEndToEnd:
    def test_avoids_self_induced_losses(self):
        """Vegas' delay-based CA should back off before the buffer
        overflows — zero losses on a clean bottleneck."""
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="vegas", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        scenario.sim.run(until=60.0)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert stats.drops_observed == 0
        assert sender.retransmits == 0

    def test_reno_same_path_does_lose(self):
        """Contrast: Reno on the identical path overflows the buffer."""
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="reno", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        scenario.sim.run(until=60.0)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert stats.drops_observed > 0

    def test_recovers_from_injected_burst(self):
        from repro.net.loss import DeterministicLoss

        loss = DeterministicLoss([(1, 50), (1, 51)])
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="vegas", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            forward_loss=loss,
        )
        scenario.sim.run(until=120.0)
        sender, _ = scenario.flow(1)
        assert sender.completed
