"""Precision tests for the sack1 incremental-pipe dynamics (the
Fall & Floyd '96 behaviour the paper benchmarked against)."""

import pytest

from repro.config import TcpConfig
from repro.tcp.sack import SackSender
from tests.conftest import SenderHarness


def make(cwnd=10.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(SackSender, config)


class TestPipeArithmetic:
    def test_entry_pipe_counts_flight_minus_dupthresh(self):
        harness = make(cwnd=10.0)
        harness.start()  # flight 10
        harness.dupacks(0, 3, sacks=[(1, 4)])
        # pipe = 10 - 3, +1 for the retransmission of packet 0.
        assert harness.sender.current_pipe() == 8

    def test_dupack_decrements_pipe(self):
        harness = make(cwnd=10.0)
        harness.start()
        harness.dupacks(0, 3, sacks=[(1, 4)])
        pipe = harness.sender.current_pipe()
        harness.ack(0, sacks=[(1, 5)])
        # -1 for the dup; nothing sent (pipe still >= cwnd).
        assert harness.sender.current_pipe() == pipe - 1

    def test_partial_ack_decrements_pipe_by_two(self):
        harness = make(cwnd=20.0)
        harness.start()  # flight 20
        harness.dupacks(0, 3, sacks=[(1, 4)])
        pipe_before = harness.sender.current_pipe()
        harness.host.clear()
        harness.ack(4, sacks=[(5, 6)])  # partial ACK
        sent = len(harness.host.sent)
        # -2 for the partial ACK, +1 per transmission triggered.
        assert harness.sender.current_pipe() == pipe_before - 2 + sent

    def test_transmissions_blocked_while_pipe_full(self):
        harness = make(cwnd=10.0)
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 3, sacks=[(1, 4)])
        # Only the mandatory retransmission of the first hole went out.
        assert len(harness.host.sent) == 1

    def test_pipe_drains_then_sends(self):
        harness = make(cwnd=10.0)
        harness.start()
        harness.dupacks(0, 3, sacks=[(1, 4)])
        harness.host.clear()
        # Entry left pipe at 8 vs cwnd 5: need 4 more dups before the
        # next transmission fits.
        harness.dupacks(0, 3, sacks=[(1, 7)])
        assert harness.host.sent == []
        harness.ack(0, sacks=[(1, 8)])
        assert len(harness.host.sent) == 1


class TestHoleSelection:
    def test_holes_below_highest_sack_first(self):
        harness = make(cwnd=12.0)
        harness.start()  # 0..11; losses 0, 4
        harness.dupacks(0, 3, sacks=[(1, 4), (5, 9)])
        harness.host.clear()
        # Drain pipe so transmissions flow.
        for _ in range(6):
            harness.ack(0, sacks=[(1, 4), (5, 12)])
        retransmits = harness.host.retransmit_seqs()
        assert retransmits and retransmits[0] == 4  # the hole, not new data

    def test_no_hole_beyond_highest_sack(self):
        harness = make(cwnd=12.0)
        harness.start()
        harness.dupacks(0, 3, sacks=[(1, 6)])
        harness.host.clear()
        for _ in range(8):
            harness.ack(0, sacks=[(1, 6)])
        # Packets 6..11 are un-SACKed but beyond the highest SACK: they
        # are presumed in flight, so only new data is sent.
        assert harness.host.retransmit_seqs() == []
        assert harness.host.new_data_seqs() != []

    def test_hole_not_retransmitted_twice_per_episode(self):
        harness = make(cwnd=12.0)
        harness.start()
        harness.dupacks(0, 3, sacks=[(1, 4), (5, 9)])
        harness.host.clear()
        for _ in range(10):
            harness.ack(0, sacks=[(1, 4), (5, 12)])
        assert harness.host.retransmit_seqs().count(4) == 1


class TestMaxBurst:
    """sack1's incremental pipe releases at most ~1 packet per ACK by
    construction; the burst hazard lives in the RFC 3517 recomputation,
    where one big SACK jump can free many window slots at once."""

    def make_3517(self, max_burst):
        from repro.tcp.sack import SackRfc3517Sender

        config = TcpConfig(initial_cwnd=30.0, initial_ssthresh=64, max_burst=max_burst)
        return SenderHarness(SackRfc3517Sender, config)

    def test_single_ack_releases_at_most_maxburst(self):
        harness = self.make_3517(max_burst=4)
        harness.start()  # flight 30
        harness.dupacks(0, 3, sacks=[(1, 4)])
        harness.host.clear()
        # A huge SACK jump: SetPipe collapses, freeing many slots...
        harness.ack(0, sacks=[(1, 30)])
        # ...but one ACK event may emit at most max_burst packets.
        assert 1 <= len(harness.host.sent) <= 4

    def test_unlimited_when_disabled(self):
        harness = self.make_3517(max_burst=0)
        harness.start()
        harness.dupacks(0, 3, sacks=[(1, 4)])
        harness.host.clear()
        harness.ack(0, sacks=[(1, 30)])
        assert len(harness.host.sent) > 4
