"""Unit tests for the TCP receivers (plain + SACK)."""

import pytest

from repro.config import TcpConfig
from repro.net.packet import data_packet
from repro.sim.engine import Simulator
from repro.tcp.receiver import SackReceiver, TcpReceiver


class StubHost:
    def __init__(self, name="K1"):
        self.name = name
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def make_receiver(cls=TcpReceiver, config=None):
    sim = Simulator()
    receiver = cls(sim, flow_id=1, config=config)
    host = StubHost()
    receiver.attach(host)
    return sim, receiver, host


def deliver(receiver, seqno):
    receiver.receive(data_packet(1, "S1", "K1", seqno))


class TestInOrder:
    def test_ack_every_packet(self):
        _, receiver, host = make_receiver()
        for i in range(3):
            deliver(receiver, i)
        assert [p.ackno for p in host.sent] == [1, 2, 3]

    def test_acks_addressed_to_sender(self):
        _, receiver, host = make_receiver()
        deliver(receiver, 0)
        ack = host.sent[0]
        assert ack.src == "K1" and ack.dst == "S1"
        assert ack.size == 40

    def test_delivered_counts(self):
        _, receiver, host = make_receiver()
        for i in range(5):
            deliver(receiver, i)
        assert receiver.delivered == 5

    def test_ignores_stray_acks(self):
        _, receiver, host = make_receiver()
        from repro.net.packet import ack_packet

        receiver.receive(ack_packet(1, "S1", "K1", 3))
        assert host.sent == []


class TestOutOfOrder:
    def test_gap_generates_dup_acks(self):
        _, receiver, host = make_receiver()
        deliver(receiver, 0)
        deliver(receiver, 2)  # 1 missing
        deliver(receiver, 3)
        assert [p.ackno for p in host.sent] == [1, 1, 1]
        assert receiver.buffered_out_of_order == 2

    def test_hole_fill_jumps_cumulative_ack(self):
        _, receiver, host = make_receiver()
        deliver(receiver, 0)
        deliver(receiver, 2)
        deliver(receiver, 3)
        deliver(receiver, 1)  # fills the hole
        assert host.sent[-1].ackno == 4
        assert receiver.buffered_out_of_order == 0

    def test_duplicate_data_reacked(self):
        _, receiver, host = make_receiver()
        deliver(receiver, 0)
        deliver(receiver, 0)
        assert [p.ackno for p in host.sent] == [1, 1]
        assert receiver.duplicates_received == 1

    def test_duplicate_out_of_order_data(self):
        _, receiver, host = make_receiver()
        deliver(receiver, 2)
        deliver(receiver, 2)
        assert receiver.duplicates_received == 1
        assert [p.ackno for p in host.sent] == [0, 0]

    def test_multiple_holes(self):
        _, receiver, host = make_receiver()
        for seqno in [0, 2, 4, 6]:
            deliver(receiver, seqno)
        assert host.sent[-1].ackno == 1
        deliver(receiver, 1)
        assert host.sent[-1].ackno == 3
        deliver(receiver, 3)
        assert host.sent[-1].ackno == 5
        deliver(receiver, 5)
        assert host.sent[-1].ackno == 7


class TestDelayedAck:
    def test_every_other_packet_acked(self):
        config = TcpConfig(delayed_ack=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 0)
        assert host.sent == []  # first in-order packet held back
        deliver(receiver, 1)
        assert [p.ackno for p in host.sent] == [2]

    def test_timer_flushes_single_packet(self):
        config = TcpConfig(delayed_ack=True, delayed_ack_timeout=0.2)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 0)
        sim.run(until=1.0)
        assert [p.ackno for p in host.sent] == [1]

    def test_out_of_order_acks_immediately(self):
        config = TcpConfig(delayed_ack=True)
        _, receiver, host = make_receiver(config=config)
        deliver(receiver, 2)
        assert len(host.sent) == 1  # immediate dup ACK despite delack

    def test_out_of_order_flushes_pending(self):
        config = TcpConfig(delayed_ack=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 0)  # held
        deliver(receiver, 2)  # ooo: must emit an ACK covering 0 too
        assert [p.ackno for p in host.sent] == [1]
        sim.run(until=1.0)
        assert len(host.sent) == 1  # nothing further pending

    def test_gap_fill_acks_immediately(self):
        """RFC 5681: a segment filling a sequence gap generates an
        immediate ACK even with delayed ACKs enabled."""
        config = TcpConfig(delayed_ack=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 1)  # gap at 0 -> immediate dup ACK(0)
        host.sent.clear()
        deliver(receiver, 0)  # fills the gap -> must ACK 2 immediately
        assert [p.ackno for p in host.sent] == [2]

    def test_partial_gap_fill_acks_immediately(self):
        config = TcpConfig(delayed_ack=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 1)
        deliver(receiver, 3)
        host.sent.clear()
        deliver(receiver, 0)  # fills part of the gap (3 still waits on 2)
        assert [p.ackno for p in host.sent] == [2]


class TestEcnDelayedAck:
    """RFC 3168: congestion-experienced marks must not idle behind the
    delayed-ACK timer — the echo rides an immediate ACK."""

    def deliver_marked(self, receiver, seqno):
        packet = data_packet(1, "S1", "K1", seqno)
        packet.ecn_marked = True
        receiver.receive(packet)

    def test_marked_in_order_packet_acks_immediately(self):
        config = TcpConfig(delayed_ack=True, ecn_enabled=True)
        sim, receiver, host = make_receiver(config=config)
        self.deliver_marked(receiver, 0)
        assert [p.ackno for p in host.sent] == [1]
        assert host.sent[0].ecn_echo

    def test_mark_flushes_pending_delayed_ack(self):
        config = TcpConfig(delayed_ack=True, ecn_enabled=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 0)  # unmarked: held back
        assert host.sent == []
        self.deliver_marked(receiver, 1)  # mark: flush now, echo set
        assert [p.ackno for p in host.sent] == [2]
        assert host.sent[0].ecn_echo
        sim.run(until=1.0)
        assert len(host.sent) == 1  # nothing left on the timer

    def test_echo_latency_not_timer_bound(self):
        """Pre-fix, a solitary marked packet waited out the full
        delayed-ACK timeout (200 ms) before the echo went out."""
        config = TcpConfig(
            delayed_ack=True, ecn_enabled=True, delayed_ack_timeout=0.2
        )
        sim, receiver, host = make_receiver(config=config)
        self.deliver_marked(receiver, 0)
        sim.run(until=0.05)  # well inside the timeout window
        assert len(host.sent) == 1 and host.sent[0].ecn_echo

    def test_unmarked_traffic_still_delays(self):
        config = TcpConfig(delayed_ack=True, ecn_enabled=True)
        sim, receiver, host = make_receiver(config=config)
        deliver(receiver, 0)
        assert host.sent == []  # no mark, normal delayed-ACK holdback

    def test_sack_receiver_inherits_immediate_echo(self):
        config = TcpConfig(delayed_ack=True, ecn_enabled=True)
        sim, receiver, host = make_receiver(SackReceiver, config=config)
        self.deliver_marked(receiver, 0)
        assert [p.ackno for p in host.sent] == [1]
        assert host.sent[0].ecn_echo


class TestSackDelayedAck:
    """SACK receiver with delayed ACKs: blocks only ever describe the
    out-of-order buffer, and the immediate-ACK rules win over delay."""

    def make(self):
        config = TcpConfig(delayed_ack=True, delayed_ack_timeout=0.2)
        return make_receiver(SackReceiver, config=config)

    def test_in_order_data_still_delays(self):
        sim, receiver, host = self.make()
        deliver(receiver, 0)
        assert host.sent == []
        deliver(receiver, 1)
        assert [p.ackno for p in host.sent] == [2]
        assert host.sent[0].sack_blocks == []

    def test_timer_flush_carries_no_stale_blocks(self):
        sim, receiver, host = self.make()
        deliver(receiver, 0)
        sim.run(until=1.0)
        assert [p.ackno for p in host.sent] == [1]
        assert host.sent[0].sack_blocks == []

    def test_out_of_order_flushes_pending_with_blocks(self):
        sim, receiver, host = self.make()
        deliver(receiver, 0)  # held back
        deliver(receiver, 2)  # immediate; must also cover seqno 0
        assert [p.ackno for p in host.sent] == [1]
        block = host.sent[0].sack_blocks[0]
        assert (block.start, block.end) == (2, 3)
        sim.run(until=1.0)
        assert len(host.sent) == 1  # nothing left on the timer

    def test_gap_fill_acks_immediately_with_remaining_blocks(self):
        sim, receiver, host = self.make()
        deliver(receiver, 1)
        deliver(receiver, 3)
        host.sent.clear()
        deliver(receiver, 0)  # fills part of the gap; 3 still buffered
        assert [p.ackno for p in host.sent] == [2]
        block = host.sent[0].sack_blocks[0]
        assert (block.start, block.end) == (3, 4)

    def test_delay_resumes_after_hole_repair(self):
        sim, receiver, host = self.make()
        deliver(receiver, 1)  # dup ACK
        deliver(receiver, 0)  # gap fill: immediate ACK(2)
        host.sent.clear()
        deliver(receiver, 2)  # clean in-order again: held back
        assert host.sent == []
        deliver(receiver, 3)
        assert [p.ackno for p in host.sent] == [4]
        assert host.sent[0].sack_blocks == []

    def test_most_recent_block_first_under_delack(self):
        sim, receiver, host = self.make()
        deliver(receiver, 2)
        deliver(receiver, 5)
        first = host.sent[-1].sack_blocks[0]
        assert (first.start, first.end) == (5, 6)  # RFC 2018 ordering


class TestSackReceiver:
    def test_no_blocks_when_in_order(self):
        _, receiver, host = make_receiver(SackReceiver)
        deliver(receiver, 0)
        assert host.sent[0].sack_blocks == []

    def test_single_block(self):
        _, receiver, host = make_receiver(SackReceiver)
        deliver(receiver, 0)
        deliver(receiver, 2)
        block = host.sent[-1].sack_blocks[0]
        assert (block.start, block.end) == (2, 3)

    def test_contiguous_ooo_merges(self):
        _, receiver, host = make_receiver(SackReceiver)
        deliver(receiver, 2)
        deliver(receiver, 3)
        block = host.sent[-1].sack_blocks[0]
        assert (block.start, block.end) == (2, 4)

    def test_most_recent_block_first(self):
        _, receiver, host = make_receiver(SackReceiver)
        deliver(receiver, 2)
        deliver(receiver, 5)
        deliver(receiver, 8)
        blocks = host.sent[-1].sack_blocks
        assert (blocks[0].start, blocks[0].end) == (8, 9)

    def test_block_limit(self):
        config = TcpConfig(sack_block_limit=3)
        _, receiver, host = make_receiver(SackReceiver, config=config)
        for seqno in [2, 4, 6, 8, 10]:
            deliver(receiver, seqno)
        assert len(host.sent[-1].sack_blocks) == 3

    def test_blocks_cleared_after_hole_fill(self):
        _, receiver, host = make_receiver(SackReceiver)
        deliver(receiver, 1)
        deliver(receiver, 0)
        assert host.sent[-1].sack_blocks == []
