"""Unit tests for the CUBIC sender (RFC 8312 growth over New-Reno
recovery): beta=0.7 decrease, fast convergence, concave/convex
time-based growth, and picklable epoch state."""

import pickle

import pytest

from repro.config import TcpConfig
from repro.tcp.cubic import CUBIC_BETA, CubicSender
from tests.conftest import SenderHarness


def make(cwnd=10.0, ssthresh=64, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=ssthresh, **cfg)
    return SenderHarness(CubicSender, config)


class TestMultiplicativeDecrease:
    def test_fast_retransmit_cuts_by_beta(self):
        harness = make()
        harness.start()  # 0..9 in flight
        harness.dupacks(0, 3)
        assert harness.sender.ssthresh == pytest.approx(10.0 * CUBIC_BETA)
        assert harness.sender.in_recovery

    def test_w_max_recorded_at_loss(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender._w_max == pytest.approx(10.0)

    def test_full_ack_exits_to_beta_window(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)
        assert not harness.sender.in_recovery
        assert harness.sender.cwnd == pytest.approx(10.0 * CUBIC_BETA)

    def test_fast_convergence_shrinks_w_max(self):
        harness = make()
        sender = harness.sender
        sender._w_max = 10.0
        sender.cwnd = 8.0  # losing ground: loss below the old plateau
        sender._halved_ssthresh()
        assert sender._w_max == pytest.approx(8.0 * (2.0 - CUBIC_BETA) / 2.0)

    def test_no_fast_convergence_above_w_max(self):
        harness = make()
        sender = harness.sender
        sender._w_max = 10.0
        sender.cwnd = 12.0
        sender._halved_ssthresh()
        assert sender._w_max == pytest.approx(12.0)

    def test_timeout_uses_beta_not_half(self):
        harness = make()
        harness.start()
        harness.advance(4.0)  # first RTO fires (initial_rto = 3 s)
        assert harness.sender.timeouts == 1
        assert harness.sender.ssthresh == pytest.approx(10.0 * CUBIC_BETA)
        assert harness.sender.cwnd == pytest.approx(1.0)

    def test_ecn_reaction_uses_beta(self):
        harness = make(ecn_enabled=True)
        harness.start()
        harness.sender._ecn_reaction()
        assert harness.sender.ssthresh == pytest.approx(10.0 * CUBIC_BETA)


class TestTimeBasedGrowth:
    def test_slow_start_unchanged(self):
        harness = make(cwnd=2.0, ssthresh=64)
        harness.start()
        harness.ack(1)
        assert harness.sender.cwnd == pytest.approx(3.0)

    def test_convex_growth_accelerates_with_time(self):
        # ssthresh below cwnd: congestion avoidance from the first ACK.
        harness = make(cwnd=10.0, ssthresh=5)
        sender = harness.sender
        # Long-RTT path: the AIMD-friendly estimate grows negligibly,
        # so the cubic curve is what drives the window.
        sender.rto.on_sample(10.0)
        harness.advance(0.1)
        sender._open_cwnd()  # anchors the epoch (pure convex probing)
        harness.advance(1.0)
        before = sender.cwnd
        sender._open_cwnd()
        early_delta = sender.cwnd - before
        harness.advance(4.0)
        before = sender.cwnd
        sender._open_cwnd()
        late_delta = sender.cwnd - before
        assert late_delta > early_delta > 0.0

    def test_tcp_friendly_region_tracks_aimd_estimate(self):
        """On a short-RTT path the cubic curve lags the AIMD(0.53, 0.7)
        estimate, and cwnd tracks W_est instead (RFC 8312 §4.2)."""
        harness = make()
        sender = harness.sender
        sender.rto.on_sample(0.05)
        sender.ssthresh = 7.0
        sender.cwnd = 7.0
        sender._w_max = 10.0
        harness.advance(0.1)
        sender._open_cwnd()  # anchor
        harness.advance(0.5)
        sender._open_cwnd()
        w_est = 7.0 + (3.0 * 0.3 / 1.7) * (0.5 / sender.rto.srtt)
        assert sender.cwnd == pytest.approx(w_est)

    def test_concave_plateau_below_w_max(self):
        """Shortly after a loss the window creeps toward (but stays
        below) the pre-loss W_max."""
        harness = make()
        sender = harness.sender
        sender.rto.on_sample(0.2)  # pin srtt so W_est is predictable
        sender.ssthresh = 7.0
        sender.cwnd = 7.0
        sender._w_max = 10.0
        grown = []
        for _ in range(4):
            harness.advance(0.2)
            sender._open_cwnd()
            grown.append(sender.cwnd)
        assert grown == sorted(grown)  # monotone approach...
        assert 7.0 < sender.cwnd < 10.0  # ...still under the plateau

    def test_growth_suppressed_on_ecn_echo_ack(self):
        harness = make(cwnd=10.0, ssthresh=5, ecn_enabled=True)
        harness.start()
        harness.sender._suppress_growth = True
        before = harness.sender.cwnd
        harness.sender._open_cwnd()
        assert harness.sender.cwnd == before


class TestEpochState:
    def test_epoch_reset_on_loss(self):
        harness = make(cwnd=10.0, ssthresh=5)
        harness.start()
        harness.ack(1)
        assert harness.sender._epoch_start is not None
        harness.dupacks(1, 3)
        assert harness.sender._epoch_start is None

    def test_sender_pickles_mid_epoch(self):
        harness = make(cwnd=10.0, ssthresh=5)
        harness.start()
        harness.advance(0.5)
        harness.ack(1)
        blob = pickle.dumps(harness.sender)
        clone = pickle.loads(blob)
        assert clone._w_max == harness.sender._w_max
        assert clone._epoch_start == harness.sender._epoch_start
        assert clone._k == harness.sender._k
