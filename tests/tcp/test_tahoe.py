"""Unit tests for Tahoe fast retransmit + slow-start restart."""

import pytest

from repro.config import TcpConfig
from repro.tcp.tahoe import TahoeSender
from tests.conftest import SenderHarness


def make(cwnd=8.0):
    return SenderHarness(TahoeSender, TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64))


class TestFastRetransmit:
    def test_third_dupack_retransmits(self):
        harness = make()
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 3)
        assert harness.host.retransmit_seqs() == [0]

    def test_window_collapses_to_one(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.cwnd == pytest.approx(1.0)
        assert harness.sender.ssthresh == pytest.approx(4.0)

    def test_go_back_n(self):
        harness = make()
        harness.start()  # 0..7 out
        harness.dupacks(0, 3)
        assert harness.sender.snd_nxt == 1  # reset to una, then rtx of 0

    def test_extra_dupacks_ignored(self):
        harness = make()
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 6)
        assert harness.host.retransmit_seqs() == [0]  # only one retransmission

    def test_fewer_than_three_dupacks_no_action(self):
        harness = make()
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 2)
        assert harness.host.sent == []

    def test_never_enters_recovery(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 5)
        assert not harness.sender.in_recovery


class TestSlowStartRestart:
    def test_resends_window_in_slow_start(self):
        harness = make()
        harness.start()  # 0..7
        harness.dupacks(0, 3)  # rtx 0, cwnd 1
        harness.host.clear()
        harness.ack(1)  # slow start: cwnd 2, resends 1,2
        assert harness.host.data_seqs() == [1, 2]
        assert all(p.is_retransmit for p in harness.host.sent if p.is_data)

    def test_resent_packets_marked_retransmit(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.ack(1)  # go-back-N resends of 1, 2
        resends = [p for p in harness.host.sent if p.is_data and p.seqno < 8]
        assert resends and all(p.is_retransmit for p in resends)

    def test_cumulative_ack_after_buffered_data(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        # Receiver had 1..7 buffered; rtx of 0 yields a big ACK.
        harness.ack(8)
        assert harness.sender.snd_una == 8
        assert harness.sender.snd_nxt >= 8

    def test_recovers_with_multiple_loss_rounds(self):
        harness = make()
        harness.start()  # 0..7 out; pretend 0 and 4 lost
        harness.dupacks(0, 3)
        harness.ack(4)   # rtx of 0 acked through 3 (4 missing)
        harness.host.clear()
        harness.dupacks(4, 3)
        assert 4 in harness.host.retransmit_seqs()
