"""Unit tests for the SACK sender (sack1 and RFC 3517 pipe modes)."""

import pytest

from repro.config import TcpConfig
from repro.tcp.sack import SackRfc3517Sender, SackSender
from tests.conftest import SenderHarness


def make(cwnd=10.0, cls=SackSender, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(cls, config)


def burst_dupacks(harness, ackno, sack_ranges, count):
    """Deliver ``count`` duplicate ACKs carrying growing SACK info."""
    for i in range(count):
        harness.ack(ackno, sacks=sack_ranges)


class TestEnterRecovery:
    def test_halves_window_without_inflation(self):
        harness = make()
        harness.start()  # 0..9, loss at 0
        burst_dupacks(harness, 0, [(1, 4)], 3)
        assert harness.sender.in_recovery
        assert harness.sender.cwnd == pytest.approx(5.0)
        assert harness.sender.ssthresh == pytest.approx(5.0)

    def test_retransmits_first_hole(self):
        harness = make()
        harness.start()
        harness.host.clear()
        burst_dupacks(harness, 0, [(1, 4)], 3)
        assert 0 in harness.host.retransmit_seqs()

    def test_scoreboard_updated_from_blocks(self):
        harness = make()
        harness.start()
        burst_dupacks(harness, 0, [(1, 4)], 3)
        assert harness.sender.scoreboard.is_sacked(2)


class TestMultipleHoles:
    def test_all_holes_repaired_without_new_dupack_rounds(self):
        """The SACK selling point: several losses in one window are all
        retransmitted within the same recovery episode."""
        harness = make(cwnd=10.0)
        harness.start()  # 0..9; losses 0, 2, 4
        # survivors 1,3,5..9 SACKed progressively
        harness.ack(0, sacks=[(1, 2)])
        harness.ack(0, sacks=[(3, 4), (1, 2)])
        harness.ack(0, sacks=[(5, 6), (3, 4), (1, 2)])
        harness.ack(0, sacks=[(5, 7), (3, 4), (1, 2)])
        harness.ack(0, sacks=[(5, 8), (3, 4), (1, 2)])
        harness.ack(0, sacks=[(5, 9), (3, 4), (1, 2)])
        harness.ack(0, sacks=[(5, 10), (3, 4), (1, 2)])
        # a few more duplicates (in the real network, the new data sent
        # during recovery keeps the dup-ACK clock running)
        for _ in range(4):
            harness.ack(0, sacks=[(5, 10), (3, 4), (1, 2)])
        retransmitted = set(harness.host.retransmit_seqs())
        assert 0 in retransmitted
        assert 2 in retransmitted
        assert 4 in retransmitted

    def test_partial_ack_keeps_recovery(self):
        harness = make()
        harness.start()
        burst_dupacks(harness, 0, [(1, 10)], 3)
        harness.ack(2, sacks=[(3, 10)])
        assert harness.sender.in_recovery

    def test_full_ack_exits(self):
        harness = make()
        harness.start()
        burst_dupacks(harness, 0, [(1, 10)], 3)
        harness.ack(10)
        assert not harness.sender.in_recovery


class TestPipeControl:
    def test_pipe_limits_transmission(self):
        harness = make(cwnd=10.0)
        harness.start()  # flight 10
        harness.host.clear()
        # Entry: pipe = 10 - 3 = 7, cwnd = 5 -> only the hole rtx goes out.
        burst_dupacks(harness, 0, [(1, 4)], 3)
        assert len(harness.host.sent) == 1

    def test_dupacks_drain_pipe_and_release_data(self):
        harness = make(cwnd=10.0)
        harness.start()
        burst_dupacks(harness, 0, [(1, 4)], 3)
        harness.host.clear()
        # Each further dup ACK decrements pipe; eventually pipe < cwnd
        # and new data flows.
        burst_dupacks(harness, 0, [(1, 10)], 6)
        assert len(harness.host.new_data_seqs()) >= 1

    def test_sack1_mode_is_default(self):
        assert make().sender.pipe_algorithm == "sack1"

    def test_rfc3517_pipe_recomputed(self):
        harness = make(cls=SackRfc3517Sender)
        harness.start()
        burst_dupacks(harness, 0, [(1, 10)], 3)
        # Scoreboard view of the original window: 0 lost (excluded),
        # 1..9 SACKed (excluded), rtx of 0 counted once.
        assert harness.sender.scoreboard.pipe(0, 10) == 1
        # The freed window released new data (pipe rose to cwnd).
        assert len(harness.host.new_data_seqs()) >= 1
        assert harness.sender.current_pipe() <= int(harness.sender.cwnd)


class TestStaleDupacks:
    def test_no_reentry_below_recover(self):
        harness = make()
        harness.start()
        burst_dupacks(harness, 0, [(1, 10)], 3)
        harness.ack(10)
        harness.host.clear()
        harness.dupacks(10, 3)
        assert harness.host.retransmit_seqs() == []


class TestTimeout:
    def test_timeout_clears_scoreboard(self):
        harness = make()
        harness.start()
        burst_dupacks(harness, 0, [(1, 10)], 3)
        harness.advance(10.0)
        assert harness.sender.scoreboard.sacked_count() == 0
        assert not harness.sender.in_recovery

    def test_rfc3517_partial_ack_fallback_retransmission(self):
        """With < DupThresh SACKs above the final hole the IsLost test
        fails; the partial-ACK fallback must still repair it."""
        harness = make(cls=SackRfc3517Sender)
        harness.start()  # 0..9; losses 0 and 8
        burst_dupacks(harness, 0, [(1, 8)], 3)
        harness.host.clear()
        harness.ack(8, sacks=[(9, 10)])  # partial: hole at 8, one SACK above
        assert 8 in harness.host.retransmit_seqs()
