"""Unit tests for Relentless TCP: cwnd decreases by exactly the number
of lost segments, never by half; timeouts keep the full conservative
response."""

import pytest

from repro.config import TcpConfig
from repro.tcp.relentless import RelentlessSender
from tests.conftest import SenderHarness


def make(cwnd=10.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(RelentlessSender, config)


class TestNoMultiplicativeBackoff:
    def test_entry_does_not_halve(self):
        harness = make()
        harness.start()  # 0..9 out
        harness.dupacks(0, 3)
        assert harness.sender.in_recovery
        # ssthresh parked one below entry, inflated for ACK clocking.
        assert harness.sender.ssthresh == pytest.approx(9.0)
        assert harness.sender.cwnd == pytest.approx(12.0)

    def test_single_loss_costs_one_segment(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)  # full ACK: only packet 0 was lost
        assert not harness.sender.in_recovery
        # entry 10, minus the 1 loss, plus CA growth for the one
        # in-recovery ACK (the full ACK; the third dup *triggered*
        # entry) at the 1/10 entry rate.
        assert harness.sender.cwnd == pytest.approx(10.0 - 1.0 + 1 * 0.1)
        assert harness.sender.ssthresh == pytest.approx(harness.sender.cwnd)

    def test_three_losses_cost_three_segments(self):
        harness = make()
        harness.start()  # losses at 0, 3, 5
        harness.dupacks(0, 3)
        harness.ack(3)   # partial: hole at 3
        harness.ack(5)   # partial: hole at 5
        harness.ack(10)  # full
        assert not harness.sender.in_recovery
        # entry 10, minus 3 losses, plus 3 in-recovery ACKs of growth
        # (two partials + the full ACK).
        assert harness.sender.cwnd == pytest.approx(10.0 - 3.0 + 3 * 0.1)

    def test_floor_at_two_segments(self):
        harness = make(cwnd=4.0)
        harness.start()  # 0..3; lose all four
        harness.dupacks(0, 3)
        for ackno in (1, 2, 3):
            harness.ack(ackno)
        harness.ack(4)
        assert harness.sender.cwnd >= 2.0

    def test_resumes_congestion_avoidance_not_slow_start(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)  # cwnd = ssthresh = 9.4
        exit_cwnd = harness.sender.cwnd
        harness.ack(11)
        # +1/cwnd growth (congestion avoidance), not +1 (slow start).
        assert harness.sender.cwnd == pytest.approx(exit_cwnd + 1.0 / exit_cwnd)

    def test_growth_continues_through_recovery(self):
        """The draft's second half: a long recovery episode still earns
        CA growth, tallied at the entry-window rate."""
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.dupacks(0, 5)  # five more delivered packets
        harness.ack(10)
        # 6 in-recovery ACKs (5 post-entry dups + full) at 1/10 each,
        # one loss.
        assert harness.sender.cwnd == pytest.approx(10.0 - 1.0 + 6 * 0.1)


class TestRecoveryMechanics:
    def test_partial_ack_retransmits_next_hole(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.ack(3)
        assert harness.host.retransmit_seqs() == [3]
        assert harness.sender.in_recovery

    def test_stale_dupacks_do_not_reenter(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(10)
        harness.host.clear()
        harness.dupacks(10, 3)
        assert harness.host.retransmit_seqs() == []

    def test_timeout_keeps_conservative_response(self):
        """Per the draft, losing the ACK clock entirely still warrants
        the standard backoff: ssthresh = flight/2, cwnd = 1."""
        harness = make()
        harness.start()  # 0..9 in flight
        harness.advance(4.0)  # first RTO fires (initial_rto = 3 s)
        assert harness.sender.timeouts == 1
        assert harness.sender.cwnd == pytest.approx(1.0)
        assert harness.sender.ssthresh == pytest.approx(5.0)
