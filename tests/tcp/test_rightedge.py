"""Unit tests for the right-edge recovery and Lin-Kung extras."""

from repro.config import TcpConfig
from repro.tcp.rightedge import LinKungSender, RightEdgeSender
from tests.conftest import SenderHarness


def make(cls, cwnd=10.0):
    return SenderHarness(cls, TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64))


class TestRightEdge:
    def test_one_new_packet_per_dupack_in_recovery(self):
        harness = make(RightEdgeSender)
        harness.start()  # 0..9
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.dupacks(0, 4)
        assert len(harness.host.new_data_seqs()) == 4

    def test_enters_recovery_like_newreno(self):
        harness = make(RightEdgeSender)
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 3)
        assert harness.sender.in_recovery
        assert harness.host.retransmit_seqs() == [0]

    def test_respects_receiver_window(self):
        harness = make(RightEdgeSender)
        config = TcpConfig(initial_cwnd=10.0, receiver_window=10)
        harness = SenderHarness(RightEdgeSender, config)
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.dupacks(0, 5)
        assert harness.host.new_data_seqs() == []

    def test_partial_ack_behaviour_inherited(self):
        harness = make(RightEdgeSender)
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        harness.ack(3)
        assert harness.host.retransmit_seqs() == [3]
        assert harness.sender.in_recovery


class TestLinKung:
    def test_first_two_dupacks_send_new_data(self):
        harness = make(LinKungSender)
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 2)
        assert len(harness.host.new_data_seqs()) == 2
        assert not harness.sender.in_recovery

    def test_third_dupack_still_triggers_fast_retransmit(self):
        harness = make(LinKungSender)
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 3)
        assert harness.host.retransmit_seqs() == [0]
        assert harness.sender.in_recovery

    def test_recovery_dupacks_use_newreno_inflation(self):
        harness = make(LinKungSender)
        harness.start()
        harness.dupacks(0, 3)
        cwnd = harness.sender.cwnd
        harness.ack(0)
        assert harness.sender.cwnd == cwnd + 1
