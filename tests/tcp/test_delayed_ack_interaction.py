"""Delayed-ACK interaction with the recovery schemes.

The paper assumes ACK-per-packet receivers (Section 3.1) and relies on
immediate ACKs for out-of-order data (Section 2.2).  Our receiver keeps
the RFC 5681 rule that out-of-order arrivals ACK immediately even when
delayed ACKs are on — which is precisely why RR's duplicate-ACK
accounting still works under delayed ACKs: once a hole exists, every
subsequent arrival generates an immediate duplicate.
"""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams

DELACK = TcpConfig(delayed_ack=True, receiver_window=64, initial_ssthresh=20.0)


def run(variant, drops=(), packets=300):
    loss = DeterministicLoss([(1, s) for s in drops]) if drops else None
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=DELACK,
        forward_loss=loss,
    )
    scenario.sim.run(until=300.0)
    return scenario


class TestCleanPath:
    @pytest.mark.parametrize("variant", ["tahoe", "newreno", "sack", "rr", "vegas"])
    def test_transfer_completes(self, variant):
        scenario = run(variant)
        sender, _ = scenario.flow(1)
        assert sender.completed

    def test_fewer_acks_than_packets(self):
        scenario = run("newreno")
        receiver = scenario.receivers[1]
        # Delayed ACKs: roughly one ACK per two in-order packets.
        assert receiver.acks_sent < receiver.packets_received * 0.8


class TestRecoveryWithDelayedAcks:
    @pytest.mark.parametrize("variant", ["newreno", "sack", "rr"])
    def test_burst_recovery_still_works(self, variant):
        scenario = run(variant, drops=(100, 101, 102))
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == 300

    def test_rr_burst_without_timeout(self):
        scenario = run("rr", drops=(100, 101, 102, 103))
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert sender.timeouts == 0
        assert len(stats.episodes) == 1

    def test_rr_no_false_further_losses(self):
        """Out-of-order data ACKs immediately, so ndup counts stay
        exact even with delayed ACKs enabled."""
        scenario = run("rr", drops=(100, 101, 102))
        sender, _ = scenario.flow(1)
        assert sender.further_losses_detected == 0
