"""Precision tests of New-Reno's transmission dynamics — the emergent
rates the paper's §1 critique quantifies."""

import pytest

from repro.config import TcpConfig
from repro.tcp.newreno import NewRenoSender
from tests.conftest import SenderHarness


def make(cwnd=16.0, **cfg):
    config = TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64, **cfg)
    return SenderHarness(NewRenoSender, config)


class TestFirstRttRelease:
    def test_one_new_packet_per_two_dupacks_emergent(self):
        """With W=16: entry sets cwnd = 8+3 = 11 vs flight 16; dup k
        makes cwnd 11+k, so new data flows from dup 6 — about one
        packet per two duplicates over the full first RTT."""
        harness = make(cwnd=16.0)
        harness.start()
        harness.dupacks(0, 3)
        harness.host.clear()
        released_at = []
        for k in range(1, 11):  # dups 4..13
            before = len(harness.host.new_data_seqs())
            harness.ack(0)
            if len(harness.host.new_data_seqs()) > before:
                released_at.append(k)
        # No releases until inflation passes the flight; then 1 per dup.
        assert released_at
        assert released_at[0] == 6
        assert released_at == list(range(6, 11))

    def test_total_first_rtt_release_about_half(self):
        harness = make(cwnd=16.0)
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 13)  # 3 trigger + 10 more (survivors of W=16, 3 lost)
        new = len(harness.host.new_data_seqs())
        assert 4 <= new <= 6  # ~= dups/2, the paper's characterisation


class TestPartialAckDeflationModes:
    def test_full_deflation_freezes_release_next_rtt(self):
        harness = make(cwnd=16.0)
        harness.start()
        harness.dupacks(0, 13)
        sent_rtt1 = len(harness.host.new_data_seqs())
        harness.ack(1)  # partial: cwnd slammed to ssthresh
        harness.host.clear()
        # RTT 2 duplicates: only the RTT-1 new packets echo back.
        harness.dupacks(1, sent_rtt1)
        sent_rtt2 = len(harness.host.new_data_seqs())
        assert sent_rtt2 < sent_rtt1  # geometric decay

    def test_rfc_deflation_keeps_releasing(self):
        harness = make(cwnd=16.0)
        harness.sender.partial_window_deflation = True
        harness.start()
        harness.dupacks(0, 13)
        sent_rtt1 = len(harness.host.new_data_seqs())
        harness.ack(1)
        harness.host.clear()
        harness.dupacks(1, sent_rtt1)
        sent_rtt2 = len(harness.host.new_data_seqs())
        # The milder RFC 2582 deflation sustains the release rate.
        assert sent_rtt2 >= sent_rtt1 - 1

    def test_partial_ack_restarts_timer(self):
        harness = make(cwnd=16.0, min_rto=1.0, initial_rto=1.0)
        harness.start()
        harness.advance(0.2)
        harness.ack(1)        # RTT sample; timer restarted
        harness.host.clear()
        harness.dupacks(1, 3)
        harness.advance(0.8)
        harness.ack(2)        # partial ACK at t=1.0 restarts the timer
        harness.advance(0.8)  # t=1.8 < 1.0 + rto
        assert harness.sender.timeouts == 0


class TestRecoverBookkeeping:
    def test_recover_is_entry_maxseq(self):
        harness = make(cwnd=16.0)
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.recover == 16

    def test_recover_not_extended_by_recovery_sends(self):
        """Unlike RR, New-Reno never advances its exit point: losses
        among recovery-sent packets need a whole new episode."""
        harness = make(cwnd=16.0)
        harness.start()
        harness.dupacks(0, 13)  # new data 16..20 sent
        harness.ack(1)
        assert harness.sender.recover == 16
        harness.ack(16)  # full ACK: exits even if 16..20 had losses
        assert not harness.sender.in_recovery
