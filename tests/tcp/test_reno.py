"""Unit tests for Reno fast recovery — including its documented
multiple-window-halving pathology with bursty losses."""

import pytest

from repro.config import TcpConfig
from repro.tcp.reno import RenoSender
from tests.conftest import SenderHarness


def make(cwnd=8.0):
    return SenderHarness(RenoSender, TcpConfig(initial_cwnd=cwnd, initial_ssthresh=64))


class TestEnterRecovery:
    def test_third_dupack_enters_recovery(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        assert harness.sender.in_recovery

    def test_window_inflation_on_entry(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        # cwnd = ssthresh + 3 = flight/2 + 3
        assert harness.sender.ssthresh == pytest.approx(4.0)
        assert harness.sender.cwnd == pytest.approx(7.0)

    def test_retransmits_hole(self):
        harness = make()
        harness.start()
        harness.host.clear()
        harness.dupacks(0, 3)
        assert harness.host.retransmit_seqs() == [0]


class TestDuringRecovery:
    def test_dupack_inflates_window(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        cwnd = harness.sender.cwnd
        harness.ack(0)  # 4th dup
        assert harness.sender.cwnd == pytest.approx(cwnd + 1)

    def test_new_data_flows_after_enough_dupacks(self):
        harness = make()
        harness.start()  # 0..7, flight 8
        harness.host.clear()
        harness.dupacks(0, 3)  # cwnd 7
        harness.dupacks(0, 2)  # cwnd 9 > flight 8 -> one new packet
        assert 8 in harness.host.new_data_seqs()


class TestExitRecovery:
    def test_any_new_ack_exits(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(2)  # even a partial ACK exits Reno recovery
        assert not harness.sender.in_recovery
        assert harness.sender.cwnd == pytest.approx(4.0)  # deflated to ssthresh

    def test_partial_ack_exit_requires_new_fast_retransmit(self):
        """The Reno pathology: each burst loss needs its own 3 dupacks
        and halves the window again."""
        harness = make()
        harness.start()  # 0..7; losses at 0 and 2
        harness.dupacks(0, 3)   # first halving: ssthresh 4
        harness.ack(2)          # partial -> exit, cwnd 4
        harness.host.clear()
        harness.dupacks(2, 3)   # second fast retransmit
        assert harness.host.retransmit_seqs() == [2]
        assert harness.sender.ssthresh < 4.0  # halved again

    def test_full_recovery_resumes_growth(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.ack(8)
        cwnd = harness.sender.cwnd
        harness.ack(9)
        assert harness.sender.cwnd > cwnd


class TestTimeoutDuringRecovery:
    def test_timeout_leaves_recovery(self):
        harness = make()
        harness.start()
        harness.dupacks(0, 3)
        harness.advance(4.0)  # initial RTO 3 s: exactly one firing
        assert not harness.sender.in_recovery
        assert harness.sender.cwnd == pytest.approx(1.0)
        assert harness.sender.timeouts == 1
