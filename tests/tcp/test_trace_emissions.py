"""Regression tests for ``tcp.*`` trace-record payloads.

docs/FAULTS.md promises ``SendWindowSanity`` checks
``snd_una <= snd_nxt <= maxseq`` at every send/ACK — which only works
if every ``tcp.send``, ``tcp.ack`` and ``tcp.timeout`` record actually
carries all three fields.  ``maxseq`` was historically missing from
the ACK and timeout emissions, silently reducing the invariant to a
two-term check there; these tests pin the full payload.
"""

import pytest

from repro.config import TcpConfig
from repro.net.packet import ack_packet
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.tcp.reno import RenoSender
from tests.conftest import StubHost

WINDOW_FIELDS = ("snd_una", "snd_nxt", "maxseq")


class TracedHarness:
    """SenderHarness with a live trace bus and a wildcard record tap."""

    def __init__(self, sender_cls=RenoSender):
        self.sim = Simulator()
        self.bus = TraceBus()
        self.records = []
        self.bus.subscribe(TraceBus.WILDCARD, self.records.append)
        self.host = StubHost()
        self.sender = sender_cls(
            self.sim,
            1,
            "K1",
            config=TcpConfig(initial_cwnd=8.0, initial_ssthresh=64.0),
            trace=self.bus,
        )
        self.sender.attach(self.host)

    def ack(self, ackno, count=1):
        for _ in range(count):
            self.sender.receive(ack_packet(1, "K1", "S1", ackno))

    def by_category(self, category):
        return [r for r in self.records if r.category == category]


@pytest.fixture
def driven():
    """A sender driven through new ACKs, a recovery episode, and a
    retransmission timeout — every emission path exercised."""
    harness = TracedHarness()
    harness.sender.start()
    harness.ack(1)  # new ACK
    harness.ack(1, count=3)  # three duplicates: fast retransmit
    harness.sim.run(until=harness.sim.now + 60.0)  # starve ACKs: RTO
    return harness


class TestWindowFieldsOnEveryRecord:
    @pytest.mark.parametrize("category", ["tcp.send", "tcp.ack", "tcp.timeout"])
    def test_records_carry_the_send_window_triple(self, driven, category):
        records = driven.by_category(category)
        assert records, f"the scripted drive emitted no {category} records"
        for record in records:
            missing = [f for f in WINDOW_FIELDS if f not in record.fields]
            assert not missing, (
                f"{category} record at t={record.time:g} is missing"
                f" {missing}: SendWindowSanity cannot check"
                " snd_una <= snd_nxt <= maxseq without them"
            )

    def test_window_triple_is_sane_on_every_record(self, driven):
        for category in ("tcp.send", "tcp.ack", "tcp.timeout"):
            for record in driven.by_category(category):
                fields = record.fields
                assert (
                    fields["snd_una"] <= fields["snd_nxt"] <= fields["maxseq"]
                ), (category, fields)


class TestPayloadShapes:
    def test_both_ack_polarities_emitted(self, driven):
        duplicates = {r.fields["duplicate"] for r in driven.by_category("tcp.ack")}
        assert duplicates == {True, False}
        for record in driven.by_category("tcp.ack"):
            assert "ackno" in record.fields

    def test_send_records_flag_retransmits(self, driven):
        sends = driven.by_category("tcp.send")
        assert {r.fields["retransmit"] for r in sends} == {True, False}
        for record in sends:
            assert "seqno" in record.fields

    def test_timeout_fired(self, driven):
        assert driven.sender.timeouts >= 1
        assert len(driven.by_category("tcp.timeout")) >= 1

    def test_source_label_carries_variant_and_flow(self, driven):
        sources = {r.source for r in driven.records}
        assert sources == {"reno/f1"}
