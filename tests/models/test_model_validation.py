"""Cross-validation of simulator and analytical model.

The Mathis derivation assumes periodic single losses: the window saws
between W/2 and W, losing exactly one packet per cycle.  Driving the
simulator with :class:`PeriodicLoss` — the model's own loss process —
the measured normalised throughput must land on the theoretical curve.
Agreement here validates both sides at once: the simulator's AIMD
dynamics and the model implementation.
"""

import math

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.models.mathis import MATHIS_C_ACK_EVERY_PACKET, mathis_window
from repro.net.loss import PeriodicLoss
from repro.net.topology import DumbbellParams


def measure_window(period, variant="newreno", duration=400.0, warmup=60.0,
                   delayed_ack=False):
    """Average window (BW*RTT/MSS) under one-loss-every-`period`."""
    loss = PeriodicLoss(period, offset=period // 2)
    params = DumbbellParams(
        n_pairs=1,
        bottleneck_bandwidth_bps=10e6,   # fast: RTT stays propagation-bound
        bottleneck_delay=0.097,
        side_bandwidth_bps=100e6,
        buffer_packets=400,
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=None)],
        params=params,
        default_config=TcpConfig(
            receiver_window=400, initial_ssthresh=30.0, delayed_ack=delayed_ack
        ),
        forward_loss=loss,
    )
    scenario.sim.run(until=duration)
    _, stats = scenario.flow(1)
    acked = stats.acked_at(duration) - stats.acked_at(warmup)
    bw_bps = acked * 8000.0 / (duration - warmup)
    return bw_bps * 0.2 / 8000.0  # W = BW * RTT / MSS


class TestPeriodicLossModule:
    def test_exact_period(self):
        from repro.net.packet import data_packet

        loss = PeriodicLoss(5)
        outcomes = [loss.should_drop(data_packet(1, "S", "K", i)) for i in range(20)]
        assert outcomes == [i % 5 == 0 for i in range(20)]

    def test_retransmissions_exempt(self):
        from repro.net.packet import data_packet

        loss = PeriodicLoss(1)  # every first transmission dies
        assert loss.should_drop(data_packet(1, "S", "K", 0))
        assert not loss.should_drop(data_packet(1, "S", "K", 0, is_retransmit=True))

    def test_offset_shifts_phase(self):
        from repro.net.packet import data_packet

        loss = PeriodicLoss(4, offset=2)
        outcomes = [loss.should_drop(data_packet(1, "S", "K", i)) for i in range(10)]
        assert outcomes.index(True) == 2

    def test_invalid_params(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PeriodicLoss(0)
        with pytest.raises(ConfigurationError):
            PeriodicLoss(3, offset=-1)


class TestSquareRootLaw:
    @pytest.mark.parametrize("period", [400, 900])
    def test_measured_window_matches_model(self, period):
        """Under the model's own assumptions the simulator lands within
        ~20% of C/sqrt(p) — most of the residual is the sawtooth-mean
        vs -peak convention."""
        p = 1.0 / period
        measured = measure_window(period)
        predicted = mathis_window(p)
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_scaling_between_two_rates(self):
        """Doubling the period (halving p) must scale W by ~sqrt(2),
        regardless of the absolute calibration."""
        w1 = measure_window(400)
        w2 = measure_window(800)
        assert w2 / w1 == pytest.approx(math.sqrt(2.0), rel=0.15)

    def test_rr_obeys_the_same_law(self):
        p = 1.0 / 400
        measured = measure_window(400, variant="rr")
        assert measured == pytest.approx(mathis_window(p), rel=0.3)

    def test_delayed_acks_scale_c_by_inverse_sqrt2(self):
        """The model's C depends on the ACK strategy: with one ACK per
        b=2 packets the window grows half as fast, so
        W_delack / W_ackall = 1/sqrt(2)."""
        w_ack_all = measure_window(400, delayed_ack=False)
        w_delack = measure_window(400, delayed_ack=True)
        assert w_delack / w_ack_all == pytest.approx(1 / math.sqrt(2.0), rel=0.2)
