"""Tests for the Diana & Lochin Relentless model: the 1/p law, regime
classification, verdict banding — and a cross-validation run driving
the simulator's RelentlessSender with the model's own loss process."""

import math

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.models.relentless import (
    RelentlessModelParams,
    relentless_prediction,
    relentless_verdict,
    relentless_window,
)
from repro.net.loss import PeriodicLoss
from repro.net.topology import DumbbellParams


class TestWindowLaw:
    def test_one_over_p(self):
        assert relentless_window(0.02) == pytest.approx(50.0)
        assert relentless_window(0.001) == pytest.approx(1000.0)

    def test_receiver_window_cap(self):
        assert relentless_window(0.001, max_window=64.0) == 64.0

    def test_invalid_loss_rate(self):
        with pytest.raises(ConfigurationError):
            relentless_window(0.0)
        with pytest.raises(ConfigurationError):
            relentless_window(1.0)

    def test_scales_as_inverse_p_not_sqrt(self):
        # Quadrupling the loss rate quarters the window (Reno would
        # only halve it).
        assert relentless_window(0.04) == pytest.approx(relentless_window(0.01) / 4)


class TestPrediction:
    def make(self, **kw):
        defaults = dict(
            loss_rate=0.02, base_rtt=0.2, bandwidth_bps=10e6, max_window=400.0
        )
        defaults.update(kw)
        return RelentlessModelParams(**defaults)

    def test_loss_limited_regime(self):
        pred = relentless_prediction(self.make())
        assert pred.regime == "loss-limited"
        assert pred.window_pkts == pytest.approx(50.0)
        assert pred.throughput_bps == pytest.approx(50.0 * 8000.0 / 0.2)

    def test_window_limited_regime(self):
        pred = relentless_prediction(self.make(loss_rate=0.001, max_window=64.0))
        assert pred.regime == "window-limited"
        assert pred.window_pkts == 64.0

    def test_capacity_limited_regime(self):
        pred = relentless_prediction(self.make(bandwidth_bps=500e3))
        assert pred.regime == "capacity-limited"
        assert pred.throughput_bps == 500e3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            relentless_prediction(self.make(base_rtt=0.0))


class TestVerdict:
    def params(self):
        return RelentlessModelParams(
            loss_rate=0.02, base_rtt=0.2, bandwidth_bps=10e6, max_window=400.0
        )

    def test_pass_inside_band(self):
        pred = relentless_prediction(self.params())
        v = relentless_verdict(
            self.params(),
            measured_bps=pred.throughput_bps * 0.8,
            measured_window=pred.window_pkts * 0.8,
        )
        assert v.passed and v.throughput_ok and v.window_ok

    def test_fail_outside_band(self):
        pred = relentless_prediction(self.params())
        v = relentless_verdict(
            self.params(),
            measured_bps=pred.throughput_bps * 0.3,
            measured_window=pred.window_pkts,
        )
        assert not v.passed and not v.throughput_ok

    def test_nan_window_skips_window_check(self):
        pred = relentless_prediction(self.params())
        v = relentless_verdict(
            self.params(),
            measured_bps=pred.throughput_bps,
            measured_window=float("nan"),
        )
        assert v.passed and v.window_ok

    def test_format_mentions_verdict(self):
        v = relentless_verdict(self.params(), 1e6, float("nan"))
        assert "relentless-model" in v.format()
        assert v.regime in v.format()


class TestSimulatorCrossValidation:
    def test_solo_relentless_lands_on_model(self):
        """One Relentless flow under one-loss-per-60-packets: the
        equilibrium window must sit near 1/p = 60 (the model's and the
        sender's shared fixed point)."""
        period = 60
        params = DumbbellParams(
            n_pairs=1,
            bottleneck_bandwidth_bps=10e6,  # RTT stays propagation-bound
            bottleneck_delay=0.097,
            side_bandwidth_bps=100e6,
            buffer_packets=400,
        )
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="relentless", amount_packets=None)],
            params=params,
            default_config=TcpConfig(receiver_window=400, initial_ssthresh=30.0),
            forward_loss=PeriodicLoss(period, offset=period // 2),
        )
        duration, warmup = 200.0, 60.0
        scenario.sim.run(until=duration)
        _, stats = scenario.flow(1)
        acked = stats.acked_at(duration) - stats.acked_at(warmup)
        bw_bps = acked * 8000.0 / (duration - warmup)
        measured_window = bw_bps * 0.2 / 8000.0
        assert measured_window == pytest.approx(period, rel=0.25)

    def test_relentless_beats_newreno_at_same_loss(self):
        """The defining behavioral contrast: under identical loss,
        Relentless sustains a much larger window than New-Reno."""

        def window_for(variant):
            params = DumbbellParams(
                n_pairs=1,
                bottleneck_bandwidth_bps=10e6,
                bottleneck_delay=0.097,
                side_bandwidth_bps=100e6,
                buffer_packets=400,
            )
            scenario = build_dumbbell_scenario(
                flows=[FlowSpec(variant=variant, amount_packets=None)],
                params=params,
                default_config=TcpConfig(receiver_window=400, initial_ssthresh=30.0),
                forward_loss=PeriodicLoss(400, offset=200),
            )
            scenario.sim.run(until=200.0)
            _, stats = scenario.flow(1)
            acked = stats.acked_at(200.0) - stats.acked_at(60.0)
            return acked * 8000.0 / 140.0 * 0.2 / 8000.0

        assert window_for("relentless") > 1.5 * window_for("newreno")
