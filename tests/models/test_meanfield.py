"""The mean-field RED fixed point and its oracle verdict."""

import pytest

from repro.errors import ConfigurationError
from repro.models.meanfield import (
    MeanFieldParams,
    effective_drop_probability,
    meanfield_fixed_point,
    oracle_verdict,
    red_drop_curve,
)
from repro.net.red import RedParams

RED = RedParams(min_th=10.0, max_th=40.0, max_p=0.02, limit=120)


def _params(**overrides):
    defaults = dict(
        n_flows=50,
        bandwidth_bps=50 * 800_000.0,
        base_rtt=0.104,
        red=RED,
        max_window=64.0,
    )
    defaults.update(overrides)
    return MeanFieldParams(**defaults)


def test_red_drop_curve_shape():
    assert red_drop_curve(5.0, RED) == 0.0
    assert red_drop_curve(10.0, RED) == 0.0
    mid = red_drop_curve(25.0, RED)
    assert 0.0 < mid < RED.max_p
    assert red_drop_curve(40.0, RED) == 1.0  # non-gentle cliff


def test_gentle_ramp_is_continuous():
    gentle = RedParams(min_th=10.0, max_th=40.0, max_p=0.02, limit=120, gentle=True)
    just_below = red_drop_curve(40.0 - 1e-9, gentle)
    at_cliff = red_drop_curve(40.0, gentle)
    assert at_cliff == pytest.approx(gentle.max_p, abs=1e-6)
    assert just_below == pytest.approx(at_cliff, abs=1e-6)
    assert red_drop_curve(60.0, gentle) == pytest.approx(0.51, abs=0.01)
    assert red_drop_curve(80.0, gentle) == 1.0


def test_uniformization_roughly_doubles_small_probabilities():
    assert effective_drop_probability(25.0, RED) == pytest.approx(
        2 * red_drop_curve(25.0, RED), rel=0.02
    )
    # ... and saturates at 1.
    assert effective_drop_probability(100.0, RED) == 1.0


def test_early_drop_fixed_point_balances_demand():
    params = _params()
    pred = meanfield_fixed_point(params)
    assert pred.regime == "early-drop"
    assert RED.min_th < pred.queue_pkts < RED.max_th
    # At the fixed point the aggregate demand fills the link.
    assert pred.utilization == pytest.approx(1.0, abs=1e-6)
    # Balance: N * W / RTT == capacity (packets/s).
    capacity_pps = params.bandwidth_bps / (8.0 * params.mss_bytes)
    demand = params.n_flows * pred.per_flow_window / pred.rtt
    assert demand == pytest.approx(capacity_pps, rel=1e-6)


def test_window_limited_regime():
    # Few flows on a fat link: receiver window caps demand below C.
    pred = meanfield_fixed_point(
        _params(n_flows=2, bandwidth_bps=100_000_000.0, max_window=32.0)
    )
    assert pred.regime == "window-limited"
    assert pred.loss_prob == 0.0
    assert pred.per_flow_window == pytest.approx(32.0)
    assert pred.utilization < 0.1


def test_forced_regime_under_overload():
    # Many flows, tiny per-flow share: even max_p cannot tame demand.
    pred = meanfield_fixed_point(
        _params(n_flows=1000, bandwidth_bps=10 * 800_000.0)
    )
    assert pred.regime == "forced"
    assert pred.queue_pkts == pytest.approx(RED.max_th)
    assert pred.loss_prob > 0.05
    assert pred.utilization == 1.0


def test_corner_regime_flagged_on_steep_ramps():
    # max_p far above the required drop rate parks the fixed point in
    # the bottom of the ramp, where the loop oscillates.
    steep = RedParams(min_th=10.0, max_th=40.0, max_p=0.1, limit=120)
    pred = meanfield_fixed_point(_params(red=steep))
    assert pred.regime == "early-drop-corner"
    assert (pred.queue_pkts - 10.0) / 30.0 < 0.15
    # The gentler default stays a plain early-drop fixed point.
    assert meanfield_fixed_point(_params()).regime == "early-drop"


def test_corner_verdict_is_one_sided():
    steep = RedParams(min_th=10.0, max_th=40.0, max_p=0.1, limit=120)
    pred = meanfield_fixed_point(_params(red=steep))
    # Heavy undershoot (the oscillatory signature) still passes...
    low = oracle_verdict(pred, pred.queue_pkts * 0.4, pred.loss_prob)
    assert low.passed and low.queue_ok
    # ... but overshooting the band fails, corner or not.
    high = oracle_verdict(pred, pred.queue_pkts * 2.0 + 10.0, pred.loss_prob)
    assert not high.queue_ok


def test_more_flows_push_the_queue_up():
    qs = [
        meanfield_fixed_point(_params(n_flows=n, bandwidth_bps=40_000_000.0)).queue_pkts
        for n in (25, 50, 100)
    ]
    assert qs[0] < qs[1] < qs[2]


def test_validation_rejects_nonsense():
    with pytest.raises(ConfigurationError):
        meanfield_fixed_point(_params(n_flows=0))
    with pytest.raises(ConfigurationError):
        meanfield_fixed_point(_params(bandwidth_bps=0.0))
    with pytest.raises(ConfigurationError):
        meanfield_fixed_point(_params(base_rtt=0.0))


def test_oracle_verdict_tolerances():
    pred = meanfield_fixed_point(_params())
    exact = oracle_verdict(pred, pred.queue_pkts, pred.loss_prob)
    assert exact.passed and exact.queue_ok and exact.loss_ok
    # Inside the relative band.
    near = oracle_verdict(pred, pred.queue_pkts * 1.3, pred.loss_prob * 1.4)
    assert near.passed
    # Far outside both bands.
    far = oracle_verdict(pred, pred.queue_pkts * 3.0, pred.loss_prob * 5.0 + 0.05)
    assert not far.passed and not far.queue_ok and not far.loss_ok
    assert "FAIL" in far.format()
    assert "PASS" in exact.format()


def test_oracle_verdict_absolute_floors():
    pred = meanfield_fixed_point(_params())
    # Tiny absolute deviations pass even when relatively large.
    verdict = oracle_verdict(pred, pred.queue_pkts + 3.9, pred.loss_prob + 0.009)
    assert verdict.passed
