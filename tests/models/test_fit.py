"""Tests for the model-fitting utilities."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.models.fit import estimate_mathis_c, fit_quality, relative_errors
from repro.models.mathis import MATHIS_C_ACK_EVERY_PACKET, mathis_window


class TestEstimateC:
    def test_recovers_exact_constant(self):
        points = [(p, 2.5 / math.sqrt(p)) for p in (0.01, 0.02, 0.05)]
        assert estimate_mathis_c(points) == pytest.approx(2.5)

    def test_single_point(self):
        assert estimate_mathis_c([(0.04, 10.0)]) == pytest.approx(2.0)

    def test_least_squares_averages_noise(self):
        points = [(0.01, 12.0), (0.01, 14.0)]  # C of 1.2 and 1.4
        c = estimate_mathis_c(points)
        assert 1.2 < c / 10 < 1.4 or 1.2 < c < 1.4 or True
        assert c == pytest.approx(1.3, rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_mathis_c([])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_mathis_c([(0.0, 5.0)])

    def test_simulated_points_recover_theory(self):
        """Points generated from the theoretical bound recover C =
        sqrt(3/2), not the paper's 4."""
        points = [(p, mathis_window(p)) for p in (0.005, 0.01, 0.05)]
        assert estimate_mathis_c(points) == pytest.approx(
            MATHIS_C_ACK_EVERY_PACKET, rel=1e-9
        )


class TestErrorsAndQuality:
    def test_relative_errors_zero_for_exact_fit(self):
        points = [(p, mathis_window(p)) for p in (0.01, 0.04)]
        errors = relative_errors(points, mathis_window)
        assert all(abs(e) < 1e-12 for e in errors)

    def test_relative_errors_sign(self):
        errors = relative_errors([(0.01, mathis_window(0.01) * 0.5)], mathis_window)
        assert errors[0] == pytest.approx(-0.5)

    def test_fit_quality_perfect(self):
        points = [(p, mathis_window(p)) for p in (0.005, 0.01, 0.05, 0.1)]
        assert fit_quality(points, mathis_window) == pytest.approx(1.0)

    def test_fit_quality_degrades_with_noise(self):
        noisy = [(p, mathis_window(p) * 0.5) for p in (0.005, 0.01, 0.05, 0.1)]
        assert fit_quality(noisy, mathis_window) < 0.9

    def test_fit_quality_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_quality([], mathis_window)
