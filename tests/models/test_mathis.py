"""Unit tests for the Mathis square-root model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.models.mathis import (
    MATHIS_C_ACK_EVERY_PACKET,
    PAPER_C,
    mathis_bandwidth_bps,
    mathis_window,
)


class TestWindow:
    def test_inverse_square_root_scaling(self):
        assert mathis_window(0.01) == pytest.approx(mathis_window(0.04) * 2)

    def test_standard_constant(self):
        assert MATHIS_C_ACK_EVERY_PACKET == pytest.approx(math.sqrt(1.5))

    def test_known_value(self):
        # W = sqrt(3/2)/sqrt(0.01) = 12.247
        assert mathis_window(0.01) == pytest.approx(12.247, rel=1e-3)

    def test_paper_constant(self):
        assert mathis_window(0.01, c=PAPER_C) == pytest.approx(40.0)

    def test_monotone_decreasing_in_p(self):
        values = [mathis_window(p) for p in (0.001, 0.01, 0.1, 1.0)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.1])
    def test_invalid_loss_rate(self, p):
        with pytest.raises(ConfigurationError):
            mathis_window(p)


class TestBandwidth:
    def test_window_bandwidth_consistency(self):
        p, rtt, mss = 0.02, 0.2, 1000
        bw = mathis_bandwidth_bps(p, rtt, mss)
        assert bw * rtt / (mss * 8) == pytest.approx(mathis_window(p))

    def test_scales_inversely_with_rtt(self):
        assert mathis_bandwidth_bps(0.01, 0.1) == pytest.approx(
            2 * mathis_bandwidth_bps(0.01, 0.2)
        )

    def test_scales_with_mss(self):
        assert mathis_bandwidth_bps(0.01, 0.2, mss_bytes=2000) == pytest.approx(
            2 * mathis_bandwidth_bps(0.01, 0.2, mss_bytes=1000)
        )

    def test_invalid_rtt(self):
        with pytest.raises(ConfigurationError):
            mathis_bandwidth_bps(0.01, 0.0)
