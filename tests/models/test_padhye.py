"""Unit tests for the Padhye et al. throughput model."""

import pytest

from repro.errors import ConfigurationError
from repro.models.mathis import mathis_bandwidth_bps
from repro.models.padhye import padhye_bandwidth_bps


class TestModelShape:
    def test_monotone_decreasing_in_p(self):
        values = [padhye_bandwidth_bps(p, rtt=0.2) for p in (0.001, 0.01, 0.05, 0.3)]
        assert values == sorted(values, reverse=True)

    def test_below_mathis_at_high_loss(self):
        """Timeout modelling must pull the estimate below the
        timeout-free square-root bound where losses are heavy."""
        p = 0.1
        assert padhye_bandwidth_bps(p, rtt=0.2, rto=1.0) < mathis_bandwidth_bps(p, 0.2)

    def test_approaches_mathis_at_low_loss(self):
        """With rare losses timeouts are negligible and the two models
        agree within ~20%."""
        p = 0.0005
        padhye = padhye_bandwidth_bps(p, rtt=0.2, rto=1.0)
        mathis = mathis_bandwidth_bps(p, 0.2)
        assert padhye == pytest.approx(mathis, rel=0.2)

    def test_receiver_window_cap(self):
        capped = padhye_bandwidth_bps(0.0001, rtt=0.2, max_window=10)
        assert capped == pytest.approx(10 / 0.2 * 8000)

    def test_longer_rto_lowers_throughput(self):
        slow = padhye_bandwidth_bps(0.05, rtt=0.2, rto=3.0)
        fast = padhye_bandwidth_bps(0.05, rtt=0.2, rto=0.5)
        assert slow < fast

    def test_delayed_ack_b2_lowers_throughput(self):
        b1 = padhye_bandwidth_bps(0.01, rtt=0.2, packets_per_ack=1.0)
        b2 = padhye_bandwidth_bps(0.01, rtt=0.2, packets_per_ack=2.0)
        assert b2 < b1


class TestValidation:
    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_invalid_loss_rate(self, p):
        with pytest.raises(ConfigurationError):
            padhye_bandwidth_bps(p, rtt=0.2)

    def test_invalid_rtt_or_rto(self):
        with pytest.raises(ConfigurationError):
            padhye_bandwidth_bps(0.01, rtt=0.0)
        with pytest.raises(ConfigurationError):
            padhye_bandwidth_bps(0.01, rtt=0.2, rto=0.0)
