"""The warm-start go/no-go cost model (warm_start_decision).

The model's one job: predict the *sign* of the sweep-time saving from
warm-starting, so harnesses can auto-skip the snapshot round-trip when
it cannot pay for itself (table5's measured warm-pass parity).
"""

import pytest

from repro.experiments.table5 import Table5Config, run_table5
from repro.obs.manifest import RunManifest
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    WarmStartDecision,
    warm_start_decision,
)


def _spec(tag):
    # digest() depends only on the spec's content, so distinct args =
    # distinct prefixes; no simulation runs in these tests.
    return PrefixSpec(fn="repro.experiments.figure5:prefix_world", args=(tag,))


def decide(cells, prefix_of, fraction, store):
    return warm_start_decision(
        cells, lambda c: _spec(prefix_of(c)), fraction, store, fingerprint="test"
    )


class TestDecision:
    def test_unique_prefixes_never_win_on_first_pass(self, tmp_path):
        # One cell per prefix: warm simulates each prefix exactly as
        # often as cold would, plus pays capture + restore overhead.
        store = SnapshotStore(tmp_path)
        decision = decide(list(range(4)), lambda c: c, 0.5, store)
        assert not decision.use_warm
        assert decision.predicted_saving < 0
        assert decision.missing == 4
        assert "no predicted win" in decision.reason

    def test_shared_prefix_with_meaningful_fraction_wins(self, tmp_path):
        store = SnapshotStore(tmp_path)
        decision = decide(list(range(10)), lambda c: "shared", 0.5, store)
        assert decision.use_warm
        assert decision.prefixes == 1
        assert decision.predicted_saving > 0

    def test_tiny_prefix_fraction_skips_even_when_shared(self, tmp_path):
        # The table5 shape: restore overhead alone eats a ~2% prefix.
        store = SnapshotStore(tmp_path)
        decision = decide(list(range(20)), lambda c: c % 10, 0.025, store)
        assert not decision.use_warm

    def test_zero_fraction_and_empty_sweep_skip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert not decide(list(range(5)), lambda c: "p", 0.0, store).use_warm
        assert not decide([], lambda c: "p", 0.5, store).use_warm

    def test_stored_prefixes_tip_the_balance(self, tmp_path, monkeypatch):
        # Same sweep, but every prefix already captured: no capture
        # cost, so a fraction that loses on the first pass wins on
        # replay.
        store = SnapshotStore(tmp_path)
        cells = list(range(3))  # one prefix each, fraction 0.5
        first = decide(cells, lambda c: c, 0.5, store)
        assert not first.use_warm
        monkeypatch.setattr(store, "lookup_prefix", lambda spec, fp=None: "deadbeef")
        replay = decide(cells, lambda c: c, 0.5, store)
        assert replay.use_warm
        assert replay.missing == 0

    def test_decision_is_a_frozen_record(self, tmp_path):
        decision = decide([1], lambda c: c, 0.5, SnapshotStore(tmp_path))
        assert isinstance(decision, WarmStartDecision)
        with pytest.raises(AttributeError):
            decision.use_warm = True


class TestHarnessIntegration:
    def test_table5_auto_skips_and_records_reason(self, tmp_path):
        # Default-shaped table5 grid (tiny prefix fraction): warm_start
        # =True falls back to the cold path, the manifest records why,
        # and no snapshots are captured.
        config = Table5Config(
            cases=(("reno", "rr"),), runs_per_case=2, sim_duration=20.0
        )
        store = SnapshotStore(tmp_path / "snaps")
        manifest = RunManifest.begin("table5")
        warm = run_table5(
            config,
            runner=SweepRunner(),
            warm_start=True,
            store=store,
            manifest=manifest,
        )
        assert manifest.warm_start_skipped is not None
        assert "no predicted win" in manifest.warm_start_skipped
        assert store.prefix_captures == 0
        cold = run_table5(config, runner=SweepRunner())
        assert warm.rows == cold.rows

    def test_force_bypasses_the_model(self, tmp_path):
        config = Table5Config(
            cases=(("reno", "rr"),), runs_per_case=2, sim_duration=20.0
        )
        store = SnapshotStore(tmp_path / "snaps")
        manifest = RunManifest.begin("table5")
        run_table5(
            config,
            runner=SweepRunner(),
            warm_start="force",
            store=store,
            manifest=manifest,
        )
        assert manifest.warm_start_skipped is None
        assert store.prefix_captures == 2
