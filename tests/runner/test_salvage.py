"""Crash-safe sweeps: incremental caching, salvage accounting, and the
deterministic re-raise.

The salvage contract (docs/PERFORMANCE.md): a raising — or dying —
worker loses only its own cell.  Every other cell still runs, is stored
to the cache the moment it completes, and only then is the lowest-index
failure re-raised with ``stats`` final.
"""

import os
import time

import pytest

from repro.runner import ResultCache, SweepRunner, TaskSpec
from repro.runner.pool import SweepObserver


def double(x):
    return 2 * x


def boom(x, bad):
    """Fails for ``x`` in ``bad``, doubles otherwise."""
    if x in bad:
        raise ValueError(f"boom {x}")
    return 2 * x


def die(x, bad, delay=0.0):
    """Kills its worker process outright for ``x`` in ``bad``."""
    if x in bad:
        time.sleep(delay)
        os._exit(13)
    return 2 * x


def _boom_specs(n, bad):
    return [
        TaskSpec(
            fn="tests.runner.test_salvage:boom",
            args=(i, tuple(bad)),
            label=f"boom {i}",
        )
        for i in range(n)
    ]


class TestSerialSalvage:
    def test_other_cells_run_and_cache_before_the_raise(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = SweepRunner(cache=cache)
        specs = _boom_specs(5, bad=(2,))
        with pytest.raises(ValueError, match="boom 2"):
            runner.map(specs)
        assert runner.stats.failed == 1
        assert runner.stats.salvaged == 4
        assert runner.stats.executed == 5
        for index, spec in enumerate(specs):
            hit, value = cache.lookup(spec)
            assert hit == (index != 2)
            if hit:
                assert value == 2 * index

    def test_repeat_sweep_replays_salvaged_cells(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = _boom_specs(5, bad=(2,))
        with pytest.raises(ValueError):
            SweepRunner(cache=cache).map(specs)
        rerun = SweepRunner(cache=cache)
        with pytest.raises(ValueError, match="boom 2"):
            rerun.map(specs)
        assert rerun.stats.cache_hits == 4
        assert rerun.stats.executed == 1

    def test_lowest_index_failure_is_raised(self):
        with pytest.raises(ValueError, match="boom 1"):
            SweepRunner().map(_boom_specs(5, bad=(1, 3)))

    def test_failure_records_carry_the_error(self):
        runner = SweepRunner()
        with pytest.raises(ValueError):
            runner.map(_boom_specs(3, bad=(1,)))
        records = runner.stats.records
        assert [r.error is not None for r in records] == [False, True, False]
        assert "boom 1" in records[1].error
        assert records[0].seconds is not None

    def test_clean_sweep_has_no_salvage(self):
        runner = SweepRunner()
        results = runner.map(_boom_specs(3, bad=()))
        assert results == [0, 2, 4]
        assert runner.stats.salvaged == 0
        assert runner.stats.failed == 0


class TestPoolSalvage:
    def test_other_cells_run_and_cache_before_the_raise(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = SweepRunner(jobs=3, cache=cache)
        specs = _boom_specs(6, bad=(4,))
        with pytest.raises(ValueError, match="boom 4"):
            runner.map(specs)
        assert runner.stats.failed == 1
        assert runner.stats.salvaged == 5
        for index, spec in enumerate(specs):
            hit, _ = cache.lookup(spec)
            assert hit == (index != 4)

    def test_lowest_index_failure_is_raised_at_any_jobs(self):
        for jobs in (1, 2, 4):
            with pytest.raises(ValueError, match="boom 1"):
                SweepRunner(jobs=jobs).map(_boom_specs(6, bad=(1, 5)))

    def test_worker_death_preserves_completed_cache_entries(self, tmp_path):
        # The dying cell sleeps long enough for every other cell to
        # finish first; each of those results must already be on disk
        # when the crash tears the pool down.
        cache = ResultCache(root=tmp_path)
        runner = SweepRunner(jobs=2, cache=cache)
        specs = [
            TaskSpec(
                fn="tests.runner.test_salvage:die",
                args=(i, (3,)),
                kwargs={"delay": 1.0},
                label=f"die {i}",
            )
            for i in range(4)
        ]
        with pytest.raises(Exception):  # BrokenProcessPool
            runner.map(specs)
        assert runner.stats.failed == 1
        assert runner.stats.salvaged == 3
        for index in range(3):
            hit, value = cache.lookup(specs[index])
            assert hit
            assert value == 2 * index
        hit, _ = cache.lookup(specs[3])
        assert not hit


class RecordingObserver(SweepObserver):
    def __init__(self):
        self.events = []

    def sweep_started(self, total, jobs):
        self.events.append(("sweep_started", total, jobs))

    def task_queued(self, index, spec):
        self.events.append(("task_queued", index))

    def task_cached(self, index, spec):
        self.events.append(("task_cached", index))

    def task_started(self, index, spec):
        self.events.append(("task_started", index))

    def task_finished(self, index, spec, seconds):
        self.events.append(("task_finished", index))

    def task_failed(self, index, spec, error):
        self.events.append(("task_failed", index))

    def sweep_finished(self, stats):
        self.events.append(("sweep_finished", stats.executed, stats.failed))


class ExplodingObserver(SweepObserver):
    def task_finished(self, index, spec, seconds):
        raise RuntimeError("observer bug")


class TestObserver:
    def test_lifecycle_events_in_order(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = _boom_specs(3, bad=())
        SweepRunner(cache=cache).map(specs[:1])  # pre-warm spec 0
        observer = RecordingObserver()
        runner = SweepRunner(cache=cache, observer=observer)
        runner.map(specs)
        assert observer.events == [
            ("sweep_started", 3, 1),
            ("task_cached", 0),
            ("task_queued", 1),
            ("task_queued", 2),
            ("task_started", 1),
            ("task_finished", 1),
            ("task_started", 2),
            ("task_finished", 2),
            ("sweep_finished", 2, 0),
        ]

    def test_failure_event_and_final_stats(self):
        observer = RecordingObserver()
        runner = SweepRunner(observer=observer)
        with pytest.raises(ValueError):
            runner.map(_boom_specs(2, bad=(0,)))
        assert ("task_failed", 0) in observer.events
        assert observer.events[-1] == ("sweep_finished", 2, 1)

    def test_raising_observer_is_disabled_not_fatal(self, capsys):
        runner = SweepRunner(observer=ExplodingObserver())
        results = runner.map(_boom_specs(3, bad=()))
        assert results == [0, 2, 4]
        assert runner.observer is None
        assert "observer failed" in capsys.readouterr().err

    def test_pool_path_fans_out_events(self):
        observer = RecordingObserver()
        runner = SweepRunner(jobs=2, observer=observer)
        runner.map(_boom_specs(4, bad=()))
        kinds = [event[0] for event in observer.events]
        assert kinds.count("task_finished") == 4
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
