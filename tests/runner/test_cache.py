"""Tests for the on-disk result cache and the code fingerprint."""

from repro.runner import ResultCache, TaskSpec, code_fingerprint


def spec(**kwargs):
    return TaskSpec(fn="repro.models.mathis:mathis_window", args=(0.02,), **kwargs)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        assert cache.lookup(spec()) == (False, None)
        cache.store(spec(), {"answer": 42})
        hit, value = cache.lookup(spec())
        assert hit and value == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_none_result_is_a_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        cache.store(spec(), None)
        hit, value = cache.lookup(spec())
        assert hit and value is None

    def test_miss_after_spec_change(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        cache.store(spec(), 1.0)
        changed = TaskSpec(fn="repro.models.mathis:mathis_window", args=(0.03,))
        hit, _ = cache.lookup(changed)
        assert not hit

    def test_miss_after_code_fingerprint_change(self, tmp_path):
        before = ResultCache(root=tmp_path, fingerprint="a" * 64)
        before.store(spec(), 1.0)
        after = ResultCache(root=tmp_path, fingerprint="b" * 64)
        hit, _ = after.lookup(spec())
        assert not hit
        # ... while the old code version still hits.
        assert ResultCache(root=tmp_path, fingerprint="a" * 64).lookup(spec())[0]

    def test_unpicklable_result_degrades_to_no_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        assert cache.store(spec(), lambda: None) is False
        assert cache.lookup(spec()) == (False, None)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        cache.store(spec(), 1.0)
        path = cache._path(spec())
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(spec())
        assert not hit


class TestCodeFingerprint:
    def test_deterministic_per_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        assert code_fingerprint(tmp_path) == code_fingerprint(tmp_path)

    def test_content_change_changes_fingerprint(self, tmp_path):
        # (two trees rather than an in-place edit: the fingerprint is
        # memoized per path for the life of the process)
        one = tmp_path / "one"
        two = tmp_path / "two"
        for root, body in [(one, "x = 1\n"), (two, "x = 2\n")]:
            root.mkdir()
            (root / "a.py").write_text(body)
        assert code_fingerprint(one) != code_fingerprint(two)

    def test_rename_changes_fingerprint(self, tmp_path):
        one = tmp_path / "one"
        two = tmp_path / "two"
        for root, name in [(one, "a.py"), (two, "b.py")]:
            root.mkdir()
            (root / name).write_text("x = 1\n")
        assert code_fingerprint(one) != code_fingerprint(two)

    def test_repo_fingerprint_is_memoized_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_golden_digest_change_changes_fingerprint(self, tmp_path):
        # Refreshing tests/golden/state_digests.json declares "behaviour
        # intentionally changed" and must invalidate cached results even
        # though no .py under the package root changed.
        roots = []
        for name, body in [("one", '{"reno": "a"}'), ("two", '{"reno": "b"}')]:
            root = tmp_path / name / "src" / "repro"
            root.mkdir(parents=True)
            (root / "a.py").write_text("x = 1\n")
            golden = tmp_path / name / "tests" / "golden"
            golden.mkdir(parents=True)
            (golden / "state_digests.json").write_text(body)
            roots.append(root)
        assert code_fingerprint(roots[0]) != code_fingerprint(roots[1])

    def test_reference_model_change_changes_fingerprint(self, tmp_path):
        # Regenerating the behavior-class reference model must
        # likewise invalidate cached results: identification verdicts
        # depend on the model bytes, which no .py file carries.
        roots = []
        for name, body in [("one", '{"kind": "a"}'), ("two", '{"kind": "b"}')]:
            root = tmp_path / name / "src" / "repro"
            (root / "ident").mkdir(parents=True)
            (root / "a.py").write_text("x = 1\n")
            (root / "ident" / "reference_model.json").write_text(body)
            roots.append(root)
        assert code_fingerprint(roots[0]) != code_fingerprint(roots[1])
