"""The warm-start contract: prefix specs, the prefix index, delta
storage in the snapshot store."""

import pytest

from repro.errors import SnapshotError
from repro.runner import PrefixSpec, SnapshotStore, step_until, warm_specs
from repro.runner.spec import TaskSpec
from repro.snapshot import Snapshot
from repro.snapshot.delta import DeltaInfo
from repro.snapshot.golden import build_golden_scenario


class CountingPrefix(PrefixSpec):
    """Counts how many times any instance actually simulates."""

    captures = 0

    def capture(self, label=""):
        type(self).captures += 1
        return super().capture(label)


def _prefix(variant="reno"):
    return CountingPrefix(
        fn="repro.snapshot.golden:build_golden_scenario",
        args=(variant,),
        label=f"golden prefix {variant}",
    )


def _snapshot(variant="reno", until=1.0):
    world = build_golden_scenario(variant)
    world.sim.run(until=until)
    return Snapshot.capture(world, label=f"{variant}@{until:g}")


class TestStepUntil:
    def test_stops_when_predicate_holds(self):
        world = build_golden_scenario("reno")
        sender = world.senders[1]
        assert step_until(world.sim, lambda: sender.maxseq >= 10, deadline=30.0)
        assert sender.maxseq >= 10

    def test_gives_up_at_deadline(self):
        world = build_golden_scenario("reno")
        assert not step_until(world.sim, lambda: False, step=0.5, deadline=2.0)
        assert world.sim.now >= 2.0


class TestEnsurePrefix:
    def test_captures_once_per_spec(self, tmp_path):
        store = SnapshotStore(tmp_path)
        before = CountingPrefix.captures
        first = store.ensure_prefix(_prefix(), fingerprint="a" * 64)
        second = store.ensure_prefix(_prefix(), fingerprint="a" * 64)
        assert first == second
        assert CountingPrefix.captures == before + 1
        assert store.contains(first)

    def test_recaptures_under_a_new_fingerprint(self, tmp_path):
        store = SnapshotStore(tmp_path)
        before = CountingPrefix.captures
        store.ensure_prefix(_prefix(), fingerprint="a" * 64)
        store.ensure_prefix(_prefix(), fingerprint="b" * 64)
        assert CountingPrefix.captures == before + 2

    def test_stale_index_entry_recaptures(self, tmp_path):
        store = SnapshotStore(tmp_path)
        digest = store.ensure_prefix(_prefix(), fingerprint="a" * 64)
        store.path_for(digest).unlink()
        again = store.ensure_prefix(_prefix(), fingerprint="a" * 64)
        assert again == digest
        assert store.contains(digest)


class TestWarmSpecs:
    def test_cells_share_prefix_captures(self, tmp_path):
        store = SnapshotStore(tmp_path)
        cells = [("reno", 1), ("reno", 2), ("sack", 1)]
        before = CountingPrefix.captures
        specs = warm_specs(
            cells,
            prefix_for=lambda cell: _prefix(cell[0]),
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.models.mathis:mathis_window",
                args=(0.02,),
                kwargs={"digest": digest, "cell": cell},
            ),
            store=store,
            fingerprint="a" * 64,
        )
        assert CountingPrefix.captures == before + 2  # one per variant
        assert len(specs) == len(cells)
        digests = [spec.kwargs["digest"] for spec in specs]
        assert digests[0] == digests[1] != digests[2]
        assert all(store.contains(d) for d in digests)


class TestParallelPrefixCapture:
    """Missing prefixes fan out over the runner's worker pool; captured
    snapshots must be byte-identical to serial captures."""

    def _warm(self, store, parallel=True):
        from repro.runner import SweepRunner

        cells = [("reno", 1), ("sack", 1), ("newreno", 1)]
        return warm_specs(
            cells,
            prefix_for=lambda cell: PrefixSpec(
                fn="repro.snapshot.golden:build_golden_scenario",
                args=(cell[0],),
                label=f"golden prefix {cell[0]}",
            ),
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.models.mathis:mathis_window",
                args=(0.02,),
                kwargs={"digest": digest, "cell": cell},
            ),
            store=store,
            fingerprint="a" * 64,
            runner=SweepRunner(jobs=2) if parallel else None,
        )

    def test_parallel_capture_fills_the_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        specs = self._warm(store)
        digests = {spec.kwargs["digest"] for spec in specs}
        assert len(digests) == 3
        assert all(store.contains(d) for d in digests)
        assert store.prefix_captures == 3
        assert store.prefix_hits == 0

    def test_parallel_matches_serial_digests(self, tmp_path):
        parallel_store = SnapshotStore(tmp_path / "par")
        serial_store = SnapshotStore(tmp_path / "ser")
        parallel = self._warm(parallel_store)
        serial = self._warm(serial_store, parallel=False)
        assert [s.kwargs["digest"] for s in parallel] == [
            s.kwargs["digest"] for s in serial
        ]

    def test_second_pass_hits_the_prefix_index(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = self._warm(store)
        again = self._warm(store)
        assert store.prefix_hits == 3
        assert store.prefix_captures == 3
        assert [s.kwargs["digest"] for s in again] == [
            s.kwargs["digest"] for s in first
        ]


class TestPutDelta:
    def test_fork_stored_as_delta_and_resolved(self, tmp_path):
        store = SnapshotStore(tmp_path)
        world = build_golden_scenario("rr")
        world.sim.run(until=2.0)
        base = Snapshot.capture(world, label="base")
        store.put(base)
        world.sim.run(until=6.0)
        fork = Snapshot.capture(world, label="fork")
        digest = store.put_delta(fork, base_digest=base.digest)
        assert digest == fork.digest
        assert store.delta_path_for(digest).exists()
        assert not store.path_for(digest).exists()
        assert store.get(digest).payload == fork.payload
        info = store.info(digest)
        assert isinstance(info, DeltaInfo)
        assert info.base_digest == base.digest

    def test_falls_back_to_full_when_delta_would_not_win(
        self, tmp_path, monkeypatch
    ):
        import repro.runner.warmstart as warmstart

        monkeypatch.setattr(warmstart, "should_fall_back", lambda *a: True)
        store = SnapshotStore(tmp_path)
        base = _snapshot(until=2.0)
        store.put(base)
        fork = _snapshot(until=6.0)
        store.put_delta(fork, base_digest=base.digest)
        assert store.path_for(fork.digest).exists()
        assert not store.delta_path_for(fork.digest).exists()

    def test_delta_chains_resolve(self, tmp_path):
        store = SnapshotStore(tmp_path)
        world = build_golden_scenario("newreno")
        snapshots = []
        for until in (2.0, 4.0, 6.0):
            world.sim.run(until=until)
            snapshots.append(Snapshot.capture(world, label=f"t={until:g}"))
        store.put(snapshots[0])
        store.put_delta(snapshots[1], base_digest=snapshots[0].digest)
        store.put_delta(snapshots[2], base_digest=snapshots[1].digest)
        assert store.get(snapshots[2].digest).payload == snapshots[2].payload

    def test_missing_base_falls_back_to_full(self, tmp_path):
        # Resilience contract: a fork whose base vanished (or was
        # quarantined mid-flight) is stored in full, not refused.
        store = SnapshotStore(tmp_path)
        snapshot = _snapshot()
        digest = store.put_delta(snapshot, base_digest="f" * 64)
        assert digest == snapshot.digest
        assert store.path_for(digest).exists()
        assert not store.delta_path_for(digest).exists()
        assert store.get(digest).payload == snapshot.payload
