"""Runner correctness: parallel output is bit-identical to serial, and
the cache replays sweeps across runs and invalidates honestly.

These are the determinism guarantees docs/PERFORMANCE.md commits to.
The grids are shrunk (fewer cells, shorter transfers) to keep the
suite fast; the cells exercise the same code paths as the full-scale
campaigns.
"""

import dataclasses

from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.runner import ResultCache, SweepRunner, TaskSpec, run_tasks


def quick_fig5():
    config = Figure5Config()
    config.transfer_packets = 300
    config.sim_duration = 30.0
    return config


def quick_chaos():
    return ChaosConfig(seeds=1, variants=("rr",), transfer_packets=400)


def fig5_rows(result):
    return [dataclasses.asdict(row) for row in result.rows]


def chaos_cells(result):
    return [
        (
            run.variant,
            run.seed_index,
            run.plan,
            run.completed,
            run.delivered,
            run.duplicates,
            run.timeouts,
            run.finish_time,
            run.records_checked,
            run.survived,
        )
        for run in result.runs
    ]


class TestParallelDeterminism:
    def test_figure5_jobs4_bit_identical_to_serial(self):
        config = quick_fig5()
        serial = run_figure5(config, runner=SweepRunner(jobs=1))
        parallel = run_figure5(config, runner=SweepRunner(jobs=4))
        assert fig5_rows(serial) == fig5_rows(parallel)

    def test_chaos_campaign_jobs4_bit_identical_to_serial(self):
        config = quick_chaos()
        serial = run_chaos(config, runner=SweepRunner(jobs=1))
        parallel = run_chaos(config, runner=SweepRunner(jobs=4))
        assert chaos_cells(serial) == chaos_cells(parallel)
        assert serial.baselines == parallel.baselines

    def test_results_come_back_in_spec_order(self):
        specs = [
            TaskSpec(fn="repro.models.mathis:mathis_window", args=(p,))
            for p in (0.05, 0.01, 0.2, 0.001)
        ]
        assert run_tasks(specs, jobs=4) == [spec.run() for spec in specs]


class TestCacheReplay:
    def test_repeat_sweep_is_pure_cache_replay(self, tmp_path):
        config = quick_fig5()
        runner = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        cold = run_figure5(config, runner=runner)
        assert runner.stats.executed == len(cold.rows)
        assert runner.stats.cache_hits == 0
        warm = run_figure5(config, runner=runner)
        assert runner.stats.executed == 0
        assert runner.stats.cache_hits == len(cold.rows)
        assert fig5_rows(cold) == fig5_rows(warm)

    def test_cache_shared_between_runner_instances(self, tmp_path):
        config = quick_fig5()
        run_figure5(config, runner=SweepRunner(jobs=1, cache=ResultCache(root=tmp_path)))
        replay = SweepRunner(jobs=4, cache=ResultCache(root=tmp_path))
        run_figure5(config, runner=replay)
        assert replay.stats.executed == 0

    def test_spec_change_misses(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        run_figure5(quick_fig5(), runner=runner)
        changed = quick_fig5()
        changed.transfer_packets += 50
        run_figure5(changed, runner=runner)
        assert runner.stats.cache_hits == 0
        assert runner.stats.executed == len(changed.drop_counts) * len(
            changed.variants
        )

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        config = quick_fig5()
        run_figure5(
            config,
            runner=SweepRunner(jobs=1, cache=ResultCache(root=tmp_path, fingerprint="a" * 64)),
        )
        stale = SweepRunner(
            jobs=1, cache=ResultCache(root=tmp_path, fingerprint="b" * 64)
        )
        run_figure5(config, runner=stale)
        assert stale.stats.cache_hits == 0
        assert stale.stats.executed > 0
