"""Unit tests for TaskSpec canonicalization, digests and resolution."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.figure5 import Figure5Config
from repro.runner import TaskSpec, canonicalize, resolve


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize(0.25) == 0.25
        assert canonicalize("x") == "x"
        assert canonicalize(None) is None
        assert canonicalize(True) is True

    def test_sequences_normalize_to_lists(self):
        assert canonicalize((1, 2)) == canonicalize([1, 2])

    def test_dataclass_is_tagged_and_field_addressed(self):
        out = canonicalize(TcpConfig())
        assert out["__dataclass__"].endswith("TcpConfig")
        assert "mss_bytes" in out["fields"]

    def test_dict_keys_sorted(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]

    def test_unserializable_rejected(self):
        with pytest.raises(ConfigurationError):
            canonicalize(lambda: None)


class TestDigest:
    def test_stable_across_instances(self):
        a = TaskSpec(fn="m:f", args=(1, Figure5Config()))
        b = TaskSpec(fn="m:f", args=(1, Figure5Config()))
        assert a.digest() == b.digest()

    def test_label_excluded(self):
        a = TaskSpec(fn="m:f", args=(1,), label="x")
        b = TaskSpec(fn="m:f", args=(1,), label="y")
        assert a.digest() == b.digest()

    def test_argument_change_changes_digest(self):
        a = TaskSpec(fn="m:f", args=(1,))
        b = TaskSpec(fn="m:f", args=(2,))
        assert a.digest() != b.digest()

    def test_config_field_change_changes_digest(self):
        changed = Figure5Config()
        changed.transfer_packets += 1
        a = TaskSpec(fn="m:f", args=(Figure5Config(),))
        b = TaskSpec(fn="m:f", args=(changed,))
        assert a.digest() != b.digest()

    def test_fn_change_changes_digest(self):
        assert TaskSpec(fn="m:f").digest() != TaskSpec(fn="m:g").digest()


class TestResolveAndRun:
    def test_resolve_module_attr(self):
        import math

        assert resolve("math:hypot") is math.hypot

    def test_resolve_dotted_attr(self):
        from repro.faults.campaign import CampaignRunner

        assert resolve("repro.faults.campaign:CampaignRunner.plan_for") is (
            CampaignRunner.plan_for
        )

    def test_run_invokes_with_args_and_kwargs(self):
        spec = TaskSpec(
            fn="repro.models.mathis:mathis_window", args=(0.01,)
        )
        from repro.models.mathis import mathis_window

        assert spec.run() == mathis_window(0.01)

    def test_malformed_path_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve("no.colon.here")
