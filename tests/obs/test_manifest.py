"""RunManifest schema: round-trip, rejection, atomic layout."""

import json

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.obs import (
    MANIFEST_FILENAME,
    MANIFEST_FORMAT,
    RunManifest,
    artifact_root,
    new_run_id,
    runs_root,
)


def _manifest():
    manifest = RunManifest.begin(
        "fig5", args={"quick": True, "jobs": 2}, fingerprint="f" * 64
    )
    manifest.describe_harness("fig5", config=TcpConfig(), seed=7, warm_start=False)
    manifest.total = 3
    manifest.cached = 1
    manifest.executed = 2
    manifest.wall_seconds = 1.25
    manifest.tasks.append(
        {
            "sweep": 0,
            "index": 0,
            "label": "fig5 rr",
            "digest": "ab" * 32,
            "cached": True,
            "seconds": None,
            "error": None,
        }
    )
    manifest.finish()
    return manifest


class TestRoundTrip:
    def test_json_round_trip_preserves_all_fields(self):
        manifest = _manifest()
        again = RunManifest.from_json(manifest.to_json())
        assert again == manifest

    def test_write_then_load(self, tmp_path):
        manifest = _manifest()
        path = manifest.write(tmp_path)
        assert path == tmp_path / "runs" / manifest.run_id / MANIFEST_FILENAME
        assert RunManifest.load(path) == manifest

    def test_describe_harness_canonicalizes_config(self):
        manifest = _manifest()
        config_args = manifest.args["config"]
        assert config_args["__dataclass__"] == "repro.config.TcpConfig"
        assert manifest.seed == 7
        assert manifest.args["warm_start"] is False
        assert manifest.args["quick"] is True  # begin() args survive

    def test_cache_hit_rate(self):
        manifest = _manifest()
        assert manifest.cache_hit_rate == pytest.approx(1 / 3)
        payload = json.loads(manifest.to_json())
        assert payload["cache_hit_rate"] == pytest.approx(0.3333)

    def test_outcome_lifecycle(self):
        manifest = RunManifest.begin("fig6", fingerprint="f" * 64)
        assert manifest.outcome == "running"
        assert manifest.finished_at is None
        manifest.finish()
        assert manifest.outcome == "ok"
        assert manifest.finished_at is not None


class TestRejection:
    def test_unknown_format_rejected(self):
        payload = json.loads(_manifest().to_json())
        payload["format"] = MANIFEST_FORMAT + 1
        with pytest.raises(ConfigurationError, match="unsupported manifest format"):
            RunManifest.from_json(json.dumps(payload))

    def test_missing_format_rejected(self):
        payload = json.loads(_manifest().to_json())
        del payload["format"]
        with pytest.raises(ConfigurationError, match="unsupported manifest format"):
            RunManifest.from_json(json.dumps(payload))

    def test_unknown_fields_rejected(self):
        payload = json.loads(_manifest().to_json())
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown fields.*surprise"):
            RunManifest.from_json(json.dumps(payload))


class TestRoots:
    def test_artifact_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "elsewhere"))
        assert artifact_root() == tmp_path / "elsewhere"
        assert runs_root() == tmp_path / "elsewhere" / "runs"

    def test_run_ids_are_distinct_and_prefixed(self):
        first, second = new_run_id("fig5"), new_run_id("fig5")
        assert first.startswith("fig5-")
        assert first != second

    def test_write_defaults_to_artifact_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "out"))
        manifest = _manifest()
        path = manifest.write()
        assert path.is_file()
        assert path.parent.parent == tmp_path / "out" / "runs"
