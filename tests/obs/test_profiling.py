"""Per-task cProfile capture and the merged hot-function ranking."""

import pstats

from repro.obs import hot_functions, hot_functions_report, merged_stats, profile_paths
from repro.runner import SweepRunner, TaskSpec


def spin(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _specs(n):
    return [
        TaskSpec(fn="tests.obs.test_profiling:spin", args=(5000 + i,))
        for i in range(n)
    ]


class TestCapture:
    def test_serial_sweep_writes_one_pstats_per_task(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        runner = SweepRunner(profile_dir=profile_dir)
        specs = _specs(3)
        runner.map(specs)
        paths = profile_paths(profile_dir)
        assert len(paths) == 3
        for index, (path, spec) in enumerate(zip(paths, specs)):
            assert path.name == f"task-{index:04d}-{spec.digest()[:12]}.pstats"
            pstats.Stats(str(path))  # loadable standard dump

    def test_pool_sweep_writes_captures_too(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        SweepRunner(jobs=2, profile_dir=profile_dir).map(_specs(4))
        assert len(profile_paths(profile_dir)) == 4

    def test_cached_tasks_are_not_profiled(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        specs = _specs(2)
        SweepRunner(cache=cache).map(specs)
        profile_dir = tmp_path / "profiles"
        SweepRunner(cache=cache, profile_dir=profile_dir).map(specs)
        assert profile_paths(profile_dir) == []


class TestMerge:
    def test_hot_functions_rank_the_workload(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        SweepRunner(profile_dir=profile_dir).map(_specs(3))
        rows = hot_functions(profile_dir, top=5)
        assert rows
        assert any("spin" in row.location for row in rows)
        self_times = [row.internal_seconds for row in rows]
        assert self_times == sorted(self_times, reverse=True)
        top_spin = next(row for row in rows if "spin" in row.location)
        assert top_spin.calls == 3  # merged across the three captures

    def test_report_mentions_capture_count_and_table(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        SweepRunner(profile_dir=profile_dir).map(_specs(2))
        report = hot_functions_report(profile_dir, top=5)
        assert "merged profile over 2 task capture(s)" in report
        assert "hot function (merged)" in report

    def test_empty_dir_degrades_gracefully(self, tmp_path):
        assert merged_stats(tmp_path) is None
        assert hot_functions(tmp_path) == []
        assert "no profile captures" in hot_functions_report(tmp_path)
