"""RunTelemetry: the per-run orchestrator wiring runner → manifest,
heartbeat, progress, and profiles."""

import io

import pytest

from repro.obs import MANIFEST_FILENAME, RunManifest, RunTelemetry, read_events
from repro.runner import ResultCache, SweepRunner, TaskSpec


def _specs(n, fail_at=None):
    fn = "tests.runner.test_salvage:boom"
    bad = (fail_at,) if fail_at is not None else ()
    return [TaskSpec(fn=fn, args=(i, bad), label=f"cell {i}") for i in range(n)]


def _telemetry(tmp_path, **kwargs):
    kwargs.setdefault("stream", io.StringIO())
    kwargs.setdefault("root", tmp_path)
    return RunTelemetry("fig5", args={"jobs": 1}, **kwargs)


class TestRunLifecycle:
    def test_finish_writes_manifest_and_heartbeat(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        runner = SweepRunner()
        telemetry.attach(runner)
        assert runner.observer is telemetry
        runner.map(_specs(3))
        telemetry.detach(runner)
        assert runner.observer is None
        path = telemetry.finish()

        assert path == telemetry.run_dir / MANIFEST_FILENAME
        manifest = RunManifest.load(path)
        assert manifest.harness == "fig5"
        assert manifest.outcome == "ok"
        assert manifest.args == {"jobs": 1}
        assert manifest.total == 3
        assert manifest.executed == 3
        assert manifest.cached == 0
        assert len(manifest.tasks) == 3
        assert manifest.tasks[0]["label"] == "cell 0"
        assert manifest.wall_seconds > 0

        events = read_events(telemetry.run_dir / "events.jsonl")
        assert [e["event"] for e in events][0] == "sweep_started"
        assert events[-1]["event"] == "sweep_finished"

    def test_manifest_accumulates_across_map_calls(self, tmp_path):
        # Warm-start harnesses run prefix captures then cells: both
        # sweeps must land in one manifest.
        telemetry = _telemetry(tmp_path)
        runner = SweepRunner(cache=ResultCache(root=tmp_path / "cache"))
        telemetry.attach(runner)
        runner.map(_specs(2))
        runner.map(_specs(2))  # replayed from cache
        telemetry.detach(runner)
        manifest = RunManifest.load(telemetry.finish())
        assert manifest.total == 4
        assert manifest.executed == 2
        assert manifest.cached == 2
        assert manifest.cache_hit_rate == 0.5
        assert {t["sweep"] for t in manifest.tasks} == {0, 1}

    def test_abort_records_the_failure(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        runner = SweepRunner()
        telemetry.attach(runner)
        with pytest.raises(ValueError):
            runner.map(_specs(3, fail_at=1))
        try:
            raise ValueError("boom 1")
        except ValueError as error:
            path = telemetry.abort(error)
        finally:
            telemetry.detach(runner)
        manifest = RunManifest.load(path)
        assert manifest.outcome.startswith("failed: ValueError")
        assert manifest.failed == 1
        assert manifest.salvaged == 2
        errors = [t["error"] for t in manifest.tasks if t["error"]]
        assert errors and "boom 1" in errors[0]

    def test_profile_capture_and_report(self, tmp_path):
        telemetry = _telemetry(tmp_path, profile=True)
        runner = SweepRunner()
        telemetry.attach(runner)
        assert runner.profile_dir == telemetry.profile_dir
        runner.map(_specs(2))
        telemetry.detach(runner)
        assert runner.profile_dir is None
        telemetry.finish()
        report = telemetry.profile_report(top=5)
        assert "merged profile over 2 task capture(s)" in report
        assert "hot function (merged)" in report

    def test_no_profile_report_when_not_profiling(self, tmp_path):
        telemetry = _telemetry(tmp_path)
        assert telemetry.profile_report() is None

    def test_progress_suppressed_on_pipe_stream(self, tmp_path):
        stream = io.StringIO()
        telemetry = _telemetry(tmp_path, stream=stream)
        runner = SweepRunner()
        telemetry.attach(runner)
        runner.map(_specs(2))
        telemetry.detach(runner)
        telemetry.finish()
        assert stream.getvalue() == ""

    def test_progress_forced_on(self, tmp_path):
        stream = io.StringIO()
        telemetry = _telemetry(tmp_path, stream=stream, progress=True)
        runner = SweepRunner()
        telemetry.attach(runner)
        runner.map(_specs(2))
        telemetry.detach(runner)
        telemetry.finish()
        assert "[fig5] 2/2 done" in stream.getvalue()
