"""Heartbeat log: flushed-per-event JSONL, torn-tail tolerance."""

from repro.obs import HeartbeatLog, read_events
from repro.runner import SweepRunner, TaskSpec


def _specs(n):
    return [
        TaskSpec(fn="repro.models.mathis:mathis_window", args=(0.01 * (i + 1),))
        for i in range(n)
    ]


class TestHeartbeat:
    def test_every_lifecycle_event_is_logged(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = HeartbeatLog(path)
        runner = SweepRunner(observer=log)
        runner.map(_specs(2))
        log.close()
        events = read_events(path)
        kinds = [event["event"] for event in events]
        assert kinds == [
            "sweep_started",
            "task_queued",
            "task_queued",
            "task_started",
            "task_finished",
            "task_started",
            "task_finished",
            "sweep_finished",
        ]
        finished = [e for e in events if e["event"] == "task_finished"]
        assert all("digest" in e and "label" in e and e["seconds"] >= 0 for e in finished)
        assert events[-1]["executed"] == 2
        assert all(e["sweep"] == 0 for e in events)

    def test_sweep_counter_spans_map_calls(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = HeartbeatLog(path)
        runner = SweepRunner(observer=log)
        runner.map(_specs(1))
        runner.map(_specs(1))
        log.close()
        sweeps = {event["sweep"] for event in read_events(path)}
        assert sweeps == {0, 1}

    def test_log_survives_before_close(self, tmp_path):
        # Flushed per event: a killed process leaves a readable log.
        path = tmp_path / "events.jsonl"
        log = HeartbeatLog(path)
        SweepRunner(observer=log).map(_specs(1))
        assert len(read_events(path)) == 5  # no close() needed
        log.close()

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = HeartbeatLog(path)
        SweepRunner(observer=log).map(_specs(1))
        log.close()
        whole = len(read_events(path))
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"t": 1.0, "event": "task_sta')  # killed mid-write
        assert len(read_events(path)) == whole

    def test_missing_log_reads_as_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []
