"""Progress line: TTY auto-suppression and rendering."""

import io

from repro.obs import ProgressLine
from repro.runner import SweepRunner, TaskSpec


def _specs(n):
    return [
        TaskSpec(fn="repro.models.mathis:mathis_window", args=(0.01 * (i + 1),))
        for i in range(n)
    ]


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestSuppression:
    def test_silent_when_stream_is_not_a_tty(self):
        stream = io.StringIO()
        progress = ProgressLine("fig5", stream=stream)
        SweepRunner(observer=progress).map(_specs(2))
        progress.close()
        assert stream.getvalue() == ""

    def test_draws_when_stream_is_a_tty(self):
        stream = FakeTty()
        progress = ProgressLine("fig5", stream=stream)
        SweepRunner(observer=progress).map(_specs(2))
        progress.close()
        out = stream.getvalue()
        assert "\r" in out
        assert "[fig5] 2/2 done" in out
        assert out.endswith("\n")

    def test_enabled_false_overrides_a_tty(self):
        stream = FakeTty()
        progress = ProgressLine("fig5", stream=stream, enabled=False)
        SweepRunner(observer=progress).map(_specs(1))
        progress.close()
        assert stream.getvalue() == ""

    def test_enabled_true_overrides_a_pipe(self):
        stream = io.StringIO()
        progress = ProgressLine("fig5", stream=stream, enabled=True)
        SweepRunner(observer=progress).map(_specs(1))
        progress.close()
        assert "[fig5] 1/1 done" in stream.getvalue()


class TestRendering:
    def test_counts_and_cached(self):
        progress = ProgressLine("tab5", stream=io.StringIO(), enabled=True)
        progress.sweep_started(4, 2)
        progress.task_cached(0, _specs(1)[0])
        progress.task_finished(1, _specs(1)[0], 2.0)
        line = progress.render()
        assert line.startswith("[tab5] 2/4 done")
        assert "1 cached" in line
        assert "2 workers" in line

    def test_eta_extrapolates_from_completed_tasks(self):
        progress = ProgressLine("tab5", stream=io.StringIO(), enabled=True)
        progress.sweep_started(4, 2)
        assert progress.eta_seconds() is None  # nothing to extrapolate yet
        progress.task_finished(0, _specs(1)[0], 2.0)
        progress.task_finished(1, _specs(1)[0], 4.0)
        # mean 3s × 2 remaining / 2 workers
        assert progress.eta_seconds() == 3.0
        assert "ETA 3s" in progress.render()

    def test_failures_are_called_out(self):
        progress = ProgressLine("fig6", stream=io.StringIO(), enabled=True)
        progress.sweep_started(2, 1)
        progress.task_failed(0, _specs(1)[0], ValueError("x"))
        assert "1 FAILED" in progress.render()
