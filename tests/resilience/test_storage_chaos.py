"""Storage chaos: truncation, bit-flips, foreign formats, self-healing.

Every corruption is injected on disk, then the read path is exercised:
corrupt entries must be quarantined (moved aside with a structured
record, never deleted, never returned), foreign-format files must be
left in place and degraded to recompute, and prefixes must self-heal
from the ``prefix-meta`` reverse index.
"""

import pickle

import pytest

from repro.errors import SnapshotError, SnapshotFormatError
from repro.runner import (
    PrefixSpec,
    ResultCache,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    read_quarantine,
)
from repro.runner.cache import CACHE_MAGIC, frame_entry
from repro.runner.pool import SweepObserver
from repro.snapshot.core import SNAPSHOT_FORMAT


def _spec(fn, *args, label=""):
    return TaskSpec(fn=f"tests.resilience.helpers:{fn}", args=args, label=label)


def _entry_path(cache, spec):
    return cache.root / cache.fingerprint[:16] / f"{spec.digest()}.pkl"


def _prefix_spec(variant="rr"):
    return PrefixSpec(
        fn="tests.resilience.helpers:build_stalled_world",
        args=(variant, 400, 0.5),
        label=f"stalled prefix {variant}",
    )


class TestCacheChaos:
    def test_truncated_entry_is_quarantined_on_first_read(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        spec = _spec("run_metrics_cell", "reno", 2.0)
        result = SweepRunner(cache=cache).map([spec])[0]
        path = _entry_path(cache, spec)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])

        hit, value = cache.lookup(spec)
        assert not hit and value is None
        assert not path.exists()  # moved, not left to be re-missed
        assert (cache.quarantine_dir / path.name).exists()
        (record,) = read_quarantine(cache.quarantine_dir)
        assert record.kind == "cache-entry"
        assert record.digest == spec.digest()
        assert cache.corrupt == 1

        # The sweep recomputes and repopulates; the healed entry hits.
        assert SweepRunner(cache=cache).map([spec]) == [result]
        hit, value = cache.lookup(spec)
        assert hit and value == result

    def test_bitflipped_payload_is_quarantined(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        spec = _spec("run_metrics_cell", "sack", 2.0)
        SweepRunner(cache=cache).map([spec])
        path = _entry_path(cache, spec)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF  # flip a bit deep in the pickle body
        path.write_bytes(bytes(data))

        hit, _ = cache.lookup(spec)
        assert not hit
        assert cache.corrupt == 1
        assert (cache.quarantine_dir / path.name).exists()

    def test_unframed_legacy_entry_is_a_miss(self, tmp_path):
        # A pre-resilience (or foreign) entry without the checksum frame
        # never crashes the sweep; it reads as corruption and is moved.
        cache = ResultCache(root=tmp_path / "cache")
        spec = _spec("run_metrics_cell", "tahoe", 2.0)
        path = _entry_path(cache, spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"canonical": spec.canonical(), "result": 1}))
        hit, _ = cache.lookup(spec)
        assert not hit

    def test_verify_entry_accepts_good_rejects_bad(self, tmp_path):
        good = tmp_path / "good.pkl"
        good.write_bytes(frame_entry(pickle.dumps({"canonical": "{}", "result": 1})))
        ResultCache.verify_entry(good)

        bad_shape = tmp_path / "shape.pkl"
        bad_shape.write_bytes(frame_entry(pickle.dumps([1, 2, 3])))
        with pytest.raises(ValueError, match="wrong shape"):
            ResultCache.verify_entry(bad_shape)

        unframed = tmp_path / "legacy.pkl"
        unframed.write_bytes(pickle.dumps({"canonical": "{}", "result": 1}))
        with pytest.raises(ValueError, match="unframed or foreign"):
            ResultCache.verify_entry(unframed)

    def test_frame_magic_is_versioned(self):
        assert CACHE_MAGIC.startswith(b"repro-cache:")


class TestStoreFailureChaos:
    def test_unpicklable_result_degrades_with_one_event(self, tmp_path, capsys):
        events = []

        class Recording(SweepObserver):
            def cache_store_failed(self, index, spec, reason):
                events.append((index, reason))

        cache = ResultCache(root=tmp_path / "cache")
        runner = SweepRunner(cache=cache, observer=Recording())
        (result,) = runner.map([_spec("unpicklable_result_cell")])
        assert callable(result)  # the sweep itself still succeeded
        assert runner.stats.cache_store_failures == 1
        assert cache.store_failures == 1
        assert "does not pickle" in events[0][1]
        assert "caching is degraded" in capsys.readouterr().err


class TestSnapshotChaos:
    def test_corrupt_snapshot_quarantined_on_get(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        digest = store.ensure_prefix(_prefix_spec())
        path = store.path_for(digest)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

        assert not store.intact(digest)
        assert not path.exists()
        records = read_quarantine(store.quarantine_dir)
        assert any(r.kind == "snapshot" and r.digest == digest for r in records)

    def test_foreign_format_left_in_place(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        digest = "ab" * 32
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "magic": "repro-snapshot",
            "format": SNAPSHOT_FORMAT + 1,
            "digest": digest,
        }
        import json

        path.write_bytes(json.dumps(header).encode() + b"\n" + b"x" * 32)
        assert not store.intact(digest)  # cross-version: degrade ...
        assert path.exists()  # ... but never quarantine a foreign file
        with pytest.raises(SnapshotFormatError):
            store.get(digest)
        assert read_quarantine(store.quarantine_dir) == []

    def test_lookup_prefix_misses_on_corrupt_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        spec = _prefix_spec()
        digest = store.ensure_prefix(spec)
        assert store.lookup_prefix(spec) == digest
        store.path_for(digest).write_bytes(b"garbage")
        assert store.lookup_prefix(spec) is None  # miss → recapture path

    def test_corrupt_delta_falls_back_in_chain(self, tmp_path):
        from repro.snapshot.core import Snapshot
        from repro.snapshot.golden import build_golden_scenario

        store = SnapshotStore(tmp_path / "snaps")
        world = build_golden_scenario("rr")
        world.sim.run(until=2.0)
        base = Snapshot.capture(world, label="base")
        store.put(base)
        world.sim.run(until=6.0)
        tip = Snapshot.capture(world, label="tip")
        store.put_delta(tip, base_digest=base.digest)
        delta_path = store.delta_path_for(tip.digest)
        assert delta_path.exists()
        data = bytearray(delta_path.read_bytes())
        data[-5] ^= 0xFF
        delta_path.write_bytes(bytes(data))

        assert not store.intact(tip.digest)
        records = read_quarantine(store.quarantine_dir)
        assert any(r.kind == "delta" for r in records)
        # The base survives untouched: the chain break is contained.
        assert store.intact(base.digest)


class TestPrefixSelfHealing:
    def test_load_prefix_heals_from_prefix_meta(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        spec = _prefix_spec()
        digest = store.ensure_prefix(spec)

        healthy = load_prefix(digest, store.root)
        baseline = (healthy.sim.now, healthy.sim.events_processed)

        # Corrupt the stored snapshot, then load again: fetch_prefix
        # must recompute from the recorded PrefixSpec, verify the digest
        # matches, re-store, and hand back a working world.
        store.path_for(digest).write_bytes(b"garbage")
        healed = load_prefix(digest, store.root)
        assert (healed.sim.now, healed.sim.events_processed) == baseline
        assert store.intact(digest)  # the store itself was repaired

    def test_heal_refuses_a_drifted_recompute(self, tmp_path, monkeypatch):
        store = SnapshotStore(tmp_path / "snaps")
        spec = _prefix_spec()
        digest = store.ensure_prefix(spec)
        store.path_for(digest).write_bytes(b"garbage")
        # Poison the recorded spec so the recompute cannot match.
        meta_path = store._prefix_meta_path(digest)
        import json

        payload = json.loads(meta_path.read_text())
        drifted = _prefix_spec(variant="reno")
        payload["spec"] = drifted.canonical()
        meta_path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="drifted"):
            load_prefix(digest, store.root)

    def test_missing_meta_raises_the_original_error(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        spec = _prefix_spec()
        digest = store.ensure_prefix(spec)
        store.path_for(digest).write_bytes(b"garbage")
        store._prefix_meta_path(digest).unlink()
        with pytest.raises(SnapshotError):
            load_prefix(digest, store.root)
