"""Worker-crash chaos: SIGKILLed workers, pool respawn, bit-identity.

The acceptance scenario of the resilience layer: a worker dies by
SIGKILL mid-task, the pool is respawned, the task retried, and the
sweep's results are bit-identical to an undisturbed serial run.
"""

import io

import pytest

from repro.errors import WorkerCrashError
from repro.obs import RunManifest, RunTelemetry, read_events
from repro.runner import RetryPolicy, SweepRunner, TaskSpec, read_quarantine


def _spec(fn, *args, label=""):
    return TaskSpec(fn=f"tests.resilience.helpers:{fn}", args=args, label=label)


def _clean_specs():
    return [
        _spec("run_metrics_cell", "reno", 2.0),
        _spec("run_metrics_cell", "rr", 2.0),
        _spec("run_metrics_cell", "sack", 2.0),
    ]


def _telemetry(tmp_path):
    return RunTelemetry("chaos", root=tmp_path / "runs", stream=io.StringIO())


def test_sigkilled_cell_retries_bit_identical_to_serial(tmp_path):
    sentinel = tmp_path / "sigkill.sentinel"
    chaos_specs = [
        _spec("sigkill_metrics_cell", "reno", str(sentinel), 2.0),
        _spec("run_metrics_cell", "rr", 2.0),
        _spec("run_metrics_cell", "sack", 2.0),
    ]
    runner = SweepRunner(
        jobs=2, retry_policy=RetryPolicy(max_retries=2, base_delay=0.01)
    )
    chaos = runner.map(chaos_specs)
    serial = SweepRunner().map(_clean_specs())
    assert chaos == serial
    assert sentinel.exists()
    assert runner.stats.failed == 0
    # A spontaneous pool break charges every in-flight task (the dying
    # cell plus possibly a bystander), so >= 1 rather than == 1.
    assert runner.stats.retried >= 1


def test_crash_without_retry_budget_quarantines(tmp_path):
    # Needs >= 2 tasks: a lone task runs in-process (workers = min(jobs,
    # tasks)) where a self-SIGKILL would take down the caller.
    sentinel = tmp_path / "sigkill.sentinel"
    qdir = tmp_path / "quarantine"
    runner = SweepRunner(jobs=2, quarantine_dir=qdir)
    with pytest.raises(WorkerCrashError):
        runner.map(
            [
                _spec("sigkill_metrics_cell", "tahoe", str(sentinel), 2.0),
                _spec("run_metrics_cell", "rr", 2.0),
            ]
        )
    # The dying cell is charged; an in-flight bystander may be too (a
    # spontaneous pool break cannot tell offender from victim).
    records = read_quarantine(qdir)
    assert records and all(r.kind == "task" for r in records)
    assert runner.stats.quarantined == len(records)


def test_telemetry_surfaces_retries_in_manifest_and_heartbeat(tmp_path):
    sentinel = tmp_path / "sigkill.sentinel"
    chaos_specs = [
        _spec("sigkill_metrics_cell", "newreno", str(sentinel), 2.0),
        _spec("run_metrics_cell", "rr", 2.0),
    ]
    runner = SweepRunner(
        jobs=2, retry_policy=RetryPolicy(max_retries=2, base_delay=0.01)
    )
    telemetry = _telemetry(tmp_path)
    telemetry.attach(runner)
    runner.map(chaos_specs)
    telemetry.detach(runner)
    manifest = RunManifest.load(telemetry.finish())
    assert manifest.retried >= 1
    assert manifest.quarantined == 0
    assert manifest.failed == 0
    events = read_events(telemetry.run_dir / "events.jsonl")
    kinds = {event["event"] for event in events}
    assert "task_retried" in kinds
    finished = next(e for e in events if e["event"] == "sweep_finished")
    assert finished["retried"] >= 1


def test_telemetry_quarantine_lands_in_run_dir(tmp_path):
    # RunTelemetry wires the runner's quarantine_dir into the run
    # artifact directory and marks the failed manifest entry.
    sentinel = tmp_path / "stall.sentinel"
    runner = SweepRunner(jobs=2, task_timeout=1.0)
    telemetry = _telemetry(tmp_path)
    telemetry.attach(runner)
    assert runner.quarantine_dir == telemetry.quarantine_dir
    try:
        with pytest.raises(Exception) as excinfo:
            runner.map(
                [
                    _spec("stall_cell", str(sentinel), label="hung"),
                    _spec("run_metrics_cell", "rr", 2.0),
                ]
            )
        path = telemetry.abort(excinfo.value)
    finally:
        telemetry.detach(runner)
    assert runner.quarantine_dir is None  # detach resets the wiring
    (qrecord,) = read_quarantine(telemetry.quarantine_dir)
    assert qrecord.kind == "task" and qrecord.label == "hung"
    manifest = RunManifest.load(path)
    assert manifest.quarantined == 1
    (failed_entry,) = [t for t in manifest.tasks if t["error"]]
    assert failed_entry["quarantined"] is True
    events = read_events(telemetry.run_dir / "events.jsonl")
    kinds = {event["event"] for event in events}
    assert "task_quarantined" in kinds
