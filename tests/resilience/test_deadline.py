"""Task deadlines: hung workers are killed, charged, and quarantined."""

import pytest

from repro.errors import ConfigurationError, TaskTimeoutError
from repro.runner import RetryPolicy, SweepRunner, TaskSpec, read_quarantine
from repro.runner.pool import SweepObserver


def _spec(fn, *args, label=""):
    return TaskSpec(fn=f"tests.resilience.helpers:{fn}", args=args, label=label)


class RecordingObserver(SweepObserver):
    def __init__(self):
        self.events = []

    def task_retried(self, index, spec, attempt, delay, error):
        self.events.append(("retried", index, type(error).__name__))

    def task_quarantined(self, index, spec, record):
        self.events.append(("quarantined", index, record.kind))

    def task_failed(self, index, spec, error):
        self.events.append(("failed", index, type(error).__name__))

    def task_finished(self, index, spec, seconds):
        self.events.append(("finished", index))


def test_negative_timeout_is_rejected():
    with pytest.raises(ConfigurationError):
        SweepRunner(task_timeout=0.0)


def test_stalled_task_is_killed_quarantined_and_bystander_salvaged(tmp_path):
    sentinel = tmp_path / "stall.sentinel"
    qdir = tmp_path / "quarantine"
    observer = RecordingObserver()
    runner = SweepRunner(
        jobs=2,
        task_timeout=1.0,
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.01),
        quarantine_dir=qdir,
        observer=observer,
    )
    specs = [
        _spec("stall_cell", str(sentinel), label="hung"),
        _spec("run_metrics_cell", "reno", 2.0),
    ]
    with pytest.raises(TaskTimeoutError):
        runner.map(specs)
    # The offender was executed twice (original + one retry), both killed.
    assert sentinel.read_text() == "2"
    assert runner.stats.retried == 1
    assert runner.stats.quarantined == 1
    assert runner.stats.salvaged == 1
    record = runner.stats.records[0]
    assert record.attempts == 2 and record.quarantined
    (qrecord,) = read_quarantine(qdir)
    assert qrecord.kind == "task" and qrecord.label == "hung"
    assert ("finished", 1) in observer.events  # bystander salvaged
    assert ("failed", 0, "TaskTimeoutError") in observer.events


def test_stall_once_recovers_under_retry(tmp_path):
    sentinel = tmp_path / "stall-once.sentinel"
    runner = SweepRunner(
        jobs=2,
        task_timeout=1.0,
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.01),
    )
    results = runner.map([_spec("stall_once_cell", str(sentinel))])
    assert results == ["recovered"]
    assert runner.stats.retried == 1
    assert runner.stats.failed == 0
    assert runner.stats.quarantined == 0


def test_jobs_one_with_timeout_still_enforces_deadline(tmp_path):
    # A deadline needs a process boundary even at jobs=1, so the runner
    # routes through a one-worker pool instead of running in-process.
    sentinel = tmp_path / "stall.sentinel"
    runner = SweepRunner(jobs=1, task_timeout=1.0)
    with pytest.raises(TaskTimeoutError):
        runner.map([_spec("stall_cell", str(sentinel))])
    assert sentinel.read_text() == "1"
    assert runner.stats.quarantined == 1  # deadline kills always quarantine


def test_fast_tasks_unaffected_by_deadline(tmp_path):
    runner = SweepRunner(jobs=2, task_timeout=30.0)
    clean = SweepRunner().map([_spec("run_metrics_cell", "rr", 2.0)])
    deadlined = runner.map([_spec("run_metrics_cell", "rr", 2.0)])
    assert deadlined == clean
    assert runner.stats.retried == 0 and runner.stats.failed == 0
