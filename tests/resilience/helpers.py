"""Picklable fault-injection cells for the infra-chaos suite.

These are module-level functions (so :class:`~repro.runner.spec.
TaskSpec` can name them) that misbehave in controlled ways: die by
SIGKILL, stall past a deadline, or fail until a sentinel file appears.
The sentinel-file pattern makes "flaky" deterministic per *attempt*:
the first execution creates the sentinel and then misbehaves, so every
retry finds the sentinel and succeeds — letting tests assert both the
failure handling and the bit-identity of the retried result.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.snapshot.golden import build_golden_scenario


def run_metrics_cell(variant: str, until: float = 6.0) -> dict:
    """A well-behaved deterministic cell: build a golden scenario, run
    it, and return scalar metrics (the payload used for bit-identity
    assertions across retries / pool kills / serial runs)."""
    world = build_golden_scenario(variant)
    world.sim.run(until=until)
    sender = world.senders[1]
    return {
        "variant": variant,
        "snd_una": sender.snd_una,
        "cwnd": sender.cwnd,
        "events": world.sim.events_processed,
        "timeouts": sender.timeouts,
    }


def flaky_metrics_cell(variant: str, sentinel: str, until: float = 6.0) -> dict:
    """Raise on the first execution (before creating the sentinel the
    retry will find), succeed identically afterwards."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("tried", encoding="utf-8")
        raise RuntimeError(f"injected first-attempt failure ({variant})")
    return run_metrics_cell(variant, until=until)


def sigkill_metrics_cell(variant: str, sentinel: str, until: float = 6.0) -> dict:
    """SIGKILL the worker mid-task on the first execution, succeed
    identically on retry — the paper-grid analogue of a node crash."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("tried", encoding="utf-8")
        os.kill(os.getpid(), signal.SIGKILL)
    return run_metrics_cell(variant, until=until)


def stall_cell(sentinel: str, seconds: float = 3600.0) -> str:
    """Record the attempt, then stall far past any test deadline."""
    path = Path(sentinel)
    count = int(path.read_text()) if path.exists() else 0
    path.write_text(str(count + 1), encoding="utf-8")
    time.sleep(seconds)
    return "never reached under a deadline"


def stall_once_cell(sentinel: str, seconds: float = 3600.0) -> str:
    """Stall on the first execution only; succeed on retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("tried", encoding="utf-8")
        time.sleep(seconds)
    return "recovered"


def always_fails(message: str = "injected failure") -> None:
    raise RuntimeError(message)


def build_stalled_world(variant: str = "rr", packets: int = 400, advance_to: float = 0.5):
    """A transfer whose forward path goes dark at t=1.0, advanced to a
    capture point *before* the outage (the watchdog-under-restore
    prefix)."""
    from repro.experiments.common import FlowSpec, build_dumbbell_scenario
    from repro.net.packet import set_uid_state
    from repro.net.topology import DumbbellParams

    set_uid_state(1)
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
    )
    scenario.sim.schedule(1.0, scenario.dumbbell.forward_link.set_down)
    scenario.sim.run(until=advance_to)
    return scenario


def watchdog_metrics(world) -> dict:
    """Arm a fresh watchdog on ``world`` and run to the trip (or 600s);
    the returned scalars pin down the whole abort behavior."""
    from repro.sim.watchdog import Watchdog

    watchdog = Watchdog(
        world.sim,
        senders=world.senders,
        stall_timeout=5.0,
        check_interval=0.5,
    ).arm()
    world.sim.run(until=600.0)
    report = watchdog.report
    return {
        "triggered": watchdog.triggered,
        "reason": report.reason if report else None,
        "t": world.sim.now,
        "events": world.sim.events_processed,
        "stalled": report.stalled_flows if report else [],
        "stop_reason": world.sim.stop_reason,
    }


def watchdog_cell_cold() -> dict:
    """Cold path of the watchdog-under-restore contract."""
    return watchdog_metrics(build_stalled_world())


def watchdog_cell_from_snapshot(
    digest: str, store_root: str, sentinel: str = ""
) -> dict:
    """Warm path: restore the stalled prefix and re-arm the watchdog.
    With a ``sentinel``, the first attempt fails before restoring, so a
    retry exercises restore-under-retry."""
    from repro.runner.warmstart import load_prefix

    if sentinel:
        path = Path(sentinel)
        if not path.exists():
            path.write_text("tried", encoding="utf-8")
            raise RuntimeError("injected failure before restore")
    return watchdog_metrics(load_prefix(digest, store_root))


def unpicklable_result_cell() -> object:
    """Succeeds, but returns something the cache cannot pickle."""
    return lambda: None  # pragma: no cover - never called
