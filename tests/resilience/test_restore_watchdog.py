"""Watchdog and invariant state across snapshot restore under retry.

Satellite contract: a watchdog armed on a *restored* world must behave
bit-identically to one armed on a cold world at the same point — the
stall clock, the trip report, and the invariant monitors all survive
the checkpoint/restore/retry cycle.
"""

from repro.runner import (
    PrefixSpec,
    RetryPolicy,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
)
from repro.sim.invariants import InvariantSuite

from tests.resilience.helpers import (
    build_stalled_world,
    watchdog_cell_cold,
    watchdog_metrics,
)


def _prefix_spec():
    return PrefixSpec(
        fn="tests.resilience.helpers:build_stalled_world",
        args=("rr", 400, 0.5),
        label="stalled prefix rr",
    )


def _warm_spec(digest, store_root, sentinel=""):
    return TaskSpec(
        fn="tests.resilience.helpers:watchdog_cell_from_snapshot",
        args=(digest, str(store_root), sentinel),
        label="watchdog warm",
    )


def test_watchdog_trips_identically_cold_vs_restored(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    digest = store.ensure_prefix(_prefix_spec())

    cold = watchdog_cell_cold()
    warm = SweepRunner().map([_warm_spec(digest, store.root)])[0]
    assert cold["triggered"] is True
    assert cold["reason"] == "stall"
    assert cold["stalled"] == [1]
    assert cold["stop_reason"] == "watchdog: stall"
    assert warm == cold  # full dict equality: time, events, report


def test_watchdog_after_restore_under_retry_matches_cold(tmp_path):
    # The first attempt dies *before* restoring; the retry restores and
    # arms the watchdog — state must still match the cold run exactly.
    store = SnapshotStore(tmp_path / "snaps")
    digest = store.ensure_prefix(_prefix_spec())
    sentinel = tmp_path / "retry.sentinel"

    runner = SweepRunner(retry_policy=RetryPolicy(max_retries=1, base_delay=0.01))
    warm = runner.map([_warm_spec(digest, store.root, str(sentinel))])[0]
    assert runner.stats.retried == 1
    assert warm == watchdog_cell_cold()


def test_invariant_monitors_see_identical_streams_cold_vs_restored(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    digest = store.ensure_prefix(_prefix_spec())

    cold_world = build_stalled_world()
    cold_suite = InvariantSuite.standard().install(cold_world.dumbbell.net.trace)
    cold = watchdog_metrics(cold_world)

    warm_world = load_prefix(digest, store.root)
    warm_suite = InvariantSuite.standard().install(warm_world.dumbbell.net.trace)
    warm = watchdog_metrics(warm_world)

    assert warm == cold
    # Both suites watched the identical post-restore event stream and
    # neither raised: invariants hold through checkpoint/restore.
    assert cold_suite.records_seen == warm_suite.records_seen > 0
