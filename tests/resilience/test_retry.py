"""RetryPolicy determinism and the retry path of the dispatch loop."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import RetryPolicy, SweepRunner, TaskSpec, read_quarantine
from repro.runner.pool import SweepObserver


def _spec(fn, *args, label=""):
    return TaskSpec(fn=f"tests.resilience.helpers:{fn}", args=args, label=label)


class RecordingObserver(SweepObserver):
    def __init__(self):
        self.events = []

    def task_retried(self, index, spec, attempt, delay, error):
        self.events.append(("retried", index, attempt, delay))

    def task_quarantined(self, index, spec, record):
        self.events.append(("quarantined", index, record))

    def task_failed(self, index, spec, error):
        self.events.append(("failed", index))


class TestPolicyDeterminism:
    def test_schedule_is_a_pure_function_of_the_digest(self):
        policy = RetryPolicy(max_retries=4, base_delay=0.1, jitter=0.5)
        digest = _spec("run_metrics_cell", "reno").digest()
        assert policy.schedule(digest) == policy.schedule(digest)
        assert len(policy.schedule(digest)) == 4

    def test_jitter_bounds_and_exponential_shape(self):
        policy = RetryPolicy(max_retries=6, base_delay=0.1, max_delay=100.0, jitter=0.3)
        digest = "ab" * 32
        for attempt, delay in enumerate(policy.schedule(digest), start=1):
            raw = 0.1 * 2 ** (attempt - 1)
            assert raw * 0.7 <= delay <= raw * 1.3

    def test_different_tasks_get_decorrelated_jitter(self):
        policy = RetryPolicy(max_retries=1, base_delay=1.0, jitter=0.5)
        delays = {policy.delay(f"{i:064x}", 1) for i in range(16)}
        assert len(delays) > 8  # thundering-herd decorrelation

    def test_max_delay_caps_the_backoff(self):
        policy = RetryPolicy(max_retries=8, base_delay=1.0, max_delay=2.5, jitter=0.0)
        assert policy.schedule("cd" * 32)[-1] == 2.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.5, jitter=0.0)
        assert policy.schedule("ef" * 32) == [0.5, 1.0, 2.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"jitter": 1.0},
            {"jitter": -0.2},
        ],
    )
    def test_invalid_policy_is_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestSerialRetry:
    def test_flaky_cell_recovers_bit_identically(self, tmp_path):
        sentinel = tmp_path / "flaky.sentinel"
        observer = RecordingObserver()
        runner = SweepRunner(
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.01),
            observer=observer,
        )
        flaky = runner.map(
            [_spec("flaky_metrics_cell", "reno", str(sentinel), 2.0)]
        )
        clean = SweepRunner().map([_spec("run_metrics_cell", "reno", 2.0)])
        assert flaky == clean
        assert runner.stats.retried == 1
        assert runner.stats.failed == 0
        record = runner.stats.records[0]
        assert record.attempts == 2 and not record.quarantined
        assert [e[0] for e in observer.events] == ["retried"]

    def test_budget_exhaustion_fails_and_quarantines(self, tmp_path):
        qdir = tmp_path / "quarantine"
        runner = SweepRunner(
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.001),
            quarantine_dir=qdir,
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            runner.map([_spec("always_fails", label="poison")])
        assert runner.stats.retried == 2
        assert runner.stats.quarantined == 1
        record = runner.stats.records[0]
        assert record.attempts == 3 and record.quarantined
        (qrecord,) = read_quarantine(qdir)
        assert qrecord.kind == "task"
        assert qrecord.attempts == 3
        assert len(qrecord.errors) == 3
        assert qrecord.label == "poison"

    def test_no_policy_means_fail_fast_without_quarantine(self):
        runner = SweepRunner()
        with pytest.raises(RuntimeError):
            runner.map([_spec("always_fails")])
        assert runner.stats.retried == 0
        assert runner.stats.quarantined == 0
        assert not runner.stats.records[0].quarantined


class TestParallelRetry:
    def test_parallel_retry_matches_serial_bit_for_bit(self, tmp_path):
        sentinel = tmp_path / "flaky.sentinel"
        specs = [
            _spec("flaky_metrics_cell", "newreno", str(sentinel), 2.0),
            _spec("run_metrics_cell", "sack", 2.0),
            _spec("run_metrics_cell", "tahoe", 2.0),
        ]
        runner = SweepRunner(
            jobs=2, retry_policy=RetryPolicy(max_retries=2, base_delay=0.01)
        )
        parallel = runner.map(specs)
        serial = SweepRunner().map(
            [
                _spec("run_metrics_cell", "newreno", 2.0),
                _spec("run_metrics_cell", "sack", 2.0),
                _spec("run_metrics_cell", "tahoe", 2.0),
            ]
        )
        assert parallel == serial
        assert runner.stats.retried >= 1
        assert runner.stats.failed == 0

    def test_retried_result_is_cached_like_any_other(self, tmp_path):
        sentinel = tmp_path / "flaky.sentinel"
        from repro.runner import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        spec = _spec("flaky_metrics_cell", "rr", str(sentinel), 2.0)
        first = SweepRunner(
            cache=cache, retry_policy=RetryPolicy(max_retries=1, base_delay=0.01)
        ).map([spec])
        replay_runner = SweepRunner(cache=cache)
        replay = replay_runner.map([spec])
        assert replay == first
        assert replay_runner.stats.cache_hits == 1
