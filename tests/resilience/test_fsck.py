"""The storage fsck sweep and its CLI entry point."""

import json
import pickle

from repro.experiments.cli import fsck_cli
from repro.runner import (
    PrefixSpec,
    ResultCache,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    fsck,
    read_quarantine,
)
from repro.runner.warmstart import SNAPSHOT_SUBDIR


def _spec(variant):
    return TaskSpec(
        fn="tests.resilience.helpers:run_metrics_cell", args=(variant, 2.0)
    )


def _prefix_spec(variant="rr"):
    return PrefixSpec(
        fn="tests.resilience.helpers:build_stalled_world",
        args=(variant, 400, 0.5),
        label=f"stalled prefix {variant}",
    )


def _populate(root):
    """A small real store: two cache entries + one prefix snapshot."""
    cache = ResultCache(root=root)
    SweepRunner(cache=cache).map([_spec("reno"), _spec("rr")])
    store = SnapshotStore(root / SNAPSHOT_SUBDIR)
    digest = store.ensure_prefix(_prefix_spec())
    return cache, store, digest


def test_clean_store_reports_clean(tmp_path):
    _populate(tmp_path / "cache")
    report = fsck(cache_root=tmp_path / "cache")
    assert report.clean
    assert report.scanned >= 4  # 2 cache entries + 1 snap + 1 index entry
    assert report.ok == report.scanned
    assert "0 issue(s)" in report.summary()


def test_dry_run_reports_but_touches_nothing(tmp_path):
    cache, store, digest = _populate(tmp_path / "cache")
    snap_path = store.path_for(digest)
    snap_path.write_bytes(b"garbage")
    entry = next((cache.root / cache.fingerprint[:16]).glob("*.pkl"))
    entry.write_bytes(b"also garbage")

    report = fsck(cache_root=tmp_path / "cache", repair=False)
    assert not report.clean
    assert report.repaired == 0
    assert all(issue.action == "reported" for issue in report.issues)
    # Nothing moved: the corrupt files are still exactly where they were.
    assert snap_path.exists() and entry.exists()
    assert read_quarantine(store.quarantine_dir) == []
    assert read_quarantine(cache.quarantine_dir) == []


def test_repair_quarantines_corruption_and_removes_dangling_index(tmp_path):
    cache, store, digest = _populate(tmp_path / "cache")
    store.path_for(digest).write_bytes(b"garbage")
    entry = next((cache.root / cache.fingerprint[:16]).glob("*.pkl"))
    data = bytearray(entry.read_bytes())
    data[-3] ^= 0xFF
    entry.write_bytes(bytes(data))

    report = fsck(cache_root=tmp_path / "cache")
    kinds = {(i.kind, i.action) for i in report.issues}
    assert ("cache-entry", "quarantined") in kinds
    assert ("snapshot", "quarantined") in kinds
    # The prefix-index entry pointing at the quarantined snapshot is
    # dangling now and must be removed so the next sweep recaptures.
    assert ("prefix-index", "removed") in kinds
    assert report.repaired == len(report.issues) == 3
    assert not entry.exists()
    assert not store.path_for(digest).exists()

    # A second pass over the repaired store is clean.
    assert fsck(cache_root=tmp_path / "cache").clean


def test_foreign_entries_are_counted_but_left(tmp_path):
    cache, store, _ = _populate(tmp_path / "cache")
    legacy = cache.root / cache.fingerprint[:16] / ("ab" * 32 + ".pkl")
    legacy.write_bytes(pickle.dumps({"canonical": "{}", "result": 0}))

    report = fsck(cache_root=tmp_path / "cache")
    assert report.clean
    assert report.foreign == 1
    assert legacy.exists()


def test_broken_delta_chain_is_quarantined(tmp_path):
    from repro.snapshot.core import Snapshot
    from repro.snapshot.golden import build_golden_scenario

    root = tmp_path / "cache"
    store = SnapshotStore(root / SNAPSHOT_SUBDIR)
    world = build_golden_scenario("sack")
    world.sim.run(until=2.0)
    base = Snapshot.capture(world, label="base")
    store.put(base)
    world.sim.run(until=6.0)
    tip = Snapshot.capture(world, label="tip")
    store.put_delta(tip, base_digest=base.digest)
    store.path_for(base.digest).unlink()  # sever the chain

    report = fsck(cache_root=root)
    (issue,) = report.issues
    assert issue.kind == "delta" and "base chain broken" in issue.problem
    assert issue.action == "quarantined"


def test_rebuild_recomputes_prefix_from_meta(tmp_path):
    root = tmp_path / "cache"
    _, store, digest = _populate(root)
    store.path_for(digest).write_bytes(b"garbage")

    report = fsck(cache_root=root, rebuild=True)
    assert report.rebuilt == 1
    assert any(i.kind == "prefix" and i.action == "rebuilt" for i in report.issues)
    # The healed snapshot round-trips: same digest, intact again.
    assert store.intact(digest)


class TestFsckCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        _populate(tmp_path / "cache")
        code = fsck_cli(["--cache-root", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "fsck" in out and "0 issue(s)" in out

    def test_repair_exit_zero_dry_run_exit_one(self, tmp_path, capsys):
        _, store, digest = _populate(tmp_path / "cache")
        store.path_for(digest).write_bytes(b"garbage")
        assert fsck_cli(["--cache-root", str(tmp_path / "cache"), "--dry-run"]) == 1
        # The dry run left the corruption; a repair pass fixes it.
        assert fsck_cli(["--cache-root", str(tmp_path / "cache")]) == 0
        assert fsck_cli(["--cache-root", str(tmp_path / "cache")]) == 0
        capsys.readouterr()

    def test_main_dispatches_fsck(self, tmp_path, capsys):
        from repro.experiments.cli import main

        _populate(tmp_path / "cache")
        code = main(["fsck", "--cache-root", str(tmp_path / "cache")])
        assert code == 0
        assert "fsck" in capsys.readouterr().out


def test_manifest_records_fsck_counters_roundtrip(tmp_path):
    # Older manifests (no resilience fields) still load: defaults apply.
    from repro.obs import RunManifest

    manifest = RunManifest.begin("fig5", fingerprint="f" * 64)
    payload = json.loads(manifest.to_json())
    for key in ("retried", "quarantined", "cache_store_failures"):
        payload.pop(key, None)
    stripped = tmp_path / "manifest.json"
    stripped.write_text(json.dumps(payload))
    loaded = RunManifest.load(stripped)
    assert loaded.retried == 0
    assert loaded.quarantined == 0
    assert loaded.cache_store_failures == 0
