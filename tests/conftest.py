"""Shared test fixtures and helpers.

The TCP unit tests drive senders directly — a :class:`StubHost`
captures outgoing packets and ACKs are fed by hand — so each state
transition can be asserted without a network in between.  Integration
tests use the real dumbbell via :func:`repro.experiments.common.
build_dumbbell_scenario`.
"""

from __future__ import annotations

from typing import List, Optional, Type

import pytest

from repro.config import TcpConfig
from repro.net.packet import Packet, SackBlock, ack_packet
from repro.sim.engine import Simulator
from repro.tcp.base import TcpSender


class StubHost:
    """Captures everything a sender transmits."""

    def __init__(self, name: str = "S1"):
        self.name = name
        self.sent: List[Packet] = []

    def send(self, packet: Packet) -> None:
        self.sent.append(packet)

    # --- helpers for assertions -------------------------------------
    def data_seqs(self) -> List[int]:
        return [p.seqno for p in self.sent if p.is_data]

    def new_data_seqs(self) -> List[int]:
        return [p.seqno for p in self.sent if p.is_data and not p.is_retransmit]

    def retransmit_seqs(self) -> List[int]:
        return [p.seqno for p in self.sent if p.is_data and p.is_retransmit]

    def clear(self) -> None:
        self.sent.clear()


class SenderHarness:
    """A sender wired to a StubHost with manual ACK injection."""

    def __init__(
        self,
        sender_cls: Type[TcpSender],
        config: Optional[TcpConfig] = None,
        flow_id: int = 1,
    ):
        self.sim = Simulator()
        self.config = config or TcpConfig()
        self.host = StubHost()
        self.sender = sender_cls(self.sim, flow_id, "K1", config=self.config)
        self.sender.attach(self.host)

    def start(self) -> None:
        self.sender.start()

    def ack(self, ackno: int, sacks=None) -> None:
        """Deliver a cumulative ACK (with optional SACK blocks) to the
        sender."""
        blocks = [SackBlock(a, b) for a, b in (sacks or [])]
        packet = ack_packet(self.sender.flow_id, "K1", "S1", ackno, sack_blocks=blocks)
        self.sender.receive(packet)

    def dupacks(self, ackno: int, count: int, sacks=None) -> None:
        for _ in range(count):
            self.ack(ackno, sacks=sacks)

    def advance(self, seconds: float) -> None:
        """Advance simulated time (fires pending timers)."""
        self.sim.run(until=self.sim.now + seconds)


@pytest.fixture(autouse=True)
def _isolated_artifact_dir(tmp_path, monkeypatch):
    """Point run-telemetry output (manifests, heartbeats, chaos dumps)
    at a per-test directory, so tests exercising the CLI or the obs
    layer never write into the repo checkout or a CI artifact tree."""
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def harness_factory():
    """Factory fixture: ``harness_factory(SenderCls, config=...)``."""
    return SenderHarness
