"""Tests for the workload generators."""

import pytest

from repro.app.workload import OnOffSource, PoissonTransfers
from repro.errors import ConfigurationError
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.factory import make_connection


def make_world(n_pairs=10, buffer_packets=50):
    sim = Simulator()
    bell = Dumbbell(sim, DumbbellParams(n_pairs=n_pairs, buffer_packets=buffer_packets))
    return sim, bell


class TestPoissonTransfers:
    def test_generates_requested_count(self):
        sim, bell = make_world()
        workload = PoissonTransfers(
            sim, bell, "rr", arrival_rate=5.0, size_packets=10,
            max_transfers=6, rng=RngStream(1, "arrivals"),
        )
        sim.run(until=300.0)
        assert len(workload.records) == 6

    def test_all_transfers_complete_on_clean_path(self):
        sim, bell = make_world()
        workload = PoissonTransfers(
            sim, bell, "newreno", arrival_rate=2.0, size_packets=15,
            max_transfers=5, rng=RngStream(2, "arrivals"),
        )
        sim.run(until=300.0)
        assert workload.completion_ratio() == 1.0
        assert all(r.delay > 0 for r in workload.completed)

    def test_arrivals_are_spread_in_time(self):
        sim, bell = make_world()
        workload = PoissonTransfers(
            sim, bell, "rr", arrival_rate=1.0, size_packets=5,
            max_transfers=5, rng=RngStream(3, "arrivals"),
        )
        sim.run(until=300.0)
        starts = [r.start_time for r in workload.records]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)  # no simultaneous launches

    def test_size_sampler(self):
        sim, bell = make_world()
        workload = PoissonTransfers(
            sim, bell, "rr", arrival_rate=5.0,
            size_sampler=lambda rng: rng.randint(3, 7),
            max_transfers=5, rng=RngStream(4, "arrivals"),
        )
        sim.run(until=300.0)
        assert all(3 <= r.size_packets <= 7 for r in workload.records)

    def test_mean_and_percentile_delay(self):
        sim, bell = make_world()
        workload = PoissonTransfers(
            sim, bell, "rr", arrival_rate=5.0, size_packets=10,
            max_transfers=4, rng=RngStream(5, "arrivals"),
        )
        sim.run(until=300.0)
        mean = workload.mean_delay()
        p90 = workload.percentile_delay(0.9)
        assert mean is not None and p90 is not None
        assert p90 >= workload.percentile_delay(0.1)

    def test_too_few_host_pairs_rejected(self):
        sim, bell = make_world(n_pairs=2)
        with pytest.raises(ConfigurationError):
            PoissonTransfers(sim, bell, "rr", arrival_rate=1.0, max_transfers=5)

    def test_invalid_rate_rejected(self):
        sim, bell = make_world()
        with pytest.raises(ConfigurationError):
            PoissonTransfers(sim, bell, "rr", arrival_rate=0.0, max_transfers=2)

    def test_determinism(self):
        def run(seed):
            sim, bell = make_world()
            workload = PoissonTransfers(
                sim, bell, "rr", arrival_rate=3.0, size_packets=8,
                max_transfers=5, rng=RngStream(seed, "arrivals"),
            )
            sim.run(until=300.0)
            return [(r.start_time, r.complete_time) for r in workload.records]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestOnOffSource:
    def test_generates_multiple_bursts(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "rr", 1, bell.sender(1), bell.receiver(1))
        source = OnOffSource(
            sim, sender, RngStream(1, "onoff"),
            mean_on_packets=20, mean_off_seconds=0.2,
        )
        sim.run(until=20.0)
        assert source.bursts >= 3
        assert sender.snd_una > 20  # data flowed across bursts

    def test_off_periods_pause_transmission(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        OnOffSource(
            sim, sender, RngStream(2, "onoff"),
            mean_on_packets=5, mean_off_seconds=2.0,
        )
        sim.run(until=1.0)
        sent_early = sender.packets_sent
        # During a long off period nothing new goes out.
        sim.run(until=1.5)
        assert sender.packets_sent - sent_early <= 10

    def test_validation(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "rr", 1, bell.sender(1), bell.receiver(1))
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, RngStream(1), mean_on_packets=0)
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, RngStream(1), mean_off_seconds=0.0)


# Run in fresh interpreters by TestCrossProcessDeterminism: builds the
# Poisson workload (or on/off source) with a fixed seed and prints a
# transcript of everything observable.
_DETERMINISM_SCRIPT = """
import sys
from repro.app.workload import OnOffSource, PoissonTransfers
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.factory import make_connection

kind = sys.argv[1]
sim = Simulator()
bell = Dumbbell(sim, DumbbellParams(n_pairs=6, buffer_packets=50))
if kind == "poisson":
    workload = PoissonTransfers(
        sim, bell, "rr", arrival_rate=4.0, size_packets=12,
        max_transfers=5, rng=RngStream(33, "arrivals"),
    )
    sim.run(until=200.0)
    for r in workload.records:
        print(r.flow_id, repr(r.start_time), r.size_packets,
              repr(r.complete_time), r.timeouts, r.retransmits)
else:
    sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
    source = OnOffSource(
        sim, sender, RngStream(5, "onoff"),
        mean_on_packets=20, mean_off_seconds=0.3,
    )
    sim.run(until=30.0)
    print(source.bursts, sender.snd_una, repr(sim.now), sim.events_processed)
"""


class TestCrossProcessDeterminism:
    """Same seed, two fresh interpreters -> byte-identical transcripts."""

    def _transcript(self, kind):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(root)
        # Different hash seeds per process: determinism must not lean
        # on dict/set iteration luck.
        env["PYTHONHASHSEED"] = {"poisson": "101", "onoff": "202"}[kind]
        result = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT, kind],
            capture_output=True, text=True, env=env, check=True,
        )
        env["PYTHONHASHSEED"] = "999"
        second = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT, kind],
            capture_output=True, text=True, env=env, check=True,
        )
        return result.stdout, second.stdout

    def test_poisson_transfers_identical_across_processes(self):
        first, second = self._transcript("poisson")
        assert first == second
        assert len(first.splitlines()) == 5

    def test_onoff_source_identical_across_processes(self):
        first, second = self._transcript("onoff")
        assert first == second


class TestDegenerateOnOffPeriods:
    def test_zero_mean_off_rejected(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, RngStream(1, "x"), mean_off_seconds=0.0)

    def test_negative_mean_off_rejected(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, RngStream(1, "x"), mean_off_seconds=-1.0)

    def test_zero_mean_on_rejected(self):
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, sender, RngStream(1, "x"), mean_on_packets=0)

    def test_tiny_mean_on_still_sends_whole_bursts(self):
        """Even when the exponential draw rounds to zero, every ON
        period offers at least one packet (no silent empty bursts)."""
        sim, bell = make_world(n_pairs=1)
        sender, _ = make_connection(sim, "newreno", 1, bell.sender(1), bell.receiver(1))
        source = OnOffSource(
            sim, sender, RngStream(9, "tiny"),
            mean_on_packets=1, mean_off_seconds=0.05,
        )
        sim.run(until=10.0)
        assert source.bursts > 1
        assert sender.snd_una >= source.bursts
