"""Named size/arrival samplers: seeded, picklable, validated.

These are the callables :mod:`repro.scenes` stores inside SceneSpecs;
they must survive pickling (worker dispatch, snapshots) and reproduce
exactly from an equal RngStream.
"""

import pickle

import pytest

from repro.app.workload import (
    FixedSize,
    JitteredArrivals,
    LognormalSizes,
    ParetoSizes,
    PoissonArrivals,
    StaggeredArrivals,
)
from repro.errors import ConfigurationError
from repro.sim.rng import RngStream


def test_fixed_size():
    assert FixedSize(10)(RngStream(1)) == 10
    assert FixedSize()(RngStream(1)) is None  # infinite backlog
    with pytest.raises(ConfigurationError):
        FixedSize(0)


def test_pareto_sizes_floor_and_tail():
    sampler = ParetoSizes(mean_packets=100.0, shape=1.5, min_packets=2)
    rng = RngStream(3, "sizes")
    draws = [sampler(rng) for _ in range(4000)]
    assert min(draws) >= 2
    mean = sum(draws) / len(draws)
    assert 50 < mean < 400  # heavy tail: generous band around the mean
    assert max(draws) > 500  # ... and the tail actually shows up


def test_lognormal_sizes_mean():
    sampler = LognormalSizes(mean_packets=80.0, sigma=1.0)
    rng = RngStream(4, "sizes")
    draws = [sampler(rng) for _ in range(4000)]
    mean = sum(draws) / len(draws)
    assert 60 < mean < 100
    assert min(draws) >= 1


def test_poisson_arrivals_monotone():
    times = PoissonArrivals(rate=10.0)(RngStream(5, "arr"), 50)
    assert len(times) == 50
    assert times == sorted(times)
    assert all(t > 0 for t in times)
    assert 0.05 < times[-1] / 50 < 0.2  # mean gap near 1/rate


def test_staggered_and_jittered():
    assert StaggeredArrivals(0.5)(RngStream(1), 4) == [0.0, 0.5, 1.0, 1.5]
    jittered = JitteredArrivals(0.3)(RngStream(2, "j"), 100)
    assert all(0.0 <= t <= 0.3 for t in jittered)
    assert JitteredArrivals(0.0)(RngStream(2), 3) == [0.0, 0.0, 0.0]


@pytest.mark.parametrize(
    "sampler",
    [FixedSize(7), ParetoSizes(50.0), LognormalSizes(50.0)],
    ids=lambda s: type(s).__name__,
)
def test_size_samplers_pickle_and_reproduce(sampler):
    clone = pickle.loads(pickle.dumps(sampler))
    a, b = RngStream(7, "x"), RngStream(7, "x")
    assert [sampler(a) for _ in range(20)] == [clone(b) for _ in range(20)]


@pytest.mark.parametrize(
    "process",
    [PoissonArrivals(5.0), StaggeredArrivals(0.1), JitteredArrivals(0.2)],
    ids=lambda s: type(s).__name__,
)
def test_arrival_processes_pickle_and_reproduce(process):
    clone = pickle.loads(pickle.dumps(process))
    assert process(RngStream(7, "x"), 20) == clone(RngStream(7, "x"), 20)


def test_validation():
    with pytest.raises(ConfigurationError):
        ParetoSizes(shape=1.0)
    with pytest.raises(ConfigurationError):
        ParetoSizes(mean_packets=0.5)
    with pytest.raises(ConfigurationError):
        LognormalSizes(sigma=0.0)
    with pytest.raises(ConfigurationError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ConfigurationError):
        StaggeredArrivals(gap=-1.0)
    with pytest.raises(ConfigurationError):
        JitteredArrivals(window=-0.1)
