"""Unit tests for the FTP source."""

import pytest

from repro.app.ftp import FtpSource
from repro.errors import ConfigurationError
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.tcp.factory import make_connection


def make_flow(variant="newreno", **ftp_kwargs):
    sim = Simulator()
    bell = Dumbbell(sim, DumbbellParams(n_pairs=1, buffer_packets=100))
    sender, receiver = make_connection(sim, variant, 1, bell.sender(1), bell.receiver(1))
    source = FtpSource(sim, sender, **ftp_kwargs)
    return sim, sender, source


class TestBoundedTransfer:
    def test_sends_exact_amount(self):
        sim, sender, source = make_flow(amount_packets=30)
        sim.run(until=30.0)
        assert sender.completed
        assert sender.snd_una == 30

    def test_bytes_rounded_up_to_packets(self):
        sim, sender, source = make_flow(amount_bytes=100_000)
        assert sender.data_limit == 100  # 100 KB at 1000-byte MSS
        sim, sender, source = make_flow(amount_bytes=1500)
        assert sender.data_limit == 2

    def test_transfer_delay(self):
        sim, sender, source = make_flow(amount_packets=10, start_time=2.0)
        sim.run(until=30.0)
        assert source.completed
        assert source.transfer_delay == pytest.approx(
            sender.complete_time - 2.0
        )

    def test_transfer_delay_none_until_done(self):
        sim, sender, source = make_flow(amount_packets=10, start_time=5.0)
        sim.run(until=1.0)
        assert source.transfer_delay is None

    def test_completion_callback(self):
        times = []
        sim, sender, source = make_flow(
            amount_packets=5, on_complete=times.append
        )
        sim.run(until=30.0)
        assert len(times) == 1
        assert times[0] == sender.complete_time


class TestUnboundedTransfer:
    def test_runs_forever(self):
        sim, sender, source = make_flow(amount_packets=None)
        sim.run(until=10.0)
        assert not sender.completed
        assert sender.packets_sent > 100


class TestStartTime:
    def test_start_deferred(self):
        sim, sender, source = make_flow(amount_packets=10, start_time=3.0)
        sim.run(until=2.9)
        assert sender.packets_sent == 0
        sim.run(until=3.1)
        assert sender.packets_sent > 0


class TestValidation:
    def test_both_amounts_rejected(self):
        sim = Simulator()
        bell = Dumbbell(sim, DumbbellParams(n_pairs=1))
        sender, _ = make_connection(sim, "rr", 1, bell.sender(1), bell.receiver(1))
        with pytest.raises(ConfigurationError):
            FtpSource(sim, sender, amount_packets=10, amount_bytes=1000)
