"""Package-level tests: error hierarchy, top-level exports, the
``python -m repro`` self-check, and per-flow config overrides."""

import subprocess
import sys

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [SimulationError, SchedulingError, ConfigurationError, TopologyError, ProtocolError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(SchedulingError, SimulationError)

    def test_one_except_catches_everything(self):
        try:
            raise TopologyError("x")
        except ReproError:
            caught = True
        assert caught


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestMainModule:
    def test_self_check_passes(self):
        process = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0, process.stderr
        assert "self-check OK" in process.stdout
        assert "rr" in process.stdout


class TestPerFlowConfig:
    def test_flowspec_config_overrides_default(self):
        from repro.config import TcpConfig
        from repro.experiments.common import FlowSpec, build_dumbbell_scenario

        scenario = build_dumbbell_scenario(
            flows=[
                FlowSpec(variant="rr", config=TcpConfig(receiver_window=16)),
                FlowSpec(variant="rr"),
            ],
            default_config=TcpConfig(receiver_window=99),
        )
        assert scenario.senders[1].config.receiver_window == 16
        assert scenario.senders[2].config.receiver_window == 99
