"""Unit tests for seeded campaign sampling."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignRunner, CampaignSpec
from repro.faults.plan import (
    AckLossEpisode,
    BurstLossEpisode,
    LinkFlap,
    LinkOutage,
    PacketCorruption,
    PacketDuplication,
    PeriodicDropEpisode,
    RouterBlackout,
    TimerSkew,
)


class TestDeterminism:
    def test_same_seed_same_plans(self):
        a = CampaignRunner(seed=99)
        b = CampaignRunner(seed=99)
        for i in range(10):
            assert a.plan_for(i).describe() == b.plan_for(i).describe()

    def test_plan_independent_of_draw_order(self):
        runner = CampaignRunner(seed=13)
        later_first = runner.plan_for(7).describe()
        runner.plans(7)  # draw plenty before re-asking
        assert runner.plan_for(7).describe() == later_first

    def test_different_seeds_differ(self):
        a = [p.describe() for p in CampaignRunner(seed=1).plans(5)]
        b = [p.describe() for p in CampaignRunner(seed=2).plans(5)]
        assert a != b


class TestBounds:
    def test_samples_respect_spec_bounds(self):
        spec = CampaignSpec(
            horizon=50.0,
            warmup=2.0,
            min_actions=1,
            max_actions=4,
            outage_max=1.0,
            ack_loss_max=0.08,
            episode_max=10.0,
        )
        runner = CampaignRunner(seed=5, spec=spec)
        seen = set()
        for plan in runner.plans(200):
            assert spec.min_actions <= len(plan) <= spec.max_actions
            for action in plan.actions:
                seen.add(type(action).__name__)
                if isinstance(action, LinkOutage):
                    assert 0 < action.duration <= spec.outage_max
                    assert spec.warmup <= action.start < spec.horizon
                if isinstance(action, AckLossEpisode):
                    assert 0 < action.rate <= spec.ack_loss_max
                    assert action.end - action.start <= spec.episode_max
                    assert action.end <= spec.horizon
                if isinstance(
                    action,
                    (BurstLossEpisode, PacketDuplication, PacketCorruption,
                     PeriodicDropEpisode),
                ):
                    assert spec.warmup <= action.start
                    assert action.end <= spec.horizon
                if isinstance(action, TimerSkew):
                    assert 1.0 <= action.factor <= spec.timer_skew_max
        # 200 plans exercise the whole fault vocabulary.
        assert seen == {
            "LinkOutage",
            "LinkFlap",
            "RouterBlackout",
            "AckLossEpisode",
            "PacketDuplication",
            "PacketCorruption",
            "BurstLossEpisode",
            "PeriodicDropEpisode",
            "TimerSkew",
        }

    def test_flap_episode_links_come_from_spec(self):
        spec = CampaignSpec(data_links=("R1->R2",), ack_links=("R2->R1",))
        for plan in CampaignRunner(seed=3, spec=spec).plans(100):
            for action in plan.actions:
                if isinstance(action, (LinkOutage, LinkFlap)):
                    assert action.link == "R1->R2"
                if isinstance(action, AckLossEpisode):
                    assert action.link == "R2->R1"
                if isinstance(action, RouterBlackout):
                    assert action.router in spec.routers


class TestValidation:
    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(seed=1, spec=CampaignSpec(horizon=1.0, warmup=2.0))
        with pytest.raises(ConfigurationError):
            CampaignRunner(seed=1, spec=CampaignSpec(min_actions=3, max_actions=2))
        with pytest.raises(ConfigurationError):
            CampaignRunner(seed=1, spec=CampaignSpec(ack_loss_max=1.5))
        with pytest.raises(ConfigurationError):
            CampaignRunner(seed=1, spec=CampaignSpec(outage_max=0.0))
