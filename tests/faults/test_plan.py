"""Unit tests for declarative fault plans."""

import pytest

from repro.errors import TopologyError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.faults.plan import (
    AckLossEpisode,
    FaultContext,
    FaultPlan,
    LinkFlap,
    LinkOutage,
    PacketCorruption,
    PacketDuplication,
    RouterBlackout,
    TimerSkew,
)
from repro.net.loss import Composite, WindowedLoss
from repro.net.topology import DumbbellParams


def scenario(variant="rr", packets=200):
    return build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
    )


class TestFaultContext:
    def test_unknown_link_raises(self):
        ctx = FaultContext.from_scenario(scenario())
        with pytest.raises(TopologyError):
            ctx.link("R9->R10")

    def test_unknown_node_raises(self):
        ctx = FaultContext.from_scenario(scenario())
        with pytest.raises(TopologyError):
            ctx.links_of("R9")

    def test_links_of_router_covers_both_directions(self):
        ctx = FaultContext.from_scenario(scenario())
        names = sorted(l.name for l in ctx.links_of("R1"))
        assert names == ["R1->R2", "R1->S1", "R2->R1", "S1->R1"]

    def test_loss_composition_chains(self):
        result = scenario()
        ctx = FaultContext.from_scenario(result)
        link = ctx.link("S1->R1")
        plan = FaultPlan(seed=3).add(
            AckLossEpisode(link="S1->R1", rate=0.1, start=0.0, end=1.0)
        ).add(AckLossEpisode(link="S1->R1", rate=0.1, start=2.0, end=3.0))
        plan.install(ctx)
        assert isinstance(link.loss, Composite)
        assert len(link.loss.modules) == 2
        assert all(isinstance(m, WindowedLoss) for m in link.loss.modules)


class TestActions:
    def test_outage_installs_and_transfer_survives(self):
        result = scenario()
        plan = FaultPlan(seed=5).add(LinkOutage(link="R1->R2", start=1.0, duration=0.2))
        plan.install_on(result)
        result.sim.run(until=300.0)
        assert result.senders[1].completed
        assert result.dumbbell.forward_link.outage_drops > 0

    def test_flap_schedules_count_outages(self):
        result = scenario()
        FaultPlan(seed=5).add(
            LinkFlap(link="R1->R2", start=1.0, count=3, down=0.05, up=0.5)
        ).install_on(result)
        link = result.dumbbell.forward_link
        downs = []
        result.dumbbell.net.trace.subscribe("link.down", lambda r: downs.append(r.time))
        result.sim.run(until=300.0)
        assert len(downs) == 3
        assert result.senders[1].completed

    def test_router_blackout_darkens_every_adjacent_link(self):
        result = scenario()
        FaultPlan(seed=5).add(
            RouterBlackout(router="R1", start=1.0, duration=0.2)
        ).install_on(result)
        downs = []
        result.dumbbell.net.trace.subscribe("link.down", lambda r: downs.append(r.source))
        result.sim.run(until=300.0)
        assert sorted(downs) == ["R1->R2", "R1->S1", "R2->R1", "S1->R1"]
        assert result.senders[1].completed

    def test_timer_skew_scales_granularity(self):
        result = scenario()
        before = result.senders[1].timer_granularity
        FaultPlan(seed=5).add(TimerSkew(factor=2.5)).install_on(result)
        assert result.senders[1].timer_granularity == pytest.approx(before * 2.5)

    def test_duplication_survives_exactly_once_delivery(self):
        result = scenario(packets=300)
        FaultPlan(seed=9).add(
            PacketDuplication(link="S1->R1", rate=0.2, start=0.0, end=20.0)
        ).install_on(result)
        result.sim.run(until=300.0)
        link = result.dumbbell.net.links["S1->R1"]
        assert link.tamper.duplicated > 0
        assert result.senders[1].completed
        # Duplicates reached the receiver but the app saw each packet once.
        assert result.receivers[1].delivered == 300
        assert result.receivers[1].duplicates_received > 0

    def test_corruption_survives(self):
        result = scenario(packets=300)
        FaultPlan(seed=9).add(
            PacketCorruption(link="S1->R1", rate=0.05, start=0.0, end=20.0)
        ).install_on(result)
        result.sim.run(until=300.0)
        assert result.dumbbell.net.links["S1->R1"].tamper.corrupted > 0
        assert result.senders[1].completed
        assert result.receivers[1].delivered == 300


class TestPlanMechanics:
    def test_same_plan_same_behaviour(self):
        """Installing one plan onto two identical worlds gives
        bit-identical outcomes (per-action derived streams)."""
        finish = []
        for _ in range(2):
            result = scenario(packets=300)
            FaultPlan(seed=77, name="det").add(
                AckLossEpisode(link="R2->R1", rate=0.3, start=0.0, end=15.0)
            ).add(
                PacketCorruption(link="S1->R1", rate=0.05, start=0.0, end=15.0)
            ).install_on(result)
            result.sim.run(until=300.0)
            assert result.senders[1].completed
            finish.append(result.senders[1].complete_time)
        assert finish[0] == finish[1]

    def test_composition_concatenates_actions(self):
        a = FaultPlan(seed=1, name="a").add(LinkOutage("R1->R2", 1.0, 0.1))
        b = FaultPlan(seed=2, name="b").add(TimerSkew(factor=2.0))
        combined = a + b
        assert len(combined) == 2
        assert combined.seed == 1 and combined.name == "a"
        assert len(a) == 1 and len(b) == 1  # originals untouched

    def test_describe_mentions_every_action(self):
        plan = FaultPlan(seed=1, name="demo").add(
            LinkOutage("R1->R2", 1.0, 0.1)
        ).add(TimerSkew(factor=2.0))
        text = plan.describe()
        assert "demo" in text and "outage R1->R2" in text and "timer-skew" in text
