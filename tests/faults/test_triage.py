"""Snapshot-based crash triage: neutralization and bisection."""

from repro.faults import neutralize_faults, triage_crash
from repro.net.loss import NoLoss
from repro.runner import SnapshotStore
from repro.snapshot import Snapshot
from repro.snapshot.golden import build_golden_scenario


def _stalled_world():
    """A golden world wedged by a permanent forward-link outage: RTOs
    fire into a dead link, so no flow makes progress."""
    world = build_golden_scenario("reno")
    world.sim.run(until=1.0)
    world.dumbbell.forward_link.set_down()
    world.sim.run(until=6.0)
    return world


class TestNeutralizeFaults:
    def test_raises_links_clears_loss_cancels_outage_events(self):
        world = build_golden_scenario("reno")
        world.sim.run(until=1.0)
        link = world.dumbbell.forward_link
        link.set_down()
        pending = world.sim.schedule(5.0, link.set_up)
        notes = neutralize_faults(world)
        assert not link.is_down
        assert isinstance(link.loss, NoLoss)  # golden drops cleared too
        assert not pending.pending
        assert any("raised downed link" in note for note in notes)
        assert any("cancelled scheduled set_up" in note for note in notes)

    def test_resets_timer_skew(self):
        world = build_golden_scenario("reno")
        sender = world.senders[1]
        sender.set_timer_granularity(sender.config.timer_granularity * 4)
        notes = neutralize_faults(world)
        assert sender.timer_granularity == sender.config.timer_granularity
        assert any("timer granularity" in note for note in notes)

    def test_healthy_world_yields_only_loss_note(self):
        world = build_golden_scenario("reno")
        notes = neutralize_faults(world)
        # The golden scenario's engineered drops count as a fault to
        # clear; nothing else is installed.
        assert notes == ["cleared loss on R1->R2"] or len(notes) == 1


class TestTriageCrash:
    def test_outage_is_implicated(self, tmp_path):
        snapshot = Snapshot.capture(_stalled_world(), label="stalled")
        store = SnapshotStore(tmp_path)
        result = triage_crash(snapshot, grace=30.0, store=store)
        assert not result.with_fault_recovered
        assert result.without_fault_recovered
        assert result.fault_implicated
        assert result.crash_digest == snapshot.digest
        assert "implicated" in result.verdict()
        assert result.crash_digest[:12] in result.format()

    def test_forks_are_persisted_and_replayable(self, tmp_path):
        snapshot = Snapshot.capture(_stalled_world(), label="stalled")
        store = SnapshotStore(tmp_path)
        result = triage_crash(snapshot, grace=10.0, store=store)
        # Crash point in full; fork endpoints resolve (delta or full).
        assert store.path_for(snapshot.digest).exists()
        for digest in (result.with_fault_digest, result.without_fault_digest):
            assert store.contains(digest)
            assert store.get(digest).digest == digest

    def test_store_is_optional(self):
        snapshot = Snapshot.capture(_stalled_world(), label="stalled")
        result = triage_crash(snapshot, grace=10.0)
        assert result.with_fault_digest and result.without_fault_digest
