"""Unit tests for packet tampering (duplication / corruption-drop)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.tamper import PacketTamperer
from repro.net.packet import ack_packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


def data(seqno):
    return data_packet(1, "S1", "K1", seqno)


class TestValidation:
    def test_rates_out_of_range_rejected(self):
        sim = Simulator()
        rng = RngStream(1, "t")
        with pytest.raises(ConfigurationError):
            PacketTamperer(sim, rng, duplicate_rate=1.5)
        with pytest.raises(ConfigurationError):
            PacketTamperer(sim, rng, corrupt_rate=-0.1)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketTamperer(Simulator(), RngStream(1, "t"), start=5.0, end=5.0)


class TestVerdicts:
    def test_same_seed_same_verdict_sequence(self):
        sim = Simulator()
        verdicts = []
        for _ in range(2):
            tamperer = PacketTamperer(
                sim, RngStream(42, "tamper"), duplicate_rate=0.3, corrupt_rate=0.2
            )
            verdicts.append([tamperer.verdict(data(i)) for i in range(200)])
        assert verdicts[0] == verdicts[1]
        assert "duplicate" in verdicts[0] and "corrupt" in verdicts[0]

    def test_acks_untouched_by_default(self):
        tamperer = PacketTamperer(
            Simulator(), RngStream(1, "t"), duplicate_rate=1.0, corrupt_rate=1.0
        )
        assert tamperer.verdict(ack_packet(1, "K1", "S1", 3)) is None

    def test_window_gates_activity(self):
        sim = Simulator()
        tamperer = PacketTamperer(
            sim, RngStream(1, "t"), corrupt_rate=1.0, start=5.0, end=10.0
        )
        assert tamperer.verdict(data(0)) is None  # t=0: before window
        sim.schedule(6.0, lambda: None)
        sim.run()
        assert tamperer.verdict(data(1)) == "corrupt"
        sim.schedule(5.0, lambda: None)
        sim.run()  # t=11: after window
        assert tamperer.verdict(data(2)) is None
        assert tamperer.corrupted == 1

    def test_clone_gets_fresh_uid(self):
        packet = data(7)
        copy = PacketTamperer.clone(packet)
        assert copy.uid != packet.uid
        assert copy.seqno == packet.seqno
        assert copy.flow_id == packet.flow_id
        assert copy.sack_blocks is not packet.sack_blocks
