"""Topology family builders: shape, routing, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.net.node import Agent
from repro.net.packet import Packet
from repro.net.parkinglot import ParkingLotParams
from repro.net.topology import DumbbellParams
from repro.scenes import (
    FatTreeParams,
    WaxmanParams,
    build_dumbbell,
    build_fattree,
    build_parkinglot,
    build_wan,
)
from repro.sim.engine import Simulator


def test_dumbbell_wrapper_exposes_oracle_link(sim):
    built = build_dumbbell(sim, DumbbellParams(n_pairs=5))
    assert len(built.pairs) == 5
    assert built.oracle_link is built.bottlenecks[0]
    assert built.base_rtt > 0
    # Compact routing: hosts carry a single default route.
    src = built.pairs[0][0]
    assert set(src.routes) == {"*"}


def test_large_dumbbell_builds_fast(sim):
    built = build_dumbbell(sim, DumbbellParams(n_pairs=500))
    assert len(built.pairs) == 500
    # Routers still know every destination; hosts stay compact.
    assert len(built.net.nodes["R1"].routes) >= 1000


def test_parkinglot_wrapper_pairs(sim):
    built = build_parkinglot(sim, ParkingLotParams(n_hops=3))
    # one long pair + one cross pair per hop
    assert len(built.pairs) == 4
    assert len(built.bottlenecks) == 3
    assert built.oracle_link is None


def test_fattree_counts(sim):
    k = 4
    built = build_fattree(sim, FatTreeParams(k=k))
    assert len(built.hosts) == k**3 // 4
    routers = [n for n in built.net.nodes.values() if n.name[0] in "CAE"]
    # (k/2)^2 cores + k pods * (k/2 agg + k/2 edge)
    assert len(routers) == (k // 2) ** 2 + k * k
    assert built.bottlenecks, "core uplinks should be designated bottlenecks"


def test_fattree_k_must_be_even(sim):
    with pytest.raises(ConfigurationError):
        build_fattree(sim, FatTreeParams(k=3))


class _Probe(Agent):
    """Records the seqnos delivered to it."""

    def __init__(self, flow_id):
        super().__init__(flow_id)
        self.got = []

    def receive(self, packet):
        self.got.append(packet.seqno)


def _inject(sim, src, dst, flow_id, seqno):
    probe = _Probe(flow_id)
    dst.register(probe)
    src.send(Packet("data", flow_id, src.name, dst.name, seqno=seqno))
    sim.run()
    return probe.got


def test_fattree_delivers_across_pods(sim):
    built = build_fattree(sim, FatTreeParams(k=4))
    # First host of pod 0 -> last host of pod 3 crosses the core.
    assert _inject(sim, built.hosts[0], built.hosts[-1], 1, 42) == [42]


def test_waxman_same_params_same_graph():
    a = build_wan(Simulator(), WaxmanParams(n_routers=30, graph_seed=4))
    b = build_wan(Simulator(), WaxmanParams(n_routers=30, graph_seed=4))
    assert sorted(a.net.links) == sorted(b.net.links)
    assert [h.name for h in a.hosts] == [h.name for h in b.hosts]


def test_waxman_graph_seed_changes_graph():
    a = build_wan(Simulator(), WaxmanParams(n_routers=30, graph_seed=4))
    b = build_wan(Simulator(), WaxmanParams(n_routers=30, graph_seed=5))
    assert sorted(a.net.links) != sorted(b.net.links)


def test_waxman_always_connected(sim):
    # Tiny alpha draws almost no Waxman edges; the repair step must
    # still deliver a connected routable graph.
    built = build_wan(
        sim, WaxmanParams(n_routers=25, alpha=0.01, beta=0.05, graph_seed=2)
    )
    assert _inject(sim, built.hosts[0], built.hosts[-1], 9, 1) == [1]


def test_waxman_validation():
    with pytest.raises(ConfigurationError):
        WaxmanParams(n_routers=1).validate()
    with pytest.raises(ConfigurationError):
        WaxmanParams(alpha=0.0).validate()
