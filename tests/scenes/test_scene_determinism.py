"""The scenes determinism contract: same digest, same world, same run.

Pins the guarantees docs/SCENARIOS.md documents: a SceneSpec fully
determines its world (rebuilds are bit-identical), runs are
reproducible across topology families, and a scene survives mid-run
snapshot capture/restore bit-identically — including on a >= 100-flow
scene, the scale the manyflow harness warm-starts at.
"""

import pytest

from repro.net.red import RedParams
from repro.scenes import ArrivalSpec, FlowPopulation, SceneSpec, build_scene
from repro.snapshot import Snapshot, state_digest

FAMILY_SPECS = [
    SceneSpec(
        family="dumbbell",
        flows=FlowPopulation(count=6),
        red=RedParams(),
        seed=3,
        duration=2.0,
    ),
    SceneSpec(
        family="parkinglot",
        flows=FlowPopulation(count=5, size_dist="pareto", mean_packets=30.0),
        arrivals=ArrivalSpec(process="poisson", rate=20.0),
        seed=4,
        duration=2.0,
    ),
    SceneSpec(
        family="fattree",
        flows=FlowPopulation(count=4),
        arrivals=ArrivalSpec(process="onoff", on_packets=20, off_seconds=0.2),
        seed=5,
        duration=1.0,
    ),
    SceneSpec(
        family="wan",
        flows=FlowPopulation(count=6, size_dist="lognormal", mean_packets=40.0),
        arrivals=ArrivalSpec(process="staggered", stagger=0.05),
        seed=6,
        duration=1.5,
    ),
]


@pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.family)
def test_rerun_is_bit_identical(spec):
    a = build_scene(spec)
    a.sim.run(until=spec.duration)
    b = build_scene(spec)
    b.sim.run(until=spec.duration)
    assert state_digest(a) == state_digest(b)


@pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.family)
def test_capture_restore_continues_bit_identically(spec):
    cold = build_scene(spec)
    cold.sim.run(until=spec.duration)
    reference = state_digest(cold)

    warm = build_scene(spec)
    warm.sim.run(until=spec.duration / 2)
    restored = Snapshot.capture(warm, label=f"{spec.family} midpoint").restore()
    restored.sim.run(until=spec.duration)
    assert state_digest(restored) == reference


def test_seed_changes_the_run():
    base, reseeded = FAMILY_SPECS[0], SceneSpec(
        family="dumbbell",
        flows=FlowPopulation(count=6),
        red=RedParams(),
        seed=103,
        duration=2.0,
    )
    a = build_scene(base)
    a.sim.run(until=base.duration)
    b = build_scene(reseeded)
    b.sim.run(until=reseeded.duration)
    assert state_digest(a) != state_digest(b)


def test_hundred_flow_scene_capture_restore():
    """Mid-run capture/restore on a manyflow-scale scene (>= 100 flows)."""
    from repro.experiments.manyflow import ManyflowConfig, cell_spec

    spec = cell_spec(100, 0.02, ManyflowConfig(duration=2.0))
    cold = build_scene(spec)
    cold.sim.run(until=spec.duration)
    reference = state_digest(cold)
    assert len(cold.senders) == 100

    warm = build_scene(spec)
    warm.sim.run(until=0.8)
    snapshot = Snapshot.capture(warm, label="manyflow 100-flow midpoint")
    restored = snapshot.restore()
    restored.sim.run(until=spec.duration)
    assert state_digest(restored) == reference
