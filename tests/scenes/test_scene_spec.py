"""SceneSpec: validation, canonical digests, JSON round trips."""

import pytest

from repro.errors import ConfigurationError
from repro.net.red import RedParams
from repro.net.topology import DumbbellParams
from repro.scenes import (
    ArrivalSpec,
    FlowPopulation,
    SceneSpec,
    WaxmanParams,
    default_topology,
    family,
)


def test_default_spec_validates():
    SceneSpec().validate()


def test_digest_is_stable_across_instances():
    a = SceneSpec(flows=FlowPopulation(count=4), seed=3)
    b = SceneSpec(flows=FlowPopulation(count=4), seed=3)
    assert a.digest() == b.digest()


def test_digest_depends_on_every_field():
    base = SceneSpec()
    assert SceneSpec(seed=2).digest() != base.digest()
    assert SceneSpec(duration=11.0).digest() != base.digest()
    assert SceneSpec(flows=FlowPopulation(count=11)).digest() != base.digest()
    assert SceneSpec(red=RedParams()).digest() != base.digest()
    assert (
        SceneSpec(topology=DumbbellParams(n_pairs=7)).digest() != base.digest()
    )


def test_json_round_trip_preserves_digest():
    spec = SceneSpec(
        family="wan",
        topology=WaxmanParams(n_routers=12, graph_seed=5),
        flows=FlowPopulation(count=6, size_dist="pareto", mean_packets=40.0),
        arrivals=ArrivalSpec(process="poisson", rate=8.0),
        red=RedParams(max_p=0.05),
        seed=9,
        duration=4.0,
    )
    loaded = SceneSpec.from_json(spec.to_json())
    assert isinstance(loaded.topology, WaxmanParams)
    assert loaded.digest() == spec.digest()
    assert loaded == spec


def test_from_json_rejects_garbage():
    with pytest.raises(ConfigurationError):
        SceneSpec.from_json("not json at all {")
    with pytest.raises(ConfigurationError):
        SceneSpec.from_json('{"just": "a dict"}')


def test_unknown_family_rejected():
    with pytest.raises(ConfigurationError, match="unknown scene family"):
        SceneSpec(family="torus").validate()
    with pytest.raises(ConfigurationError):
        family("torus")


def test_topology_type_must_match_family():
    with pytest.raises(ConfigurationError, match="takes"):
        SceneSpec(family="wan", topology=DumbbellParams()).validate()


def test_flow_and_arrival_validation():
    with pytest.raises(ConfigurationError):
        SceneSpec(flows=FlowPopulation(count=0)).validate()
    with pytest.raises(ConfigurationError):
        SceneSpec(flows=FlowPopulation(variant="nope")).validate()
    with pytest.raises(ConfigurationError):
        SceneSpec(flows=FlowPopulation(size_dist="zipf")).validate()
    with pytest.raises(ConfigurationError):
        SceneSpec(arrivals=ArrivalSpec(process="batch")).validate()
    with pytest.raises(ConfigurationError):
        SceneSpec(duration=0.0).validate()


def test_default_topology_lookup():
    assert isinstance(default_topology("dumbbell"), DumbbellParams)
    assert isinstance(default_topology("wan"), WaxmanParams)
