"""Fairness dynamics beyond Table 5.

Section 5's claims, tested directly:

* "Owing to its exponential back-off in the retreat sub-phase and
  linear adjustments in the probe sub-phase, RR strictly follows the
  AIMD rule and is TCP-friendly.  It converges to the optimal point if
  competing TCP connections have same RTTs."
* The classic AIMD corollary: with *different* RTTs, the short-RTT flow
  wins — RR inherits the bias rather than worsening it.
"""

import pytest

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.fairness import jain_index
from repro.net.topology import DumbbellParams


def run_pairs(variant, n_flows=4, duration=60.0, sender_side_delays=None,
              buffer_packets=25, red=False, seed=3):
    from repro.net.red import RedParams, RedQueue
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStream

    kwargs = {}
    if red:
        # Drop-tail with deterministic two-flow competition suffers the
        # classic phase-effect lockout (Floyd & Jacobson); RED's
        # randomised drops expose the true AIMD dynamics.
        sim = Simulator()
        rng = RngStream(seed, "red")
        kwargs["bottleneck_queue_factory"] = lambda name: RedQueue(
            sim, RedParams(weight=0.02, limit=buffer_packets), rng.substream(name),
            name=name,
        )
        kwargs["sim"] = sim
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=None) for _ in range(n_flows)],
        params=DumbbellParams(
            n_pairs=n_flows,
            buffer_packets=buffer_packets,
            sender_side_delays=sender_side_delays,
        ),
        **kwargs,
    )
    scenario.sim.run(until=duration)
    return {fid: stats.final_ack for fid, stats in scenario.stats.items()}


class TestSameRttConvergence:
    @pytest.mark.parametrize("variant", ["rr", "newreno", "sack"])
    def test_equal_rtt_flows_converge_to_fair_share(self, variant):
        goodputs = run_pairs(variant, n_flows=4)
        assert jain_index(list(goodputs.values())) > 0.9

    def test_rr_fairness_at_least_reno_class(self):
        rr = jain_index(list(run_pairs("rr", n_flows=4).values()))
        reno = jain_index(list(run_pairs("reno", n_flows=4).values()))
        assert rr >= reno - 0.1

    @pytest.mark.parametrize("variant", ["rr", "newreno"])
    def test_no_flow_starves(self, variant):
        goodputs = run_pairs(variant, n_flows=4)
        total = sum(goodputs.values())
        for flow_id, goodput in goodputs.items():
            assert goodput > 0.08 * total, f"flow {flow_id} starved"


class TestRttBias:
    def test_short_rtt_flow_wins_with_aimd(self):
        """AIMD's well-known RTT bias: flow 1 (1 ms side delay) beats
        flow 2 (50 ms side delay) through a shared RED bottleneck."""
        goodputs = run_pairs(
            "rr", n_flows=2, sender_side_delays=[0.001, 0.050], red=True
        )
        assert goodputs[1] > 1.3 * goodputs[2]

    def test_bias_applies_to_all_variants(self):
        for variant in ("newreno", "sack", "rr"):
            goodputs = run_pairs(
                variant, n_flows=2, sender_side_delays=[0.001, 0.050], red=True
            )
            assert goodputs[1] > goodputs[2], variant

    def test_droptail_phase_effects_are_real(self):
        """Documenting the artifact the RED runs avoid: deterministic
        drop-tail two-flow competition locks out one flow arbitrarily
        (here the long-RTT flow happens to win) — one more reason the
        paper's multi-flow studies needed RED."""
        goodputs = run_pairs(
            "newreno", n_flows=2, sender_side_delays=[0.001, 0.050], red=False
        )
        ratio = max(goodputs.values()) / max(1, min(goodputs.values()))
        assert ratio > 2.0  # grossly unfair either way

    def test_heterogeneous_rtt_configuration(self):
        params = DumbbellParams(n_pairs=3, sender_side_delays=[0.001, 0.020])
        assert params.sender_delay(0) == 0.001
        assert params.sender_delay(1) == 0.020
        assert params.sender_delay(2) == params.side_delay  # fallback

    def test_negative_delay_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DumbbellParams(sender_side_delays=[-0.1]).validate()
