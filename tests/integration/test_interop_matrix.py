"""Interoperability matrix: every pair of recovery schemes must
coexist on a shared bottleneck — both complete, neither starves.

This generalises the paper's Section 5 concern ("to be an incrementally
deployable TCP enhancement, RR must interoperate well ... with existing
TCP congestion-recovery strategies") to the whole zoo.
"""

import itertools

import pytest

from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams

SCHEMES = ["tahoe", "reno", "newreno", "sack", "rr", "vegas"]


@pytest.mark.parametrize(
    "first,second", list(itertools.combinations_with_replacement(SCHEMES, 2))
)
def test_pair_coexists(first, second):
    scenario = build_dumbbell_scenario(
        flows=[
            FlowSpec(variant=first, amount_packets=150),
            FlowSpec(variant=second, amount_packets=150, start_time=0.2),
        ],
        params=DumbbellParams(n_pairs=2, buffer_packets=25),
    )
    scenario.sim.run(until=300.0)
    for flow_id in (1, 2):
        sender = scenario.senders[flow_id]
        assert sender.completed, f"{first}+{second}: flow {flow_id} did not finish"
        assert scenario.receivers[flow_id].delivered == 150


@pytest.mark.parametrize("aggressor", ["reno", "newreno", "rr"])
def test_vegas_survives_aggressive_neighbours(aggressor):
    """Vegas' known weakness — loss-based flows fill the buffer it
    tries to keep empty — must degrade it, not deadlock it."""
    scenario = build_dumbbell_scenario(
        flows=[
            FlowSpec(variant="vegas", amount_packets=120),
            FlowSpec(variant=aggressor, amount_packets=None),
        ],
        params=DumbbellParams(n_pairs=2, buffer_packets=25),
    )
    scenario.sim.run(until=300.0)
    assert scenario.senders[1].completed
