"""System-level conservation invariants after chaotic runs.

Whatever happens — losses, reordering, outages, recoveries — the
plumbing must balance its books:

* per queue: enqueues == dequeues + still-queued  (drops counted apart);
* per flow: packets sent == packets received + drops observed +
  still-in-transit (a small bounded residue at the cut-off instant);
* the receiver never delivers a packet twice.
"""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import GilbertElliott, UniformLoss
from repro.net.reorder import RandomReorderer
from repro.net.topology import DumbbellParams
from repro.sim.rng import RngStream


def chaotic_scenario(seed=3):
    rng = RngStream(seed, "chaos")
    scenario = build_dumbbell_scenario(
        flows=[
            FlowSpec(variant="rr", amount_packets=250),
            FlowSpec(variant="newreno", amount_packets=250, start_time=0.3),
            FlowSpec(variant="sack", amount_packets=250, start_time=0.6),
        ],
        params=DumbbellParams(n_pairs=3, buffer_packets=15),
        default_config=TcpConfig(receiver_window=64),
        forward_loss=UniformLoss(0.02, rng.substream("loss")),
    )
    scenario.dumbbell.forward_link.reorder = RandomReorderer(
        rng.substream("reorder"), probability=0.02, delay=0.02
    )
    scenario.dumbbell.forward_link.schedule_outage(start=2.0, duration=0.1)
    scenario.sim.run(until=600.0)
    return scenario


@pytest.fixture(scope="module")
def scenario():
    return chaotic_scenario()


class TestQueueConservation:
    def test_every_queue_balances(self, scenario):
        for link in scenario.dumbbell.net.links.values():
            queue = link.queue
            assert queue.enqueues == queue.dequeues + len(queue), link.name

    def test_drop_counter_consistent_with_trace(self, scenario):
        queue = scenario.dumbbell.bottleneck_queue
        assert queue.drops >= 0
        # total data drops observed by flows <= queue drops + injected
        observed = sum(stats.drops_observed for stats in scenario.stats.values())
        injected = scenario.dumbbell.forward_link.loss.injected_drops
        outage = scenario.dumbbell.forward_link.outage_drops
        total_queue_drops = sum(
            link.queue.drops for link in scenario.dumbbell.net.links.values()
        )
        assert observed <= total_queue_drops + injected + outage


class TestFlowConservation:
    def test_all_transfers_completed(self, scenario):
        for sender in scenario.senders.values():
            assert sender.completed

    def test_sent_equals_received_plus_lost(self, scenario):
        for flow_id, sender in scenario.senders.items():
            receiver = scenario.receivers[flow_id]
            stats = scenario.stats[flow_id]
            # All flows completed, so nothing is left in transit except
            # possibly spurious retransmissions acked late.
            assert sender.packets_sent >= receiver.packets_received
            residue = sender.packets_sent - receiver.packets_received - stats.drops_observed
            assert abs(residue) <= 5, f"flow {flow_id} unbalanced by {residue}"

    def test_exactly_once_delivery(self, scenario):
        for flow_id, receiver in scenario.receivers.items():
            assert receiver.delivered == 250
            assert receiver.buffered_out_of_order == 0

    def test_retransmissions_bounded_by_losses(self, scenario):
        """Retransmissions should be the same order as real losses —
        a pathological retransmit storm would break this."""
        for flow_id, sender in scenario.senders.items():
            losses = scenario.stats[flow_id].drops_observed
            assert sender.retransmits <= 3 * losses + 30
