"""Integration tests pinning the paper's qualitative results (the
"shapes" DESIGN.md §5 promises).  These are the regression tests for
the reproduction itself: if a refactor breaks one of these, the
repository no longer reproduces the paper.
"""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.throughput import loss_recovery_throughput
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams


def burst_run(variant, n_drops, packets=600):
    loss = DeterministicLoss([(1, 100 + i) for i in range(n_drops)])
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=loss,
    )
    scenario.sim.run(until=120.0)
    return scenario.flow(1)


def recovery_kbps(variant, n_drops):
    _, stats = burst_run(variant, n_drops)
    bps = loss_recovery_throughput(stats)
    assert bps is not None, f"{variant} never recovered"
    return bps / 1000.0


class TestFigure5Shapes:
    """Figure 5: who wins during recovery from 3/6-packet bursts."""

    def test_rr_beats_newreno_3drops(self):
        assert recovery_kbps("rr", 3) > 1.1 * recovery_kbps("newreno", 3)

    def test_rr_beats_newreno_6drops(self):
        assert recovery_kbps("rr", 6) > 1.5 * recovery_kbps("newreno", 6)

    def test_rr_at_least_as_good_as_sack_6drops(self):
        # "achieves at least as much performance improvements as SACK"
        assert recovery_kbps("rr", 6) >= 0.95 * recovery_kbps("sack", 6)

    def test_rr_close_to_sack_3drops(self):
        assert recovery_kbps("rr", 3) >= 0.9 * recovery_kbps("sack", 3)

    def test_tahoe_beats_newreno_at_heavy_burst(self):
        # "Tahoe is more robust than New-Reno in case of high bursty losses"
        assert recovery_kbps("tahoe", 6) > recovery_kbps("newreno", 6)

    def test_all_schemes_degrade_with_burst_size(self):
        for variant in ("newreno", "rr"):
            assert recovery_kbps(variant, 6) < recovery_kbps(variant, 3)


class TestRrMechanisms:
    def test_rr_handles_bursts_without_timeout(self):
        for n_drops in (3, 6, 9):
            sender, _ = burst_run("rr", n_drops)
            assert sender.timeouts == 0

    def test_rr_single_episode_per_burst(self):
        sender, stats = burst_run("rr", 6)
        assert sender.recovery_episodes == 1

    def test_reno_halves_repeatedly_on_burst(self):
        """Reno's pathology (paper §1): multiple window halvings or a
        timeout for one burst."""
        sender, stats = burst_run("reno", 6)
        # Reno either re-enters recovery several times or times out.
        assert len(stats.episodes) + sender.timeouts >= 2

    def test_rr_detects_further_losses_without_new_fast_retransmit(self):
        loss = DeterministicLoss(
            [(1, 100 + i) for i in range(4)] + [(1, 126), (1, 130)]
        )
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="rr", amount_packets=600)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
            default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
            forward_loss=loss,
        )
        scenario.sim.run(until=120.0)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert sender.further_losses_detected == 2
        assert sender.exit_extensions >= 1
        assert sender.recovery_episodes == 1  # all inside one episode
        assert sender.timeouts == 0

    def test_rr_exit_is_burst_free(self):
        sender, stats = burst_run("rr", 6)
        episode = stats.episodes[0]
        assert episode.exit_time is not None
        sends_at_exit = [
            seq
            for t, seq, retransmit in stats.send_series
            if episode.exit_time <= t <= episode.exit_time + 0.001 and not retransmit
        ]
        assert len(sends_at_exit) <= 2


class TestNewRenoPathology:
    def test_newreno_new_data_decays_during_recovery(self):
        """§1: New-Reno's new-data transmissions per RTT shrink
        geometrically during a multi-loss recovery."""
        sender, stats = burst_run("newreno", 6)
        episode = stats.episodes[0]
        assert episode.exit_time is not None
        new_sends = [
            t
            for t, seq, retransmit in stats.send_series
            if not retransmit and episode.enter_time <= t <= episode.exit_time
        ]
        duration = episode.exit_time - episode.enter_time
        first_half = sum(1 for t in new_sends if t < episode.enter_time + duration / 2)
        second_half = len(new_sends) - first_half
        assert first_half >= second_half

    def test_newreno_recovers_one_loss_per_rtt(self):
        sender, stats = burst_run("newreno", 6)
        episode = stats.episodes[0]
        retransmissions = [
            t
            for t, seq, retransmit in stats.send_series
            if retransmit and episode.enter_time <= t <= (episode.exit_time or 1e9)
        ]
        assert len(retransmissions) == 6
