"""Integration tests: full transfers through the simulated network.

Every variant must reliably deliver a bounded transfer under a range of
network conditions — clean paths, engineered bursts, random loss, RED
congestion and ACK loss — because whatever the recovery scheme does,
TCP's contract is reliable in-order delivery.
"""

import pytest

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import AckLoss, DeterministicLoss, UniformLoss
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

ALL_VARIANTS = [
    "tahoe", "reno", "newreno", "sack", "sack3517", "rr",
    "rightedge", "linkung", "vegas", "ss-reno", "ss-newreno", "ss-rr",
]
PAPER_VARIANTS = ["tahoe", "newreno", "sack", "rr"]


def run_transfer(
    variant,
    packets=200,
    forward_loss=None,
    reverse_loss=None,
    buffer_packets=25,
    duration=200.0,
    config=None,
    n_flows=1,
):
    flows = [FlowSpec(variant=variant, amount_packets=packets)]
    for _ in range(n_flows - 1):
        flows.append(FlowSpec(variant=variant, amount_packets=None))
    scenario = build_dumbbell_scenario(
        flows=flows,
        params=DumbbellParams(n_pairs=len(flows), buffer_packets=buffer_packets),
        default_config=config,
        forward_loss=forward_loss,
        reverse_loss=reverse_loss,
    )
    scenario.sim.run(until=duration)
    return scenario


class TestCleanPath:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_transfer_completes_without_retransmissions(self, variant):
        scenario = run_transfer(variant, packets=100, buffer_packets=200)
        sender, stats = scenario.flow(1)
        assert sender.completed
        assert sender.retransmits == 0
        assert sender.timeouts == 0

    @pytest.mark.parametrize("variant", PAPER_VARIANTS)
    def test_receiver_got_everything_in_order(self, variant):
        scenario = run_transfer(variant, packets=100, buffer_packets=200)
        receiver = scenario.receivers[1]
        assert receiver.delivered == 100
        assert receiver.buffered_out_of_order == 0


class TestBurstLoss:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("n_drops", [1, 3, 6])
    def test_recovers_from_burst(self, variant, n_drops):
        loss = DeterministicLoss([(1, 50 + i) for i in range(n_drops)])
        scenario = run_transfer(variant, packets=200, forward_loss=loss)
        sender, stats = scenario.flow(1)
        assert sender.completed, f"{variant} did not finish after {n_drops} drops"
        assert scenario.receivers[1].delivered == 200

    @pytest.mark.parametrize("variant", ["sack", "rr"])
    def test_robust_schemes_avoid_timeouts_on_bursts(self, variant):
        config = TcpConfig(receiver_window=64, initial_ssthresh=20.0)
        loss = DeterministicLoss([(1, 100 + i) for i in range(6)])
        scenario = run_transfer(variant, packets=400, forward_loss=loss, config=config)
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert sender.timeouts == 0


class TestRandomLoss:
    @pytest.mark.parametrize("variant", PAPER_VARIANTS)
    @pytest.mark.parametrize("rate", [0.01, 0.05])
    def test_completes_under_random_loss(self, variant, rate):
        loss = UniformLoss(rate, RngStream(5, f"{variant}-{rate}"))
        scenario = run_transfer(variant, packets=300, forward_loss=loss, duration=500.0)
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == 300


class TestAckLossPath:
    @pytest.mark.parametrize("variant", PAPER_VARIANTS)
    def test_completes_under_ack_loss(self, variant):
        reverse = AckLoss(rate=0.2, rng=RngStream(9, variant))
        scenario = run_transfer(variant, packets=200, reverse_loss=reverse, duration=500.0)
        sender, _ = scenario.flow(1)
        assert sender.completed


class TestRedCongestion:
    @pytest.mark.parametrize("variant", PAPER_VARIANTS)
    def test_completes_through_congested_red(self, variant):
        sim = Simulator()
        rng = RngStream(3, f"red-{variant}")
        flows = [FlowSpec(variant=variant, amount_packets=150)]
        flows += [FlowSpec(variant=variant, amount_packets=None) for _ in range(4)]
        scenario = build_dumbbell_scenario(
            flows=flows,
            params=DumbbellParams(n_pairs=5, buffer_packets=25),
            bottleneck_queue_factory=lambda name: RedQueue(
                sim, RedParams(), rng.substream(name), name=name
            ),
            sim=sim,
        )
        scenario.sim.run(until=300.0)
        sender, _ = scenario.flow(1)
        assert sender.completed
        assert scenario.receivers[1].delivered == 150


class TestSharedBottleneck:
    def test_competing_flows_all_progress(self):
        scenario = run_transfer("rr", packets=100, n_flows=3, duration=300.0)
        for flow_id in range(2, 4):
            assert scenario.stats[flow_id].final_ack > 20

    def test_mixed_variants_coexist(self):
        flows = [
            FlowSpec(variant="rr", amount_packets=100),
            FlowSpec(variant="reno", amount_packets=100),
            FlowSpec(variant="sack", amount_packets=100),
        ]
        scenario = build_dumbbell_scenario(
            flows=flows, params=DumbbellParams(n_pairs=3, buffer_packets=25)
        )
        scenario.sim.run(until=300.0)
        for flow_id in (1, 2, 3):
            assert scenario.senders[flow_id].completed
