"""Two-way traffic through a symmetric bottleneck (the paper's
reference [22], Zhang/Shenker/Clark): data in both directions makes
ACKs queue behind reverse-direction data — ACK compression — and can
even drop them.  Every scheme must survive it; RR's duplicate-ACK
clocking is exactly what is stressed."""

import pytest

from repro.config import TcpConfig
from repro.net.topology import Dumbbell, DumbbellParams
from repro.app.ftp import FtpSource
from repro.metrics.flowstats import FlowStats
from repro.sim.engine import Simulator
from repro.tcp.factory import make_connection


def build_two_way(variant, packets=150, n_pairs=2, buffer_packets=15):
    """Forward flows S_i -> K_i plus reverse flows K_i -> S_i."""
    sim = Simulator()
    bell = Dumbbell(
        sim,
        DumbbellParams(
            n_pairs=n_pairs,
            buffer_packets=buffer_packets,
            symmetric_bottleneck=True,
        ),
    )
    forward, reverse = [], []
    for i in range(1, n_pairs + 1):
        stats = FlowStats(flow_id=i)
        sender, _ = make_connection(
            sim, variant, i, bell.sender(i), bell.receiver(i), observer=stats
        )
        FtpSource(sim, sender, amount_packets=packets)
        forward.append((sender, stats))
        # Reverse-direction data: K_i -> S_i under a distinct flow id.
        reverse_id = 100 + i
        stats_r = FlowStats(flow_id=reverse_id)
        sender_r, _ = make_connection(
            sim, variant, reverse_id, bell.receiver(i), bell.sender(i),
            observer=stats_r,
        )
        FtpSource(sim, sender_r, amount_packets=packets, start_time=0.1)
        reverse.append((sender_r, stats_r))
    return sim, bell, forward, reverse


class TestSymmetricBottleneck:
    def test_reverse_queue_is_finite(self):
        sim = Simulator()
        bell = Dumbbell(
            sim, DumbbellParams(buffer_packets=15, symmetric_bottleneck=True)
        )
        assert bell.reverse_link.queue.limit == 15

    def test_default_reverse_queue_is_generous(self):
        sim = Simulator()
        bell = Dumbbell(sim, DumbbellParams(buffer_packets=15))
        assert bell.reverse_link.queue.limit >= 1000


class TestTwoWayTraffic:
    @pytest.mark.parametrize("variant", ["newreno", "sack", "rr"])
    def test_all_directions_complete(self, variant):
        sim, bell, forward, reverse = build_two_way(variant)
        sim.run(until=600.0)
        for sender, _ in forward + reverse:
            assert sender.completed, f"{variant} flow {sender.flow_id} stalled"

    def test_acks_really_contend(self):
        """The point of the symmetric setup: ACKs of forward flows
        queue behind reverse data (and some get dropped)."""
        sim, bell, forward, reverse = build_two_way("newreno", buffer_packets=8)
        sim.run(until=600.0)
        # Reverse bottleneck carried both reverse DATA and forward ACKs,
        # and its finite buffer dropped something.
        assert bell.reverse_link.queue.drops > 0
        for sender, _ in forward + reverse:
            assert sender.completed

    def test_rr_survives_ack_compression_without_collapse(self):
        sim, bell, forward, reverse = build_two_way("rr", buffer_packets=8)
        sim.run(until=600.0)
        total_timeouts = sum(s.timeouts for s, _ in forward)
        assert all(s.completed for s, _ in forward)
        # Not timeout-free (ACK losses can exhaust any dup-ACK scheme),
        # but it must stay out of a timeout-per-window collapse.
        packets = sum(s.packets_sent for s, _ in forward)
        assert total_timeouts < packets / 20
