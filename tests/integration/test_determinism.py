"""Determinism: identical configuration + seed => identical traces.

The paper leans on determinism for its Figure 5 methodology ("the TCP
behaviors in each simulation experiment are deterministic, and do not
change with different runs"); our engine must honour that bit-for-bit.
"""

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import DeterministicLoss, UniformLoss
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


def burst_trace(variant):
    loss = DeterministicLoss([(1, 50 + i) for i in range(4)])
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=150)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        forward_loss=loss,
    )
    scenario.sim.run(until=100.0)
    _, stats = scenario.flow(1)
    return stats.send_series, stats.ack_series


def random_trace(seed):
    rng = RngStream(seed, "loss")
    loss = UniformLoss(0.03, rng)
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=150)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        forward_loss=loss,
    )
    scenario.sim.run(until=200.0)
    _, stats = scenario.flow(1)
    return stats.send_series, stats.ack_series


def red_trace(seed):
    sim = Simulator()
    rng = RngStream(seed, "red")
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="rr", amount_packets=None) for _ in range(3)],
        params=DumbbellParams(n_pairs=3, buffer_packets=25),
        bottleneck_queue_factory=lambda name: RedQueue(
            sim, RedParams(), rng.substream(name), name=name
        ),
        sim=sim,
    )
    scenario.sim.run(until=5.0)
    return [scenario.stats[i].ack_series for i in (1, 2, 3)]


class TestDeterminism:
    def test_deterministic_burst_scenario_repeats_exactly(self):
        for variant in ("tahoe", "newreno", "sack", "rr"):
            assert burst_trace(variant) == burst_trace(variant)

    def test_seeded_random_loss_repeats_exactly(self):
        assert random_trace(42) == random_trace(42)

    def test_different_seeds_differ(self):
        assert random_trace(1) != random_trace(2)

    def test_red_scenario_repeats_exactly(self):
        assert red_trace(7) == red_trace(7)
