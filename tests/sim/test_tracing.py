"""Unit tests for the trace bus."""

from repro.sim.tracing import TraceBus, TraceRecord


def make_record(category="queue.drop", time=1.0, **fields):
    return TraceRecord(time=time, category=category, source="test", fields=fields)


class TestSubscription:
    def test_exact_category_delivery(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("queue.drop", seen.append)
        bus.publish(make_record("queue.drop"))
        bus.publish(make_record("tcp.send"))
        assert len(seen) == 1
        assert seen[0].category == "queue.drop"

    def test_wildcard_receives_everything(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish(make_record("a"))
        bus.publish(make_record("b"))
        assert [r.category for r in seen] == ["a", "b"]

    def test_multiple_subscribers_same_category(self):
        bus = TraceBus()
        first, second = [], []
        bus.subscribe("x", first.append)
        bus.subscribe("x", second.append)
        bus.publish(make_record("x"))
        assert len(first) == len(second) == 1

    def test_unsubscribe(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("x", seen.append)
        bus.unsubscribe("x", seen.append)
        bus.publish(make_record("x"))
        assert seen == []

    def test_has_subscribers(self):
        bus = TraceBus()
        assert not bus.has_subscribers("x")
        bus.subscribe("x", lambda r: None)
        assert bus.has_subscribers("x")

    def test_wildcard_counts_as_subscriber(self):
        bus = TraceBus()
        bus.subscribe("*", lambda r: None)
        assert bus.has_subscribers("anything")


class TestEmit:
    def test_emit_builds_record(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("tcp.send", seen.append)
        bus.emit(2.5, "tcp.send", "rr/f1", seqno=10)
        record = seen[0]
        assert record.time == 2.5
        assert record.source == "rr/f1"
        assert record.fields["seqno"] == 10

    def test_emit_without_subscribers_is_noop(self):
        bus = TraceBus()
        bus.emit(1.0, "nobody.cares", "x", value=1)  # must not raise

    def test_records_are_frozen(self):
        record = make_record()
        try:
            record.time = 99.0
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated


class TestSubscriberPruning:
    """Regression: unsubscribe used to leave an empty list behind,
    making ``has_subscribers`` (and the merged-list cache) report stale
    truthiness forever after."""

    def test_unsubscribe_prunes_empty_category(self):
        bus = TraceBus()
        fn = lambda r: None  # noqa: E731
        bus.subscribe("x", fn)
        bus.unsubscribe("x", fn)
        assert not bus.has_subscribers("x")
        assert "x" not in bus._subscribers

    def test_unsubscribe_keeps_remaining_subscribers(self):
        bus = TraceBus()
        seen = []
        gone = lambda r: None  # noqa: E731
        bus.subscribe("x", gone)
        bus.subscribe("x", seen.append)
        bus.unsubscribe("x", gone)
        assert bus.has_subscribers("x")
        bus.publish(make_record("x"))
        assert len(seen) == 1

    def test_wildcard_unsubscribe_prunes(self):
        bus = TraceBus()
        fn = lambda r: None  # noqa: E731
        bus.subscribe("*", fn)
        bus.unsubscribe("*", fn)
        assert not bus.has_subscribers("anything")


class TestMergedListCache:
    """The per-category merged (exact + wildcard) snapshot must be
    invalidated by every subscription change that affects it."""

    def test_subscribe_after_silent_emit_is_seen(self):
        bus = TraceBus()
        bus.emit(1.0, "x", "src", v=1)  # caches the empty merged list
        seen = []
        bus.subscribe("x", seen.append)
        bus.emit(2.0, "x", "src", v=2)
        assert [r.fields["v"] for r in seen] == [2]

    def test_wildcard_subscribe_invalidates_all_categories(self):
        bus = TraceBus()
        bus.emit(1.0, "x", "src")  # cache "x" with no listeners
        seen = []
        bus.subscribe("*", seen.append)
        bus.emit(2.0, "x", "src")
        assert len(seen) == 1

    def test_unsubscribe_stops_delivery_through_cache(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("x", seen.append)
        bus.emit(1.0, "x", "src")  # caches merged list with subscriber
        bus.unsubscribe("x", seen.append)
        bus.emit(2.0, "x", "src")
        assert len(seen) == 1

    def test_exact_and_wildcard_merge_once_each(self):
        bus = TraceBus()
        exact, everything = [], []
        bus.subscribe("x", exact.append)
        bus.subscribe("*", everything.append)
        bus.emit(1.0, "x", "src")
        bus.emit(2.0, "y", "src")
        assert len(exact) == 1
        assert len(everything) == 2
