"""The zero-cost tracing contract (docs/PERFORMANCE.md).

Three guarantees, each pinned here:

* an unsubscribed category costs the hot call site one attribute test —
  no ``TraceChannel.emit`` call, no kwargs dict, no ``TraceRecord``;
* subscribing mid-run re-enables the category immediately (cached
  channels track the bus's merged-subscriber lists live);
* observing a run does not perturb it: state digests are byte-identical
  with and without subscribers attached during the run.
"""

import pytest

import repro.sim.tracing as tracing
from repro.net.link import Link
from repro.net.packet import data_packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus, TraceChannel, TraceRecord
from repro.snapshot import state_digest
from repro.snapshot.golden import build_golden_scenario


class _Counts:
    emits = 0
    records = 0


@pytest.fixture
def counting_shims(monkeypatch):
    """Count every TraceChannel.emit call and TraceRecord allocation."""
    counts = _Counts()
    real_emit = TraceChannel.emit

    def counted_emit(self, time, source, **fields):
        counts.emits += 1
        return real_emit(self, time, source, **fields)

    class CountingRecord(TraceRecord):
        def __init__(self, *args, **kwargs):
            counts.records += 1
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(TraceChannel, "emit", counted_emit)
    monkeypatch.setattr(tracing, "TraceRecord", CountingRecord)
    return counts


class TestNoSubscriberFastPath:
    def test_clean_transfer_allocates_nothing(self, counting_shims):
        # A full golden transfer with FlowStats' drop watchers being the
        # only subscriptions: the per-packet categories (tcp.send,
        # tcp.ack, tcp.cwnd, link.tx) are unsubscribed, so their call
        # sites must skip emit() entirely, and the drop categories never
        # fire (run stops before the engineered burst) — zero channel
        # emits, zero record allocations, for thousands of packets.
        scenario = build_golden_scenario("rr")
        scenario.sim.run(until=1.0)  # pre-burst: clean slow start
        assert scenario.senders[1].maxseq > 10  # traffic actually flowed
        assert counting_shims.emits == 0
        assert counting_shims.records == 0

    def test_channel_emit_without_subscriber_builds_no_record(self, counting_shims):
        ch = TraceBus().channel("tcp.cwnd")
        ch.emit(1.0, "s1", cwnd=2.0)  # unconditional call is still correct
        assert counting_shims.emits == 1  # the call happened...
        assert counting_shims.records == 0  # ...but allocated nothing

    def test_bus_emit_without_subscriber_builds_no_record(self, counting_shims):
        TraceBus().emit(1.0, "link.drop", "A->B", reason="overflow")
        assert counting_shims.records == 0


class TestMidRunSubscribe:
    def test_subscribe_mid_run_reenables_category(self):
        scenario = build_golden_scenario("rr")
        sim, bus = scenario.sim, scenario.dumbbell.net.trace
        sim.run(until=1.0)
        seen = []
        bus.subscribe("tcp.cwnd", seen.append)
        sim.run(until=2.0)
        assert seen, "cached channels must pick up mid-run subscriptions"
        assert all(r.category == "tcp.cwnd" for r in seen)

    def test_unsubscribe_mid_run_disables_again(self):
        scenario = build_golden_scenario("rr")
        sim, bus = scenario.sim, scenario.dumbbell.net.trace
        seen = []
        bus.subscribe("tcp.cwnd", seen.append)
        sim.run(until=1.0)
        n = len(seen)
        assert n > 0
        bus.unsubscribe("tcp.cwnd", seen.append)
        sim.run(until=2.0)
        assert len(seen) == n

    def test_wildcard_mid_run_reaches_cached_channels(self):
        scenario = build_golden_scenario("rr")
        sim, bus = scenario.sim, scenario.dumbbell.net.trace
        sim.run(until=1.0)
        seen = []
        bus.subscribe("*", seen.append)
        sim.run(until=2.0)
        assert any(r.category == "link.tx" for r in seen)
        assert any(r.category.startswith("tcp.") for r in seen)


class TestObservationDoesNotPerturb:
    @pytest.mark.parametrize("variant", ["reno", "rr"])
    def test_digest_identical_with_and_without_subscribers(self, variant):
        silent = build_golden_scenario(variant)
        silent.sim.run(until=6.0)
        silent_digest = state_digest(silent)

        observed = build_golden_scenario(variant)
        seen = []
        bus = observed.dumbbell.net.trace
        bus.subscribe("*", seen.append)
        observed.sim.run(until=6.0)
        bus.unsubscribe("*", seen.append)
        assert seen, "the observed run must actually have traced"
        assert state_digest(observed) == silent_digest

    def test_traceless_link_behaves_like_unsubscribed_bus(self):
        def deliveries(trace):
            sim = Simulator()
            link = Link(sim, "A->B", 8000.0, 1.0, DropTailQueue(limit=10, name="q"),
                        trace=trace)
            arrivals = []

            class Sink:
                def receive(self, packet):
                    arrivals.append((sim.now, packet.seqno))

            link.connect(Sink())
            for i in range(5):
                sim.schedule_at(float(i) * 0.4, link.send,
                                data_packet(1, "S1", "K1", i, size=1000))
            sim.run()
            return arrivals

        assert deliveries(None) == deliveries(TraceBus())
