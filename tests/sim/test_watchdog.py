"""Unit tests for the engine watchdog."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams
from repro.sim.engine import Simulator
from repro.sim.watchdog import Watchdog


def stalled_scenario(variant="rr", packets=400):
    """A transfer whose forward path goes permanently dark mid-flight."""
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
    )
    scenario.sim.schedule(1.0, scenario.dumbbell.forward_link.set_down)
    return scenario


class TestStallDetection:
    def test_permanent_outage_trips_with_structured_report(self):
        scenario = stalled_scenario()
        watchdog = Watchdog(
            scenario.sim,
            senders=scenario.senders,
            stall_timeout=5.0,
            check_interval=0.5,
            trace=scenario.dumbbell.net.trace,
        ).arm()
        scenario.sim.run(until=600.0)

        assert watchdog.triggered
        report = watchdog.report
        assert report.reason == "stall"
        # The report names the stalled flow...
        assert report.stalled_flows == [1]
        # ...with a full state snapshot and recent trace evidence.
        assert len(report.flows) == 1
        snapshot = report.flows[0]
        assert snapshot.flow_id == 1
        assert snapshot.variant == "rr"
        assert not snapshot.completed
        assert snapshot.stalled_for > 5.0
        assert len(report.last_events) > 0
        assert "flow 1" in report.format()
        # The abort was graceful: the run loop returned early.
        assert scenario.sim.stop_reason == "watchdog: stall"
        assert scenario.sim.now < 600.0

    def test_healthy_transfer_never_trips(self):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant="newreno", amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        watchdog = Watchdog(
            scenario.sim,
            senders=scenario.senders,
            stall_timeout=5.0,
            check_interval=0.5,
        ).arm()
        scenario.sim.run(until=60.0)
        assert scenario.senders[1].completed
        # Completed flows refresh their marker: idle-after-done is not
        # a stall even though the run kept going long past completion.
        assert not watchdog.triggered
        assert watchdog.checks_performed > 50


class TestEventGuards:
    def test_event_storm_ceiling(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.001, storm)

        storm()
        watchdog = Watchdog(sim, stall_timeout=1e9, check_interval=0.1, max_events=500).arm()
        sim.run(until=1e9)
        assert watchdog.triggered
        assert watchdog.report.reason == "event-storm"
        assert watchdog.report.events_processed > 500

    def test_event_rate_ceiling(self):
        sim = Simulator()

        def storm():
            for _ in range(10):
                sim.schedule(1e-6, lambda: None)
            sim.schedule(1e-6, storm)

        storm()
        watchdog = Watchdog(
            sim, stall_timeout=1e9, check_interval=0.5, max_event_rate=100.0
        ).arm()
        sim.run(until=1e9)
        assert watchdog.triggered
        assert watchdog.report.reason == "event-rate"

    def test_wallclock_deadline(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)  # keep the queue alive past one tick
        watchdog = Watchdog(
            sim, stall_timeout=1e9, check_interval=1.0, max_wallclock=0.0
        ).arm()
        sim.run(until=100.0)
        assert watchdog.triggered
        assert watchdog.report.reason == "wallclock"


class TestLifecycle:
    def test_disarm_cancels_tick(self):
        sim = Simulator()
        watchdog = Watchdog(sim, check_interval=1.0).arm()
        assert sim.pending_events == 1
        watchdog.disarm()
        assert sim.pending_events == 0
        sim.run(until=100.0)
        assert not watchdog.triggered

    def test_arm_is_idempotent(self):
        sim = Simulator()
        watchdog = Watchdog(sim, check_interval=1.0)
        watchdog.arm()
        watchdog.arm()
        assert sim.pending_events == 1

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Watchdog(sim, stall_timeout=0.0)
        with pytest.raises(ConfigurationError):
            Watchdog(sim, check_interval=-1.0)
