"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(3.5)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(4.0)]

    def test_schedule_from_within_event(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_flags(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.pending and not event.fired
        sim.run()
        assert event.fired and not event.pending

    def test_clear_cancels_everything(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0 + i, fired.append, i)
        sim.clear()
        sim.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 2)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)

    def test_run_until_resumes_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 2)
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == [1, 2]

    def test_run_advances_clock_to_until_with_no_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == pytest.approx(7.0)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0 + i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_pending_events_counter(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        event.cancel()
        assert sim.pending_events == 1

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek_time() == pytest.approx(3.0)


class TestNegativeDelayClamp:
    def test_float_epsilon_delay_clamps_to_now(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule(-1e-12, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 10.0

    def test_schedule_at_accumulated_roundoff(self):
        """Absolute-time scheduling after many 0.1s hops must not blow
        up on the sub-epsilon negative delay FP addition produces."""
        sim = Simulator()
        for _ in range(1000):
            sim.schedule(0.0, lambda: None)
            sim.run()
            sim.schedule(0.1, lambda: None)
            sim.run()
        # 1000 * 0.1 accumulated: sim.now != 100.0 exactly.
        target = sim.now - 5e-13  # epsilon in the past
        fired = []
        sim.schedule_at(target, fired.append, "ok")
        sim.run()
        assert fired == ["ok"]

    def test_genuinely_negative_delay_still_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-1e-6, lambda: None)


class TestRunClockAdvance:
    def test_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_after_drain_still_advances(self):
        """The early-exit path (max_events hit once the queue is empty)
        must leave the same clock as a plain run-to-until."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        fired = sim.run(until=10.0, max_events=2)
        assert fired == 2
        assert sim.now == 10.0

    def test_max_events_mid_stream_does_not_jump_events(self):
        """With events still due before ``until``, stopping early must
        NOT advance the clock past them."""
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        fired = sim.run(until=10.0, max_events=2)
        assert fired == 2
        assert sim.now == 2.0
        # Resuming picks up the remaining event, then advances.
        fired = sim.run(until=10.0)
        assert fired == 1
        assert sim.now == 10.0

    def test_run_returns_fired_count(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        assert sim.run() == 2


class TestRequestStop:
    def test_stop_from_callback_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.request_stop("done")))
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=10.0)
        assert fired == [1]
        assert sim.stop_requested
        assert sim.stop_reason == "done"
        # The stopped run did not advance past the still-due event.
        assert sim.now == 1.0

    def test_stop_state_clears_on_next_run(self):
        sim = Simulator()
        sim.schedule(1.0, sim.request_stop)
        sim.run()
        assert sim.stop_requested
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        assert not sim.stop_requested
        assert sim.stop_reason is None
        assert sim.now == 5.0


class TestPendingCounter:
    def test_counter_tracks_schedule_cancel_fire(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        events[0].cancel()
        events[0].cancel()  # idempotent: no double decrement
        assert sim.pending_events == 4
        sim.step()  # fires the t=2 event
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending_events == 0

    def test_counter_matches_heap_scan(self):
        """The O(1) counter agrees with a brute-force pending scan
        under a mixed schedule/cancel/fire workload."""
        sim = Simulator()
        events = []
        for i in range(50):
            events.append(sim.schedule(float(i % 7) + 1.0, lambda: None))
            if i % 3 == 0:
                events[i // 2].cancel()
            if i % 11 == 0:
                sim.step()
        assert sim.pending_events == sum(1 for e in events if e.pending)

    def test_clear_zeroes_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.clear()
        assert sim.pending_events == 0


class TestCallbackHardening:
    def test_foreign_exception_wrapped_with_context(self):
        from repro.errors import CallbackError

        sim = Simulator()

        def boom():
            raise ValueError("kapow")

        sim.schedule(1.5, boom)
        with pytest.raises(CallbackError) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert excinfo.value.sim_time == 1.5
        assert "kapow" in str(excinfo.value)
        assert excinfo.value.event is not None

    def test_repro_error_passes_through_with_sim_context(self):
        from repro.errors import ProtocolError

        sim = Simulator()

        def boom():
            raise ProtocolError("bad state")

        sim.schedule(2.0, boom)
        with pytest.raises(ProtocolError) as excinfo:
            sim.run()
        context = excinfo.value.sim_context
        assert context["sim_time"] == 2.0
        assert context["events_processed"] == 1


class TestHeapCompaction:
    def test_cancel_heavy_workload_keeps_heap_bounded(self):
        """A restarted-timer pattern (schedule far out, cancel, repeat)
        must not accumulate lazily-deleted entries: the heap compacts
        once cancelled entries outnumber live ones."""
        sim = Simulator()
        live = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for i in range(5000):
            sim.schedule(500.0 + i, lambda: None).cancel()
        from repro.sim.engine import HEAP_COMPACT_MIN

        assert len(sim._heap) <= 2 * max(sim.pending_events, HEAP_COMPACT_MIN)
        assert sim.pending_events == 10
        assert all(e.pending for e in live)

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(400):
            event = sim.schedule(float(i) + 1.0, fired.append, i)
            if i % 2:
                event.cancel()
            else:
                keep.append(i)
        sim.run()
        assert fired == keep

    def test_tiny_heaps_never_compact(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        # 9 cancelled of 10 is below the compaction floor: lazy entries
        # are allowed to sit (rebuilding tiny heaps isn't worth it).
        assert len(sim._heap) == 10
        assert sim.pending_events == 1

    def test_clear_with_pending_compaction_is_safe(self):
        sim = Simulator()
        for i in range(500):
            sim.schedule(float(i + 1), lambda: None)
        sim.clear()
        assert sim.pending_events == 0
        assert len(sim._heap) == 0
        assert sim._cancelled_in_heap == 0


def _noop():
    pass


class TestEnginePickle:
    def test_roundtrip_preserves_schedule(self):
        import pickle

        fired = []
        sim = Simulator()
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        cancelled = sim.schedule(1.5, fired.append, "x")
        cancelled.cancel()
        sim.run(until=0.5)

        clone = pickle.loads(pickle.dumps(sim))
        assert clone.now == sim.now
        assert clone.pending_events == 2
        clone.run()
        # The clone fires its *own* copies of the callbacks: its append
        # targets the unpickled list, so the original stays untouched.
        assert fired == []

    def test_serial_counter_position_preserved(self):
        import pickle

        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, _noop)
        clone = pickle.loads(pickle.dumps(sim))
        event = clone.schedule(2.0, _noop)
        assert event.serial == 5

    def test_pickle_while_running_refuses(self):
        import pickle

        sim = Simulator()
        errors = []

        def grab():
            try:
                pickle.dumps(sim)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, grab)
        sim.run()
        assert len(errors) == 1
