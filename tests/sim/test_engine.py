"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(3.5)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(4.0)]

    def test_schedule_from_within_event(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_flags(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.pending and not event.fired
        sim.run()
        assert event.fired and not event.pending

    def test_clear_cancels_everything(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0 + i, fired.append, i)
        sim.clear()
        sim.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 2)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)

    def test_run_until_resumes_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 2)
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == [1, 2]

    def test_run_advances_clock_to_until_with_no_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == pytest.approx(7.0)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0 + i, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_pending_events_counter(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        event.cancel()
        assert sim.pending_events == 1

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek_time() == pytest.approx(3.0)
