"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStream(42, "x")
        b = RngStream(42, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_decorrelate(self):
        a = RngStream(42, "red")
        b = RngStream(42, "loss")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1, "x")
        b = RngStream(2, "x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_substream_is_deterministic(self):
        a = RngStream(7, "root").substream("child")
        b = RngStream(7, "root").substream("child")
        assert a.random() == b.random()

    def test_substream_differs_from_parent(self):
        parent = RngStream(7, "root")
        child = RngStream(7, "root").substream("child")
        assert parent.random() != child.random()


class TestDistributions:
    def test_uniform_range(self):
        rng = RngStream(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_range(self):
        rng = RngStream(1)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_bernoulli_edge_cases(self):
        rng = RngStream(1)
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_bernoulli_rate(self):
        rng = RngStream(1)
        hits = sum(rng.bernoulli(0.3) for _ in range(10_000))
        assert 2500 < hits < 3500

    def test_choice_and_sample(self):
        rng = RngStream(3)
        population = [1, 2, 3, 4, 5]
        assert rng.choice(population) in population
        sample = rng.sample(population, 3)
        assert len(sample) == 3
        assert set(sample) <= set(population)

    def test_shuffle_preserves_elements(self):
        rng = RngStream(3)
        items = list(range(10))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        rng = RngStream(4)
        assert all(rng.expovariate(2.0) >= 0 for _ in range(100))


class TestCheckpointRoundtrip:
    def test_getstate_setstate_replays_draws(self):
        rng = RngStream(42, "loss")
        rng.random()  # advance past the seed position
        state = rng.getstate()
        first = [rng.random() for _ in range(20)]
        rng.setstate(state)
        assert [rng.random() for _ in range(20)] == first

    def test_state_restores_onto_fresh_stream(self):
        a = RngStream(42, "loss")
        a.expovariate(2.0)
        state = a.getstate()
        b = RngStream(42, "loss")
        b.setstate(state)
        assert [b.random() for _ in range(10)] == [a.random() for _ in range(10)]

    def test_state_survives_pickle(self):
        import pickle

        rng = RngStream(7, "red")
        rng.random()
        state = pickle.loads(pickle.dumps(rng.getstate()))
        fresh = RngStream(7, "red")
        fresh.setstate(state)
        assert fresh.random() == rng.random()

    def test_mismatched_identity_rejected(self):
        import pytest

        state = RngStream(42, "loss").getstate()
        other = RngStream(42, "red")
        with pytest.raises(ValueError, match="belongs to stream"):
            other.setstate(state)
        with pytest.raises(ValueError, match="belongs to stream"):
            RngStream(43, "loss").setstate(state)

    def test_unknown_tag_rejected(self):
        import pytest

        rng = RngStream(1, "x")
        tag, seed, name, inner = rng.getstate()
        with pytest.raises(ValueError, match="tag"):
            rng.setstate(("RngStream.v999", seed, name, inner))
        with pytest.raises(ValueError, match="not an RngStream state"):
            rng.setstate("garbage")
