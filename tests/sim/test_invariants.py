"""Unit tests for the online invariant checkers."""

import pytest

from repro.errors import InvariantViolation
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.topology import DumbbellParams
from repro.sim.invariants import (
    AckMonotonicity,
    InvariantSuite,
    QueueOccupancyBounds,
    RecoverMonotonic,
    RedAverageBounds,
    RrStateSanity,
    SendWindowSanity,
    standard_suite,
)
from repro.sim.tracing import TraceBus, TraceTail


def make_suite(*checkers, tail_size=50):
    suite = InvariantSuite(tail_size=tail_size)
    for checker in checkers:
        suite.add(checker)
    bus = TraceBus()
    suite.install(bus)
    return suite, bus


class TestAckMonotonicity:
    def test_regressing_ack_raises_with_tail(self):
        suite, bus = make_suite(AckMonotonicity())
        bus.emit(1.0, "tcp.ack", "rr/f1", ackno=5)
        with pytest.raises(InvariantViolation) as excinfo:
            bus.emit(2.0, "tcp.ack", "rr/f1", ackno=3)
        violation = excinfo.value
        assert violation.invariant == "ack-monotonic"
        assert violation.record.fields["ackno"] == 3
        # The offending record itself is part of the attached evidence.
        assert len(violation.tail) == 2
        assert violation.tail[-1] is violation.record
        assert "regressed" in str(violation)

    def test_flows_tracked_independently(self):
        suite, bus = make_suite(AckMonotonicity())
        bus.emit(1.0, "tcp.ack", "rr/f1", ackno=5)
        bus.emit(2.0, "tcp.ack", "rr/f2", ackno=1)  # different flow: fine
        bus.emit(3.0, "tcp.ack", "rr/f1", ackno=5)  # equal: fine

    def test_format_tail_renders_lines(self):
        suite, bus = make_suite(AckMonotonicity())
        bus.emit(1.0, "tcp.ack", "rr/f1", ackno=5)
        with pytest.raises(InvariantViolation) as excinfo:
            bus.emit(2.0, "tcp.ack", "rr/f1", ackno=0)
        rendered = excinfo.value.format_tail()
        assert "tcp.ack" in rendered and "rr/f1" in rendered


class TestSendWindowSanity:
    def test_una_beyond_nxt_raises(self):
        suite, bus = make_suite(SendWindowSanity())
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "tcp.send", "rr/f1", snd_una=9, snd_nxt=5)

    def test_nxt_beyond_maxseq_raises(self):
        suite, bus = make_suite(SendWindowSanity())
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "tcp.ack", "rr/f1", snd_una=1, snd_nxt=7, maxseq=5)

    def test_healthy_pointers_pass(self):
        suite, bus = make_suite(SendWindowSanity())
        bus.emit(1.0, "tcp.send", "rr/f1", snd_una=2, snd_nxt=6, maxseq=6)


class TestRrStateSanity:
    def test_negative_actnum_raises(self):
        suite, bus = make_suite(RrStateSanity())
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "tcp.rr", "rr/f1", phase="retreat", actnum=-1, ndup=0)

    def test_negative_ndup_raises(self):
        suite, bus = make_suite(RrStateSanity())
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "tcp.rr", "rr/f1", phase="probe", actnum=3, ndup=-2)


class TestRecoverMonotonic:
    def test_regression_within_episode_raises(self):
        suite, bus = make_suite(RecoverMonotonic())
        bus.emit(1.0, "tcp.recovery_enter", "rr/f1", recover=100)
        bus.emit(1.5, "tcp.rr", "rr/f1", recover=120)  # extend: fine
        with pytest.raises(InvariantViolation):
            bus.emit(2.0, "tcp.rr", "rr/f1", recover=90)

    def test_timeout_legitimately_resets_tracking(self):
        suite, bus = make_suite(RecoverMonotonic())
        bus.emit(1.0, "tcp.recovery_enter", "rr/f1", recover=100)
        bus.emit(1.5, "tcp.timeout", "rr/f1", snd_una=50)
        # After the episode ended, a lower recover is legal.
        bus.emit(2.0, "tcp.recovery_enter", "rr/f1", recover=60)
        bus.emit(2.5, "tcp.rr", "rr/f1", recover=60)

    def test_exit_ends_episode(self):
        suite, bus = make_suite(RecoverMonotonic())
        bus.emit(1.0, "tcp.recovery_enter", "rr/f1", recover=100)
        bus.emit(1.5, "tcp.recovery_exit", "rr/f1")
        bus.emit(2.0, "tcp.recovery_enter", "rr/f1", recover=40)


class FakeQueue:
    def __init__(self, occupancy, limit=10, avg=None, name="fake"):
        self._occupancy = occupancy
        self.limit = limit
        self.name = name
        if avg is not None:
            self.avg = avg

    def __len__(self):
        return self._occupancy


class TestQueueProbes:
    def test_occupancy_over_limit_raises(self):
        queue = FakeQueue(occupancy=11, limit=10)
        suite, bus = make_suite(QueueOccupancyBounds(queue))
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "anything", "x")

    def test_red_average_out_of_bounds_raises(self):
        queue = FakeQueue(occupancy=3, limit=10, avg=10.5)
        suite, bus = make_suite(RedAverageBounds(queue))
        with pytest.raises(InvariantViolation):
            bus.emit(1.0, "anything", "x")

    def test_watch_queue_adds_red_probe_only_when_avg_exists(self):
        plain = FakeQueue(occupancy=0, limit=10)
        red = FakeQueue(occupancy=0, limit=10, avg=1.0)
        suite = InvariantSuite()
        suite.watch_queue(plain)
        suite.watch_queue(red)
        names = [type(c).__name__ for c in suite.checkers]
        assert names.count("QueueOccupancyBounds") == 2
        assert names.count("RedAverageBounds") == 1


class TestSuiteMechanics:
    def test_double_install_rejected(self):
        suite = InvariantSuite()
        bus = TraceBus()
        suite.install(bus)
        with pytest.raises(ValueError):
            suite.install(TraceBus())

    def test_uninstall_stops_checking(self):
        suite, bus = make_suite(AckMonotonicity())
        bus.emit(1.0, "tcp.ack", "rr/f1", ackno=5)
        suite.uninstall()
        bus.emit(2.0, "tcp.ack", "rr/f1", ackno=0)  # unseen: no raise

    def test_tail_capacity_bounds_evidence(self):
        suite, bus = make_suite(AckMonotonicity(), tail_size=3)
        for i in range(10):
            bus.emit(float(i), "tcp.ack", "rr/f1", ackno=i)
        with pytest.raises(InvariantViolation) as excinfo:
            bus.emit(11.0, "tcp.ack", "rr/f1", ackno=0)
        assert len(excinfo.value.tail) == 3

    def test_tail_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceTail(0)


class TestCleanRealRuns:
    @pytest.mark.parametrize("variant", ["tahoe", "newreno", "sack", "rr"])
    def test_standard_suite_silent_on_healthy_transfer(self, variant):
        scenario = build_dumbbell_scenario(
            flows=[FlowSpec(variant=variant, amount_packets=200)],
            params=DumbbellParams(n_pairs=1, buffer_packets=25),
        )
        suite = standard_suite(queues=[scenario.dumbbell.bottleneck_queue])
        suite.install(scenario.dumbbell.net.trace)
        # A mid-transfer outage exercises recovery under the checkers.
        scenario.dumbbell.forward_link.schedule_outage(start=1.0, duration=0.15)
        scenario.sim.run(until=300.0)
        assert scenario.senders[1].completed
        assert suite.records_seen > 0
        # The tcp categories actually reached the checkers.
        ack_checker = next(c for c in suite.checkers if c.name == "ack-monotonic")
        assert ack_checker.records_checked > 0
