"""Watchdog.scaled: budgets derive from scene size, floored at classics."""

from repro.sim.engine import Simulator
from repro.sim.watchdog import Watchdog


def test_small_scene_keeps_classic_floors():
    dog = Watchdog.scaled(Simulator(), {}, flows=8, duration=10.0)
    assert dog.stall_timeout == 60.0
    assert dog.check_interval == 1.0
    assert dog.max_events == Watchdog.SCALED_MIN_EVENTS
    assert dog.max_event_rate == Watchdog.SCALED_MIN_RATE


def test_budgets_scale_with_flows_times_duration():
    dog = Watchdog.scaled(Simulator(), {}, flows=1000, duration=120.0)
    assert dog.max_events == int(
        Watchdog.SCALED_EVENTS_PER_FLOW_SECOND * 1000 * 120.0
    )
    assert dog.max_event_rate == Watchdog.SCALED_RATE_PER_FLOW * 1000
    # A thousand-way fair share legitimately starves single flows for a
    # long time: the stall budget widens to the full scene duration.
    assert dog.stall_timeout == 120.0
    assert dog.check_interval == 6.0


def test_degenerate_sizes_are_clamped():
    dog = Watchdog.scaled(Simulator(), {}, flows=0, duration=0.0)
    assert dog.stall_timeout == 60.0
    assert dog.max_events == Watchdog.SCALED_MIN_EVENTS


def test_arm_returns_self_and_ticks():
    sim = Simulator()
    dog = Watchdog.scaled(sim, {}, flows=50, duration=2.0)
    assert dog.arm() is dog
    sim.run(until=2.5)
    assert dog.checks_performed >= 1
    assert not dog.triggered


def test_scene_watchdog_is_scaled_and_armed():
    from repro.scenes import FlowPopulation, SceneSpec, build_scene

    scene = build_scene(SceneSpec(flows=FlowPopulation(count=4), duration=2.0))
    dog = scene.watchdog()
    assert dog.max_events >= Watchdog.SCALED_MIN_EVENTS
    # Already armed: the first tick is on the calendar.
    scene.sim.run(until=1.5)
    assert dog.checks_performed >= 1
