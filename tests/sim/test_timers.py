"""Unit tests for restartable timers."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.timers import Timer


@pytest.fixture
def sim():
    return Simulator()


class TestTimerBasics:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [pytest.approx(2.0)]

    def test_not_pending_initially(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.pending

    def test_pending_while_armed(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        assert timer.pending
        assert timer.expiry == pytest.approx(1.0)

    def test_not_pending_after_fire(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.pending

    def test_stop_prevents_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_stop_is_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.stop()
        timer.stop()

    def test_restart_replaces_expiration(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.restart(5.0)
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_rearm_from_callback(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))

        def callback():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer._callback = callback
        timer.start(1.0)
        sim.run()
        assert len(fired) == 3


class TestGranularity:
    def test_rounds_up_to_tick(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), granularity=0.5)
        timer.start(1.2)
        sim.run()
        assert fired == [pytest.approx(1.5)]

    def test_exact_multiple_not_rounded(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), granularity=0.5)
        timer.start(1.0)
        sim.run()
        assert fired == [pytest.approx(1.0)]

    def test_minimum_one_tick(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), granularity=0.1)
        timer.start(0.001)
        sim.run()
        assert fired == [pytest.approx(0.1)]

    def test_negative_granularity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            Timer(sim, lambda: None, granularity=-1.0)

    def test_zero_granularity_is_exact(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), granularity=0.0)
        timer.start(0.123)
        sim.run()
        assert fired == [pytest.approx(0.123)]
