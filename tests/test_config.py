"""Unit tests for TcpConfig validation."""

import pytest

from repro.config import TcpConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_packet_sizes(self):
        config = TcpConfig()
        assert config.mss_bytes == 1000
        assert config.ack_bytes == 40

    def test_delayed_ack_off_by_default(self):
        assert not TcpConfig().delayed_ack

    def test_dupack_threshold_is_three(self):
        assert TcpConfig().dupack_threshold == 3

    def test_default_validates(self):
        TcpConfig().validate()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mss_bytes": 0},
            {"ack_bytes": 0},
            {"initial_cwnd": 0.5},
            {"receiver_window": 0},
            {"dupack_threshold": 0},
            {"min_rto": 0.0},
            {"min_rto": 2.0, "max_rto": 1.0},
            {"initial_rto": 0.0},
            {"timer_granularity": -0.1},
            {"max_burst": -1},
            {"sack_block_limit": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TcpConfig(**kwargs).validate()


class TestWith:
    def test_with_returns_modified_copy(self):
        base = TcpConfig()
        changed = base.with_(receiver_window=128)
        assert changed.receiver_window == 128
        assert base.receiver_window == 64  # original untouched

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            TcpConfig().with_(receiver_window=0)

    def test_frozen(self):
        config = TcpConfig()
        with pytest.raises(Exception):
            config.mss_bytes = 99
