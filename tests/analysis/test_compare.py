"""Tests for the variant-comparison analysis API."""

import pytest

from repro.analysis.compare import (
    ComparisonConfig,
    compare_variants,
    format_comparison,
)
from repro.errors import ConfigurationError

SCENARIO = {
    "topology": {"n_pairs": 1, "buffer_packets": 25},
    "tcp": {"receiver_window": 64, "initial_ssthresh": 20},
    "loss": {"kind": "uniform", "rate": 0.02},
    "flows": [{"variant": "rr", "packets": 150}],
    "duration": 300.0,
}


@pytest.fixture(scope="module")
def result():
    config = ComparisonConfig(
        scenario=SCENARIO, variants=("newreno", "rr"), seeds=(1, 2, 3)
    )
    return compare_variants(config)


class TestCampaign:
    def test_all_variants_summarised(self, result):
        assert set(result.summaries) == {"newreno", "rr"}

    def test_metrics_present(self, result):
        for variant in ("newreno", "rr"):
            metrics = result.summaries[variant]
            assert set(metrics) == {
                "complete_time", "goodput_bps", "retransmits", "timeouts", "drops",
            }
            assert metrics["complete_time"].n == 3

    def test_goodput_positive(self, result):
        for variant in ("newreno", "rr"):
            assert result.metric(variant, "goodput_bps").mean > 0

    def test_ranking_orders_by_mean(self, result):
        order = result.ranking("complete_time")
        means = [result.metric(v, "complete_time").mean for v in order]
        assert means == sorted(means)

    def test_ranking_higher_is_better(self, result):
        order = result.ranking("goodput_bps", lower_is_better=False)
        means = [result.metric(v, "goodput_bps").mean for v in order]
        assert means == sorted(means, reverse=True)

    def test_report_renders(self, result):
        text = format_comparison(result)
        assert "done at s" in text
        assert "rr" in text and "newreno" in text


class TestValidation:
    def test_unbounded_flow_rejected(self):
        bad = dict(SCENARIO)
        bad["flows"] = [{"variant": "rr"}]
        with pytest.raises(ConfigurationError):
            compare_variants(ComparisonConfig(scenario=bad))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_variants(ComparisonConfig(scenario=SCENARIO, variants=()))
        with pytest.raises(ConfigurationError):
            compare_variants(ComparisonConfig(scenario=SCENARIO, seeds=()))

    def test_original_spec_not_mutated(self):
        spec = {
            "flows": [{"variant": "rr", "packets": 60}],
            "duration": 120.0,
        }
        compare_variants(
            ComparisonConfig(scenario=spec, variants=("newreno",), seeds=(1,))
        )
        assert spec["flows"][0]["variant"] == "rr"
        assert "seed" not in spec
