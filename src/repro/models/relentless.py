"""Analytic throughput model of Relentless TCP (Diana & Lochin).

Diana & Lochin (*An Analytical Model of TCP Relentless Congestion
Control*, PAPERS.md) model Mathis-style Relentless — decrease ``cwnd``
only by the number of lost segments — under random per-packet loss.
The fluid balance is immediate: congestion avoidance adds one segment
per RTT while loss removes ``p * W`` segments per RTT (each of the
``W`` packets of a round dies independently with probability ``p`` and
costs exactly one segment of window), so the window settles where the
two cancel:

    1 = p * W*        =>        W* = 1 / p      (capped by Wmax)

and throughput is ``W* * MSS / RTT``.  Contrast Reno's
``W* = sqrt(3/2) / sqrt(p)`` (:mod:`repro.models.mathis`): Relentless
scales as ``1/p``, not ``1/sqrt(p)`` — at ``p = 1%`` the model gives a
100-packet window where Reno sustains ~12.  This is the analytic
oracle behind the ``relentless-model`` cells of
``python -m repro.experiments rivals``: a solo Relentless flow over a
uniform-loss link must land inside a tolerance band of the model, and
the verdict is recorded in the run manifest like the PR 8 mean-field
verdicts.

Validity limits (mirrored in the default tolerances): the fluid model
ignores timeouts, slow start and the dupack-threshold detection floor,
so it is an *upper* anchor at high loss (where three dup ACKs get
scarce) and exact only in the loss-limited regime ``1/p < Wmax``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RelentlessModelParams:
    """Inputs: one Relentless flow over a fixed-rate lossy path."""

    loss_rate: float          # per-packet drop probability p, in (0, 1)
    base_rtt: float           # propagation RTT, seconds
    bandwidth_bps: float      # bottleneck rate (caps the prediction)
    mss_bytes: int = 1000
    max_window: float = 64.0  # receiver-window cap, packets

    def validate(self) -> None:
        if not 0.0 < self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in (0, 1), got {self.loss_rate}"
            )
        if self.base_rtt <= 0:
            raise ConfigurationError("base_rtt must be positive")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.mss_bytes < 1:
            raise ConfigurationError("mss_bytes must be >= 1")
        if self.max_window <= 0:
            raise ConfigurationError("max_window must be positive")


@dataclass(frozen=True)
class RelentlessPrediction:
    """The model's equilibrium operating point."""

    window_pkts: float       # W* = min(1/p, Wmax)
    throughput_bps: float    # W* * MSS * 8 / RTT, capped at capacity
    # "loss-limited" (W* = 1/p), "window-limited" (receiver window
    # binds) or "capacity-limited" (the link rate binds first).
    regime: str


def relentless_window(loss_rate: float, max_window: float = float("inf")) -> float:
    """Diana & Lochin equilibrium window: ``min(1/p, Wmax)``."""
    if not 0.0 < loss_rate < 1.0:
        raise ConfigurationError(f"loss_rate must be in (0, 1), got {loss_rate}")
    return min(1.0 / loss_rate, max_window)


def relentless_prediction(params: RelentlessModelParams) -> RelentlessPrediction:
    """Evaluate the model at ``params`` (see module docstring)."""
    params.validate()
    w_star = relentless_window(params.loss_rate, params.max_window)
    regime = "window-limited" if w_star >= params.max_window else "loss-limited"
    # RTT: propagation only — the solo-flow oracle cells use DropTail
    # buffers the flow never fills at equilibrium (W* below the BDP),
    # so queueing delay is second-order and absorbed by the tolerance.
    demand_bps = w_star * params.mss_bytes * 8.0 / params.base_rtt
    if demand_bps >= params.bandwidth_bps:
        # The delivered rate rides the link; the standing queue then
        # stretches the RTT, but throughput is simply capacity.
        return RelentlessPrediction(
            window_pkts=w_star,
            throughput_bps=params.bandwidth_bps,
            regime="capacity-limited",
        )
    return RelentlessPrediction(
        window_pkts=w_star, throughput_bps=demand_bps, regime=regime
    )


# ----------------------------------------------------------------------
# oracle verdict
# ----------------------------------------------------------------------

#: Tolerances for the rivals-grid oracle cells.  The fluid model is a
#: mean; a finite run adds slow start, recovery pauses, the occasional
#: RTO (the model has none) and binomial loss-count noise, all of which
#: pull *down* from the fluid line — hence a generous relative band and
#: a small absolute floor for the near-zero-throughput corner.
THROUGHPUT_REL_TOL = 0.40
THROUGHPUT_ABS_TOL_BPS = 20_000.0
WINDOW_REL_TOL = 0.45


@dataclass(frozen=True)
class RelentlessVerdict:
    """Pass/fail comparison of a measured run against the model."""

    passed: bool
    throughput_ok: bool
    window_ok: bool
    measured_bps: float
    predicted_bps: float
    measured_window: float
    predicted_window: float
    loss_rate: float
    regime: str

    def format(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"relentless-model {mark} [{self.regime} p={self.loss_rate:.3f}]: "
            f"goodput {self.measured_bps / 1e3:.0f} vs "
            f"{self.predicted_bps / 1e3:.0f} kbps "
            f"({'ok' if self.throughput_ok else 'OUT'}), "
            f"window {self.measured_window:.1f} vs "
            f"{self.predicted_window:.1f} pkts "
            f"({'ok' if self.window_ok else 'OUT'})"
        )


def _within(measured: float, predicted: float, rel: float, abs_floor: float) -> bool:
    return abs(measured - predicted) <= max(abs_floor, rel * predicted)


def relentless_verdict(
    params: RelentlessModelParams,
    measured_bps: float,
    measured_window: float,
    throughput_rel_tol: float = THROUGHPUT_REL_TOL,
    throughput_abs_tol_bps: float = THROUGHPUT_ABS_TOL_BPS,
    window_rel_tol: float = WINDOW_REL_TOL,
) -> RelentlessVerdict:
    """Compare a measured solo-Relentless run against the model.

    ``measured_window`` is the time-average cwnd over the measurement
    span; pass ``nan`` to skip the window check (throughput-only
    gate)."""
    prediction = relentless_prediction(params)
    throughput_ok = _within(
        measured_bps,
        prediction.throughput_bps,
        throughput_rel_tol,
        throughput_abs_tol_bps,
    )
    if math.isnan(measured_window):
        window_ok = True
    else:
        window_ok = _within(
            measured_window, prediction.window_pkts, window_rel_tol, 0.0
        )
    return RelentlessVerdict(
        passed=throughput_ok and window_ok,
        throughput_ok=throughput_ok,
        window_ok=window_ok,
        measured_bps=measured_bps,
        predicted_bps=prediction.throughput_bps,
        measured_window=measured_window,
        predicted_window=prediction.window_pkts,
        loss_rate=params.loss_rate,
        regime=prediction.regime,
    )
