"""Mean-field model of many TCP flows through one RED bottleneck.

McDonald & Reynier ("Mean field convergence of a model of multiple TCP
connections through a buffer implementing RED", see PAPERS.md) prove
that as the flow count grows, the coupled system (many AIMD windows,
one shared RED queue) converges to a deterministic fixed point: the
queue average settles where the aggregate Mathis-style demand of the
flows exactly fills the link.  That fixed point is an *analytic*
oracle for big scenes — a scale where no golden digests exist — and is
what ``python -m repro.experiments manyflow`` checks the simulator
against (see docs/SCENARIOS.md for the tolerance discussion).

The balance equation solved by :func:`meanfield_fixed_point`:

    N * W(p_eff(q)) / RTT(q) = C        [packets / second]

with

* ``W(p) = min(c / sqrt(p), Wmax)`` — the Mathis window under loss
  rate ``p``, capped by the receiver window;
* ``p_eff(q)`` — the per-packet drop probability of a RED gateway
  whose average queue sits at ``q``.  RED's count mechanism spaces
  early drops uniformly (the number of accepted packets between drops
  is ~Uniform{1..1/p_b}), so the effective drop rate is about twice
  the raw curve: ``p_eff = 2 p_b / (1 + p_b)``;
* ``RTT(q) = base_rtt + q * pkt_time`` — propagation plus the queueing
  delay behind ``q`` packets;
* ``C`` — bottleneck capacity in packets per second.

The left side is strictly decreasing in ``q`` (windows shrink, RTTs
grow), so the root is found by bisection.  Three regimes come out:

* ``window-limited`` — even at zero loss the flows cannot fill the
  link (receiver-window bound); queue sits below ``min_th``;
* ``early-drop`` — the fixed point lands on RED's linear ramp
  (the regime the mean-field theorem describes);
* ``early-drop-corner`` — the fixed point lands in the bottom
  :data:`CORNER_RAMP_FRACTION` of the ramp.  A steep effective slope
  there makes the closed loop oscillatory (the control-theoretic RED
  stability results): the averaged queue repeatedly dips below
  ``min_th`` and drops arrive in bursts during the excursions, so the
  *time-average* queue sits well below the quasi-static fixed point
  while the loss rate still matches (demand, not RED detail, sets it).
  The fixed point is then an upper envelope, and the oracle gates the
  queue one-sidedly;
* ``forced`` — demand exceeds capacity even at ``max_p``; the average
  rides the forced-drop cliff at ``max_th`` (or ``2*max_th`` when
  gentle) and loss is set by capacity sharing alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.models.mathis import MATHIS_C_ACK_EVERY_PACKET
from repro.net.red import RedParams


@dataclass(frozen=True)
class MeanFieldParams:
    """Inputs of the fixed point (one bottleneck, N homogeneous flows)."""

    n_flows: int
    bandwidth_bps: float
    base_rtt: float
    red: RedParams = field(default_factory=RedParams)
    mss_bytes: int = 1000
    #: Receiver-window cap on the per-flow window, packets.
    max_window: float = 64.0
    #: Mathis constant; sqrt(3/2) for the ACK-every-packet receivers
    #: the paper (and this repo's default TcpConfig) uses.
    mathis_c: float = MATHIS_C_ACK_EVERY_PACKET
    #: Model RED's uniformized drop spacing (the count mechanism) as a
    #: doubled effective drop rate.  Disable to compare against the raw
    #: p_b curve.
    uniformized_drops: bool = True

    def validate(self) -> None:
        if self.n_flows < 1:
            raise ConfigurationError("mean field needs at least one flow")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.base_rtt <= 0:
            raise ConfigurationError("base_rtt must be positive")
        if self.mss_bytes < 1:
            raise ConfigurationError("mss_bytes must be >= 1")
        if self.max_window <= 0:
            raise ConfigurationError("max_window must be positive")
        self.red.validate()


@dataclass(frozen=True)
class MeanFieldPrediction:
    """The fixed point: where the many-flow system settles."""

    queue_pkts: float        # average queue occupancy at the bottleneck
    loss_prob: float         # effective per-packet drop probability
    rtt: float               # base_rtt + queueing delay
    per_flow_window: float   # packets in flight per flow
    per_flow_bps: float      # goodput share per flow
    utilization: float       # aggregate demand / capacity, <= 1
    # "window-limited" | "early-drop" | "early-drop-corner" | "forced"
    regime: str


def red_drop_curve(avg: float, red: RedParams) -> float:
    """RED's raw marking probability ``p_b`` at average queue ``avg``."""
    if avg < red.min_th:
        return 0.0
    if avg < red.max_th:
        return red.max_p * (avg - red.min_th) / (red.max_th - red.min_th)
    if red.gentle and avg < 2 * red.max_th:
        return red.max_p + (1.0 - red.max_p) * (avg - red.max_th) / red.max_th
    return 1.0


def effective_drop_probability(
    avg: float, red: RedParams, uniformized: bool = True
) -> float:
    """Per-packet drop probability at average queue ``avg``, including
    the count-mechanism correction (see module docstring)."""
    pb = red_drop_curve(avg, red)
    if not uniformized or pb >= 1.0:
        return pb
    return min(1.0, 2.0 * pb / (1.0 + pb))


#: Fixed points landing below this fraction of the RED ramp are flagged
#: ``early-drop-corner``: so close to ``min_th`` that the effective
#: ramp slope (``max_p`` spread over the shallow usable span) is steep
#: and the loop oscillates rather than settling.  Calibrated against
#: swept dumbbells at 50-100 flows: operating points >= ~0.16 of the
#: ramp track the fixed point within the two-sided band, points at
#: ~0.10 and below undershoot it by 40-50%.
CORNER_RAMP_FRACTION = 0.15


def meanfield_fixed_point(
    params: MeanFieldParams, iterations: int = 200
) -> MeanFieldPrediction:
    """Solve the balance equation by bisection (see module docstring)."""
    params.validate()
    red = params.red
    pkt_time = params.mss_bytes * 8.0 / params.bandwidth_bps
    capacity_pps = 1.0 / pkt_time
    n = params.n_flows
    c = params.mathis_c
    w_max = params.max_window

    def window(p: float) -> float:
        if p <= 0.0:
            return w_max
        return min(w_max, c / math.sqrt(p))

    def demand_pps(q: float) -> float:
        p = effective_drop_probability(q, red, params.uniformized_drops)
        return n * window(p) / (params.base_rtt + q * pkt_time)

    def prediction(q: float, regime: str) -> MeanFieldPrediction:
        p = effective_drop_probability(q, red, params.uniformized_drops)
        rtt = params.base_rtt + q * pkt_time
        share_pps = min(demand_pps(q), capacity_pps) / n
        return MeanFieldPrediction(
            queue_pkts=q,
            loss_prob=p,
            rtt=rtt,
            per_flow_window=share_pps * rtt,
            per_flow_bps=share_pps * params.mss_bytes * 8.0,
            utilization=min(1.0, demand_pps(q) / capacity_pps),
            regime=regime,
        )

    # Window-limited: flows cannot fill the link even loss-free.  The
    # standing queue (if any) absorbs the excess of N*Wmax over the
    # bandwidth-delay product and must stay below min_th for the
    # loss-free assumption to hold.
    q_standing = (n * w_max / capacity_pps - params.base_rtt) / pkt_time
    if q_standing < red.min_th:
        return prediction(max(0.0, q_standing), "window-limited")

    # Early-drop: bisect on RED's ramp (plus the gentle ramp, which
    # keeps the curve continuous up to 2*max_th).
    q_hi = 2.0 * red.max_th if red.gentle else red.max_th
    if demand_pps(q_hi - 1e-9) > capacity_pps:
        # Forced regime: the average rides the cliff; capacity sharing
        # alone sets the loss rate (invert Mathis at the fair share).
        rtt = params.base_rtt + q_hi * pkt_time
        w_star = capacity_pps * rtt / n
        p_star = 1.0 if w_star <= c else (c / w_star) ** 2
        return MeanFieldPrediction(
            queue_pkts=q_hi,
            loss_prob=min(1.0, p_star),
            rtt=rtt,
            per_flow_window=w_star,
            per_flow_bps=capacity_pps / n * params.mss_bytes * 8.0,
            utilization=1.0,
            regime="forced",
        )

    lo, hi = red.min_th, q_hi
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if demand_pps(mid) > capacity_pps:
            lo = mid
        else:
            hi = mid
    q_star = 0.5 * (lo + hi)
    fraction = (q_star - red.min_th) / (red.max_th - red.min_th)
    regime = "early-drop-corner" if fraction < CORNER_RAMP_FRACTION else "early-drop"
    return prediction(q_star, regime)


# ----------------------------------------------------------------------
# oracle verdict
# ----------------------------------------------------------------------

#: Default tolerances for the manyflow oracle (docs/SCENARIOS.md
#: explains the calibration: the mean-field limit is exact only as
#: N -> infinity and the Mathis model ignores timeouts/slow start, so
#: finite scenes sit within a band, not on the curve).
QUEUE_REL_TOL = 0.35
QUEUE_ABS_TOL = 4.0       # packets
LOSS_REL_TOL = 0.50
LOSS_ABS_TOL = 0.01       # absolute drop-probability floor


@dataclass(frozen=True)
class OracleVerdict:
    """Pass/fail comparison of a measured scene against the fixed point."""

    passed: bool
    queue_ok: bool
    loss_ok: bool
    measured_queue: float
    predicted_queue: float
    measured_loss: float
    predicted_loss: float
    regime: str

    def format(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"oracle {mark} [{self.regime}]: "
            f"queue {self.measured_queue:.1f} vs {self.predicted_queue:.1f} pkts "
            f"({'ok' if self.queue_ok else 'OUT'}), "
            f"loss {self.measured_loss:.4f} vs {self.predicted_loss:.4f} "
            f"({'ok' if self.loss_ok else 'OUT'})"
        )


def _within(measured: float, predicted: float, rel: float, abs_floor: float) -> bool:
    return abs(measured - predicted) <= max(abs_floor, rel * predicted)


def oracle_verdict(
    prediction: MeanFieldPrediction,
    measured_queue: float,
    measured_loss: float,
    queue_rel_tol: float = QUEUE_REL_TOL,
    queue_abs_tol: float = QUEUE_ABS_TOL,
    loss_rel_tol: float = LOSS_REL_TOL,
    loss_abs_tol: float = LOSS_ABS_TOL,
) -> OracleVerdict:
    """Compare measured queue occupancy / loss rate against the fixed
    point under the documented tolerances (pass = both within band).

    In the ``early-drop-corner`` regime the fixed point is an upper
    envelope (the oscillating loop spends time below ``min_th``), so
    the queue band is one-sided: undershoot is expected, overshoot past
    the band still fails.
    """
    queue_band = max(queue_abs_tol, queue_rel_tol * prediction.queue_pkts)
    if prediction.regime == "early-drop-corner":
        queue_ok = measured_queue <= prediction.queue_pkts + queue_band
    else:
        queue_ok = _within(
            measured_queue, prediction.queue_pkts, queue_rel_tol, queue_abs_tol
        )
    loss_ok = _within(measured_loss, prediction.loss_prob, loss_rel_tol, loss_abs_tol)
    return OracleVerdict(
        passed=queue_ok and loss_ok,
        queue_ok=queue_ok,
        loss_ok=loss_ok,
        measured_queue=measured_queue,
        predicted_queue=prediction.queue_pkts,
        measured_loss=measured_loss,
        predicted_loss=prediction.loss_prob,
        regime=prediction.regime,
    )
