"""The Mathis square-root model (Mathis, Semke, Mahdavi & Ott, CCR'97).

The macroscopic behaviour of the congestion-avoidance algorithm:

    BW = (MSS / RTT) * C / sqrt(p)

where ``p`` is the random packet-loss rate and ``C`` lumps the ACK
strategy and the loss-arrival assumptions into one constant.  With one
ACK per packet and periodic losses the standard derivation gives
``C = sqrt(3/2) ≈ 1.22``.  The paper states "Since the receiver sends
an ACK for every data packet received, C is set to 4" — that constant
is preserved here as :data:`PAPER_C` so Figure 7 can be regenerated
both ways (see DESIGN.md §4).

Section 4 plots the *window* rather than bandwidth:

    W = BW * RTT / MSS = C / sqrt(p)

which is what :func:`mathis_window` returns.  The model assumes no
timeouts; both the paper and our reproduction observe the measured
points falling below the bound at high ``p`` precisely because that
assumption breaks.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: C for the ACK-every-packet strategy under the standard derivation.
MATHIS_C_ACK_EVERY_PACKET = math.sqrt(3.0 / 2.0)

#: The constant the paper says it used for Figure 7.
PAPER_C = 4.0


def _check_loss_rate(loss_rate: float) -> None:
    if not 0.0 < loss_rate <= 1.0:
        raise ConfigurationError(f"loss rate must be in (0, 1], got {loss_rate}")


def mathis_window(loss_rate: float, c: float = MATHIS_C_ACK_EVERY_PACKET) -> float:
    """Upper-bound window size in packets: W = C / sqrt(p)."""
    _check_loss_rate(loss_rate)
    return c / math.sqrt(loss_rate)


def mathis_bandwidth_bps(
    loss_rate: float,
    rtt: float,
    mss_bytes: int = 1000,
    c: float = MATHIS_C_ACK_EVERY_PACKET,
) -> float:
    """Upper-bound bandwidth in bits/second: BW = (MSS/RTT) * C/sqrt(p)."""
    _check_loss_rate(loss_rate)
    if rtt <= 0:
        raise ConfigurationError("RTT must be positive")
    return (mss_bytes * 8.0 / rtt) * c / math.sqrt(loss_rate)
