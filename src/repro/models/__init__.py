"""Analytical TCP throughput models used in Section 4 of the paper."""

from repro.models.mathis import (
    MATHIS_C_ACK_EVERY_PACKET,
    mathis_bandwidth_bps,
    mathis_window,
)
from repro.models.padhye import padhye_bandwidth_bps
from repro.models.fit import estimate_mathis_c, fit_quality, relative_errors
from repro.models.meanfield import (
    MeanFieldParams,
    MeanFieldPrediction,
    OracleVerdict,
    effective_drop_probability,
    meanfield_fixed_point,
    oracle_verdict,
    red_drop_curve,
)
from repro.models.relentless import (
    RelentlessModelParams,
    RelentlessPrediction,
    RelentlessVerdict,
    relentless_prediction,
    relentless_verdict,
    relentless_window,
)

__all__ = [
    "MATHIS_C_ACK_EVERY_PACKET",
    "mathis_window",
    "mathis_bandwidth_bps",
    "padhye_bandwidth_bps",
    "estimate_mathis_c",
    "fit_quality",
    "relative_errors",
    "MeanFieldParams",
    "MeanFieldPrediction",
    "OracleVerdict",
    "effective_drop_probability",
    "meanfield_fixed_point",
    "oracle_verdict",
    "red_drop_curve",
    "RelentlessModelParams",
    "RelentlessPrediction",
    "RelentlessVerdict",
    "relentless_prediction",
    "relentless_verdict",
    "relentless_window",
]
