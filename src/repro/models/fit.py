"""Model-fitting utilities for Section 4.

The paper eyeballs fitness of measured windows against the square-root
bound; these helpers quantify it:

* :func:`estimate_mathis_c` — least-squares estimate of the constant C
  in ``W = C/sqrt(p)`` from measured (p, W) points.  Interesting for
  the paper's curious statement "C is set to 4": fitting the *measured*
  points recovers something near the theoretical sqrt(3/2) at low p.
* :func:`relative_errors` / :func:`fit_quality` — pointwise deviation
  from a model curve and an R²-style summary.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError

Point = Tuple[float, float]


def estimate_mathis_c(points: Sequence[Point]) -> float:
    """Least-squares C for ``W = C / sqrt(p)``.

    With the model linear in C, the optimum is
    ``C = sum(W_i x_i) / sum(x_i^2)`` where ``x_i = 1/sqrt(p_i)``.
    """
    if not points:
        raise ConfigurationError("need at least one (p, W) point")
    num = 0.0
    den = 0.0
    for p, w in points:
        if not 0 < p <= 1:
            raise ConfigurationError(f"loss rate must be in (0, 1], got {p}")
        x = 1.0 / math.sqrt(p)
        num += w * x
        den += x * x
    return num / den


def relative_errors(
    points: Sequence[Point], model: Callable[[float], float]
) -> List[float]:
    """Per-point (measured - model) / model."""
    errors = []
    for p, w in points:
        reference = model(p)
        if reference == 0:
            raise ConfigurationError("model value is zero; relative error undefined")
        errors.append((w - reference) / reference)
    return errors


def fit_quality(points: Sequence[Point], model: Callable[[float], float]) -> float:
    """R²-style fit quality of ``model`` against measured points
    (1 = perfect; can go negative for a fit worse than the mean)."""
    if not points:
        raise ConfigurationError("need at least one point")
    measured = [w for _, w in points]
    mean = sum(measured) / len(measured)
    ss_total = sum((w - mean) ** 2 for w in measured)
    ss_residual = sum((w - model(p)) ** 2 for p, w in points)
    if ss_total == 0:
        return 1.0 if ss_residual == 0 else 0.0
    return 1.0 - ss_residual / ss_total
