"""The Padhye et al. model (SIGCOMM'98), which Section 4 of the paper
cites as the more accurate successor of the square-root model: it
"captures not only the behavior of fast retransmit but also the effect
of retransmission timeouts upon throughput".

Full-model throughput (packets/second times MSS gives bytes/sec):

                         1
  B(p) ≈ ---------------------------------------------------------
         RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1 + 32p²)

where ``b`` is the number of packets acknowledged per ACK (1 here) and
``T0`` the base retransmission timeout.  The result is additionally
capped by the receiver window: B ≤ Wmax/RTT.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def padhye_bandwidth_bps(
    loss_rate: float,
    rtt: float,
    rto: float = 1.0,
    mss_bytes: int = 1000,
    packets_per_ack: float = 1.0,
    max_window: float = float("inf"),
) -> float:
    """Expected steady-state throughput in bits/second.

    Parameters
    ----------
    loss_rate:
        Packet loss probability ``p`` in (0, 1].
    rtt:
        Round-trip time, seconds.
    rto:
        Base retransmission timeout ``T0``, seconds.
    mss_bytes:
        Segment size.
    packets_per_ack:
        ``b`` in the model (1 with ACK-per-packet receivers).
    max_window:
        Receiver window cap ``Wmax`` in packets.
    """
    p = loss_rate
    if not 0.0 < p <= 1.0:
        raise ConfigurationError(f"loss rate must be in (0, 1], got {p}")
    if rtt <= 0 or rto <= 0:
        raise ConfigurationError("rtt and rto must be positive")
    b = packets_per_ack
    denominator = rtt * math.sqrt(2.0 * b * p / 3.0) + rto * min(
        1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    rate_pps = 1.0 / denominator
    rate_pps = min(rate_pps, max_window / rtt)
    return rate_pps * mss_bytes * 8.0
