"""Declarative, seeded, content-addressable scenario generation.

``repro.scenes`` grows the harness beyond the paper's three-pair
dumbbell: a :class:`SceneSpec` names a topology family (generalized
dumbbell, parking lot, k-ary fat-tree, seeded Waxman WAN), a flow
population with heavy-tailed sizes, an arrival process and a RED
configuration — and :func:`build_scene` turns it into a ready-to-run
world, bit-identically for equal spec digests.  The ``manyflow``
experiment sweeps these scenes and checks the measured RED queue
against the mean-field fixed point in :mod:`repro.models.meanfield`.
"""

from repro.scenes.build import Scene, build_scene
from repro.scenes.registry import (
    FAMILIES,
    SceneFamily,
    default_topology,
    describe_families,
    family,
)
from repro.scenes.spec import (
    ARRIVAL_PROCESSES,
    SIZE_DISTS,
    ArrivalSpec,
    FlowPopulation,
    SceneSpec,
)
from repro.scenes.topologies import (
    BuiltTopology,
    FatTreeParams,
    MobileParams,
    WaxmanParams,
    build_dumbbell,
    build_fattree,
    build_mobile,
    build_parkinglot,
    build_wan,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "FAMILIES",
    "SIZE_DISTS",
    "ArrivalSpec",
    "BuiltTopology",
    "FatTreeParams",
    "FlowPopulation",
    "MobileParams",
    "Scene",
    "SceneFamily",
    "SceneSpec",
    "WaxmanParams",
    "build_dumbbell",
    "build_fattree",
    "build_mobile",
    "build_parkinglot",
    "build_scene",
    "build_wan",
    "default_topology",
    "describe_families",
    "family",
]
