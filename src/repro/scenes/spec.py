"""Declarative scene specifications with canonical digests.

A :class:`SceneSpec` names everything that determines a generated
world: the topology family and its parameters, the flow population
(count, TCP variant, size distribution), the arrival process, the
optional RED configuration for the bottleneck queues, the root seed
and the run duration.  Specs are plain dataclasses built from the same
:func:`repro.runner.spec.canonicalize` vocabulary as TaskSpecs, so

* :meth:`SceneSpec.digest` is a stable SHA-256 content address — equal
  scenes hash equal regardless of process or argument spelling;
* a spec can ride inside a TaskSpec argument tuple unchanged, which is
  how ``manyflow`` fans scene cells out over the worker pool;
* :meth:`SceneSpec.to_json` / :meth:`SceneSpec.from_json` round-trip
  through the canonical encoding (digest-preserving), so specs can be
  stored next to manifests and rebuilt months later.

The determinism contract mirrors TaskSpec's: every random draw inside
:func:`repro.scenes.build_scene` derives from fields of the spec, so
same digest => bit-identical world, serial == parallel, cold ==
snapshot-restored (pinned by tests/scenes/test_determinism.py).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.net.red import RedParams
from repro.runner.spec import canonicalize, uncanonicalize

#: Flow-size distributions understood by :func:`repro.scenes.build_scene`.
SIZE_DISTS = ("infinite", "fixed", "pareto", "lognormal")

#: Arrival processes understood by :func:`repro.scenes.build_scene`.
ARRIVAL_PROCESSES = ("jitter", "staggered", "poisson", "onoff")


@dataclass(frozen=True)
class FlowPopulation:
    """Who sends: how many flows, which variant, how much data."""

    count: int = 10
    variant: str = "rr"
    #: One of :data:`SIZE_DISTS`.  ``infinite`` ignores the size knobs.
    size_dist: str = "infinite"
    mean_packets: float = 100.0
    pareto_shape: float = 1.5
    lognormal_sigma: float = 1.0
    min_packets: int = 1

    def validate(self) -> None:
        if self.count < 1:
            raise ConfigurationError("a scene needs at least one flow")
        if self.size_dist not in SIZE_DISTS:
            raise ConfigurationError(
                f"unknown size_dist {self.size_dist!r}; choose from {SIZE_DISTS}"
            )
        from repro.tcp.factory import VARIANTS

        if self.variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown TCP variant {self.variant!r};"
                f" choose from {sorted(VARIANTS)}"
            )


@dataclass(frozen=True)
class ArrivalSpec:
    """When flows start (and, for on/off, how they modulate)."""

    #: One of :data:`ARRIVAL_PROCESSES`.
    process: str = "jitter"
    #: ``poisson``: mean arrivals per second.
    rate: float = 50.0
    #: ``staggered``: seconds between consecutive starts.
    stagger: float = 0.01
    #: ``jitter``: uniform start window width, seconds.
    jitter: float = 0.1
    #: ``onoff``: mean burst size (packets) and mean off period (s).
    on_packets: int = 50
    off_seconds: float = 0.5

    def validate(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r};"
                f" choose from {ARRIVAL_PROCESSES}"
            )
        if self.rate <= 0 or self.stagger < 0 or self.jitter < 0:
            raise ConfigurationError("arrival knobs must be non-negative (rate > 0)")
        if self.on_packets < 1 or self.off_seconds <= 0:
            raise ConfigurationError("on/off knobs must be positive")


@dataclass
class SceneSpec:
    """One generated world, content-addressably."""

    family: str = "dumbbell"
    #: Family parameter dataclass (e.g. DumbbellParams, WaxmanParams);
    #: ``None`` takes the family's registry default.
    topology: Any = None
    flows: FlowPopulation = field(default_factory=FlowPopulation)
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: RED parameters applied to every designated bottleneck queue;
    #: ``None`` keeps the family's drop-tail default.
    red: Optional[RedParams] = None
    #: TCP agent tunables for every flow (delayed ACKs, ECN, ...);
    #: ``None`` keeps the TcpConfig defaults.  Carried in the spec so
    #: the knobs participate in the content address — a delayed-ACK
    #: scene and its immediate-ACK twin hash differently.
    tcp: Optional[TcpConfig] = None
    seed: int = 1
    duration: float = 10.0

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "SceneSpec":
        from repro.scenes.registry import family as lookup_family

        fam = lookup_family(self.family)
        if self.topology is not None and not isinstance(
            self.topology, fam.params_cls
        ):
            raise ConfigurationError(
                f"scene family {self.family!r} takes"
                f" {fam.params_cls.__name__}, got"
                f" {type(self.topology).__name__}"
            )
        self.flows.validate()
        self.arrivals.validate()
        if self.red is not None:
            self.red.validate()
        if self.tcp is not None:
            self.tcp.validate()
        if self.duration <= 0:
            raise ConfigurationError("scene duration must be positive")
        return self

    # ------------------------------------------------------------------
    # content addressing / (de)serialization
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """Canonical JSON encoding (the digest preimage)."""
        return json.dumps(canonicalize(self), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable SHA-256 content address of the scene."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        """Pretty canonical encoding, for storing next to manifests."""
        return json.dumps(canonicalize(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SceneSpec":
        """Rebuild a spec from :meth:`to_json` / :meth:`canonical`
        output (digest-preserving round trip)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scene spec does not parse as JSON: {exc}"
            ) from exc
        spec = uncanonicalize(payload)
        if not isinstance(spec, cls):
            raise ConfigurationError(
                f"scene spec JSON does not encode a {cls.__name__}"
            )
        return spec
