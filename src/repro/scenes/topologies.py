"""Scene topology builders: dumbbell, parking lot, fat-tree, WAN.

Every builder has the same shape — ``build(sim, params, queue_factory,
trace)`` returning a :class:`BuiltTopology` — so the registry can treat
families uniformly.  ``queue_factory`` (name -> PacketQueue) applies to
the family's *designated bottleneck* queues (the dumbbell's R1->R2, the
parking lot's chain hops, every switch-switch / router-router link in
the fabric families); ``None`` keeps each family's drop-tail default.

The dumbbell and parking lot reuse the existing
:class:`~repro.net.topology.Dumbbell` / :class:`~repro.net.parkinglot.
ParkingLot` builders (with compact routing so thousands of pairs stay
tractable); the k-ary fat-tree and the seeded Waxman WAN are new and
assemble straight on the :class:`~repro.net.network.Network` layer.
Topology randomness (WAN placement/edges) derives entirely from the
params (``graph_seed``), never from ambient state, so equal params
always build the identical graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host
from repro.net.parkinglot import ParkingLot, ParkingLotParams
from repro.net.queues import DropTailQueue, PacketQueue
from repro.net.topology import Dumbbell, DumbbellParams, MBPS
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.sim.tracing import TraceBus

QueueFactory = Callable[[str], PacketQueue]


@dataclass
class BuiltTopology:
    """What a family builder hands back to :func:`repro.scenes.build_scene`.

    ``pairs`` is the natural (src, dst) endpoint list for families that
    have one (dumbbell, parking lot); fabric families return ``hosts``
    instead and the scene builder forms seeded pairs.  ``oracle_link``
    (with ``base_rtt``) is set only when the family has a single shared
    bottleneck the mean-field oracle applies to.
    """

    net: Network
    pairs: List[Tuple[Host, Host]] = field(default_factory=list)
    hosts: List[Host] = field(default_factory=list)
    bottlenecks: List[Link] = field(default_factory=list)
    oracle_link: Optional[Link] = None
    base_rtt: float = 0.0


# ----------------------------------------------------------------------
# dumbbell / parking lot (wrappers over the existing builders)
# ----------------------------------------------------------------------


def build_dumbbell(
    sim: Simulator,
    params: DumbbellParams,
    queue_factory: Optional[QueueFactory] = None,
    trace: Optional[TraceBus] = None,
) -> BuiltTopology:
    """The paper's Figure-4 dumbbell, generalized to thousands of pairs."""
    bell = Dumbbell(
        sim,
        params,
        bottleneck_queue_factory=queue_factory,
        trace=trace,
        compact_routes=True,
    )
    return BuiltTopology(
        net=bell.net,
        pairs=list(zip(bell.senders, bell.receivers)),
        bottlenecks=[bell.forward_link],
        oracle_link=bell.forward_link,
        base_rtt=bell.base_rtt(),
    )


def build_parkinglot(
    sim: Simulator,
    params: ParkingLotParams,
    queue_factory: Optional[QueueFactory] = None,
    trace: Optional[TraceBus] = None,
) -> BuiltTopology:
    """The chain-of-bottlenecks parking lot: one long pair plus one
    cross pair per hop (flows beyond the pair count share pairs)."""
    lot = ParkingLot(
        sim,
        params,
        bottleneck_queue_factory=queue_factory,
        trace=trace,
        compact_routes=True,
    )
    return BuiltTopology(
        net=lot.net,
        pairs=[(lot.long_src, lot.long_dst)] + list(lot.cross_pairs),
        bottlenecks=list(lot.bottlenecks),
        # Multiple bottlenecks with different competition per hop: the
        # single-queue mean-field oracle does not apply.
        oracle_link=None,
        base_rtt=lot.long_path_rtt(),
    )


# ----------------------------------------------------------------------
# mobile dumbbell (time-varying wireless bottleneck)
# ----------------------------------------------------------------------


@dataclass
class MobileParams:
    """A dumbbell whose bottleneck is a mobile wireless link: the rate
    follows a seeded :class:`~repro.net.varlink.RateSchedule` (uniform
    spread around the mean, re-drawn every ``rate_interval`` seconds)
    with periodic deep handover outages, buffered bufferbloat-style
    (``bufferbloat_multiple`` x the mean-rate BDP).

    ``bottleneck_bandwidth_bps`` is the schedule *mean*; the harnesses
    use it as the nominal capacity.  The schedule covers
    ``schedule_duration`` seconds — beyond it the last drawn rate
    holds.  Fully determined by the params (``schedule_seed``
    included): same params, same channel trace.
    """

    n_pairs: int = 3
    bottleneck_bandwidth_bps: float = 2.0 * MBPS
    bottleneck_delay: float = 0.030
    side_bandwidth_bps: float = 10.0 * MBPS
    side_delay: float = 0.001
    spread: float = 0.6
    rate_interval: float = 1.0
    handover_period: float = 20.0
    handover_duration: float = 0.4
    schedule_seed: int = 0
    schedule_duration: float = 60.0
    bufferbloat_multiple: float = 10.0

    def validate(self) -> None:
        if self.n_pairs < 1:
            raise ConfigurationError("mobile dumbbell needs at least one pair")
        if self.bottleneck_bandwidth_bps <= 0:
            raise ConfigurationError("mean bandwidth must be positive")
        if not 0 <= self.spread < 1:
            raise ConfigurationError("spread must be in [0, 1)")
        if self.schedule_duration <= 0 or self.rate_interval <= 0:
            raise ConfigurationError("schedule knobs must be positive")
        if self.bufferbloat_multiple <= 0:
            raise ConfigurationError("bufferbloat_multiple must be positive")


def build_mobile(
    sim: Simulator,
    params: MobileParams,
    queue_factory: Optional[QueueFactory] = None,
    trace: Optional[TraceBus] = None,
) -> BuiltTopology:
    """The mobile-link family (docs/SCENARIOS.md): a dumbbell with a
    time-varying bottleneck.  No oracle link — the mean-field fixed
    point assumes a constant service rate."""
    from repro.net.varlink import RateSchedule, bufferbloat_limit

    params.validate()
    base_rtt = 2 * (params.side_delay + params.bottleneck_delay + params.side_delay)
    bell = Dumbbell(
        sim,
        DumbbellParams(
            n_pairs=params.n_pairs,
            bottleneck_bandwidth_bps=params.bottleneck_bandwidth_bps,
            bottleneck_delay=params.bottleneck_delay,
            side_bandwidth_bps=params.side_bandwidth_bps,
            side_delay=params.side_delay,
            buffer_packets=bufferbloat_limit(
                params.bottleneck_bandwidth_bps,
                base_rtt,
                params.bufferbloat_multiple,
            ),
        ),
        bottleneck_queue_factory=queue_factory,
        trace=trace,
        compact_routes=True,
    )
    RateSchedule.mobile(
        params.schedule_seed,
        duration=params.schedule_duration,
        mean_bps=params.bottleneck_bandwidth_bps,
        interval=params.rate_interval,
        spread=params.spread,
        handover_period=params.handover_period,
        handover_duration=params.handover_duration,
        name="scene-mobile",
    ).apply(bell.forward_link)
    return BuiltTopology(
        net=bell.net,
        pairs=list(zip(bell.senders, bell.receivers)),
        bottlenecks=[bell.forward_link],
        oracle_link=None,
        base_rtt=base_rtt,
    )


# ----------------------------------------------------------------------
# k-ary fat-tree
# ----------------------------------------------------------------------


@dataclass
class FatTreeParams:
    """A k-ary fat-tree (Al-Fares et al.): ``k`` pods of ``k/2`` edge
    and ``k/2`` aggregation switches, ``(k/2)^2`` core switches, and
    ``k^3/4`` hosts.  ``k`` must be even."""

    k: int = 4
    host_bandwidth_bps: float = 100.0 * MBPS
    fabric_bandwidth_bps: float = 10.0 * MBPS
    host_delay: float = 0.0005
    fabric_delay: float = 0.001
    buffer_packets: int = 50
    host_buffer_packets: int = 1000

    def validate(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ConfigurationError("fat-tree k must be even and >= 2")
        if self.buffer_packets < 1 or self.host_buffer_packets < 1:
            raise ConfigurationError("buffers must be >= 1 packet")


def build_fattree(
    sim: Simulator,
    params: FatTreeParams,
    queue_factory: Optional[QueueFactory] = None,
    trace: Optional[TraceBus] = None,
) -> BuiltTopology:
    params.validate()
    net = Network(sim, trace=trace)
    p = params
    half = p.k // 2
    make_queue = queue_factory or (
        lambda name: DropTailQueue(limit=p.buffer_packets, name=name)
    )

    def fabric_link(a: str, b: str) -> None:
        net.add_duplex_link(
            a,
            b,
            p.fabric_bandwidth_bps,
            p.fabric_delay,
            queue_ab=make_queue(f"{a}->{b}"),
            queue_ba=make_queue(f"{b}->{a}"),
        )

    cores = [net.add_router(f"C{i}") for i in range(half * half)]
    hosts: List[Host] = []
    bottlenecks: List[Link] = []
    for pod in range(p.k):
        aggs = [net.add_router(f"A{pod}_{j}") for j in range(half)]
        edges = [net.add_router(f"E{pod}_{j}") for j in range(half)]
        for agg in aggs:
            for edge in edges:
                fabric_link(agg.name, edge.name)
        # Aggregation switch j uplinks to core group j.
        for j, agg in enumerate(aggs):
            for c in range(half):
                fabric_link(cores[j * half + c].name, agg.name)
        for j, edge in enumerate(edges):
            for h in range(half):
                host = net.add_host(f"H{pod}_{j}_{h}")
                hosts.append(host)
                net.add_duplex_link(
                    host.name,
                    edge.name,
                    p.host_bandwidth_bps,
                    p.host_delay,
                    queue_ab=DropTailQueue(
                        p.host_buffer_packets, f"{host.name}->{edge.name}"
                    ),
                    queue_ba=DropTailQueue(
                        p.host_buffer_packets, f"{edge.name}->{host.name}"
                    ),
                )
    net.compute_routes(compact=True)
    net.validate()
    # Core uplinks are the fabric's contention points under all-to-all
    # traffic; record the core-facing direction of each for monitors.
    for name, link in net.links.items():
        if name.startswith("C") and "->A" in name:
            bottlenecks.append(link)
    return BuiltTopology(net=net, hosts=hosts, bottlenecks=bottlenecks)


# ----------------------------------------------------------------------
# seeded Waxman WAN
# ----------------------------------------------------------------------


@dataclass
class WaxmanParams:
    """A random WAN graph (Waxman '88): ``n_routers`` placed uniformly
    in the unit square, an edge between routers ``u, v`` at distance
    ``d`` with probability ``alpha * exp(-d / (beta * L))`` (``L`` the
    maximum distance), repaired to a connected graph by joining each
    stray component at its closest node pair.  ``hosts_per_router``
    access hosts hang off every router.  Fully determined by the
    params (``graph_seed`` included) — same params, same graph.
    """

    n_routers: int = 60
    hosts_per_router: int = 1
    alpha: float = 0.2
    beta: float = 0.35
    graph_seed: int = 0
    core_bandwidth_bps: float = 10.0 * MBPS
    access_bandwidth_bps: float = 100.0 * MBPS
    #: Propagation delay per unit of placement distance, seconds.
    delay_scale: float = 0.02
    min_delay: float = 0.0005
    access_delay: float = 0.0005
    buffer_packets: int = 50
    host_buffer_packets: int = 1000

    def validate(self) -> None:
        if self.n_routers < 2:
            raise ConfigurationError("WAN needs at least two routers")
        if self.hosts_per_router < 0:
            raise ConfigurationError("hosts_per_router must be >= 0")
        if not 0 < self.alpha <= 1 or self.beta <= 0:
            raise ConfigurationError("need 0 < alpha <= 1 and beta > 0")
        if self.buffer_packets < 1 or self.host_buffer_packets < 1:
            raise ConfigurationError("buffers must be >= 1 packet")


def build_wan(
    sim: Simulator,
    params: WaxmanParams,
    queue_factory: Optional[QueueFactory] = None,
    trace: Optional[TraceBus] = None,
) -> BuiltTopology:
    params.validate()
    p = params
    net = Network(sim, trace=trace)
    make_queue = queue_factory or (
        lambda name: DropTailQueue(limit=p.buffer_packets, name=name)
    )
    rng = RngStream(p.graph_seed, "waxman")
    n = p.n_routers
    xs = [rng.random() for _ in range(n)]
    ys = [rng.random() for _ in range(n)]

    def dist(i: int, j: int) -> float:
        return math.hypot(xs[i] - xs[j], ys[i] - ys[j])

    routers = [net.add_router(f"W{i}") for i in range(n)]

    def core_link(i: int, j: int) -> None:
        a, b = routers[i].name, routers[j].name
        delay = max(p.min_delay, dist(i, j) * p.delay_scale)
        net.add_duplex_link(
            a,
            b,
            p.core_bandwidth_bps,
            delay,
            queue_ab=make_queue(f"{a}->{b}"),
            queue_ba=make_queue(f"{b}->{a}"),
        )

    scale = p.beta * math.sqrt(2.0)
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.bernoulli(p.alpha * math.exp(-dist(i, j) / scale)):
                edges.append((i, j))
                core_link(i, j)

    # Connectivity repair: union-find over the drawn edges, then join
    # every stray component to the component of router 0 at the
    # closest node pair (ties broken by index — fully deterministic).
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in edges:
        parent[find(i)] = find(j)
    while True:
        main = find(0)
        stray = [i for i in range(n) if find(i) != main]
        if not stray:
            break
        inside = [i for i in range(n) if find(i) == main]
        best = min(
            ((dist(i, j), i, j) for i in inside for j in stray),
            key=lambda t: (t[0], t[1], t[2]),
        )
        _, i, j = best
        core_link(i, j)
        parent[find(i)] = find(j)

    hosts: List[Host] = []
    for i in range(n):
        for h in range(p.hosts_per_router):
            host = net.add_host(f"H{i}_{h}")
            hosts.append(host)
            net.add_duplex_link(
                host.name,
                routers[i].name,
                p.access_bandwidth_bps,
                p.access_delay,
                queue_ab=DropTailQueue(
                    p.host_buffer_packets, f"{host.name}->{routers[i].name}"
                ),
                queue_ba=DropTailQueue(
                    p.host_buffer_packets, f"{routers[i].name}->{host.name}"
                ),
            )
    net.compute_routes(compact=True)
    net.validate()
    core_links = [
        link
        for name, link in net.links.items()
        if name.startswith("W") and "->W" in name
    ]
    return BuiltTopology(net=net, hosts=hosts, bottlenecks=core_links)
