"""Turn a :class:`~repro.scenes.spec.SceneSpec` into a live world.

``build_scene`` is the single entry point: it resets the packet-uid
sequence, derives every random draw from named substreams of the
spec's seed, builds the family topology, forms flow endpoint pairs,
wires TCP connections with :class:`~repro.metrics.LeanFlowStats`
observers, and schedules the arrival process — returning a
:class:`Scene` ready for ``scene.sim.run(until=spec.duration)``.

Determinism contract: the world is a pure function of the spec.  The
uid counter is pinned, all randomness flows through per-purpose
:class:`~repro.sim.rng.RngStream` substreams (``red/<queue>``,
``flow/<id>/size``, ``flow/<id>/onoff``, ``arrivals``, ``pairs``), and
every callable attached to the world is a named picklable class — so
equal digests give bit-identical runs, serial == parallel, and a scene
survives snapshot capture/restore mid-run (pinned by
tests/scenes/test_determinism.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.app.ftp import FtpSource
from repro.app.workload import (
    FixedSize,
    JitteredArrivals,
    LognormalSizes,
    OnOffSource,
    ParetoSizes,
    PoissonArrivals,
    StaggeredArrivals,
)
from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.metrics.flowstats import LeanFlowStats
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import set_uid_state
from repro.net.red import RedQueue
from repro.net.queues import PacketQueue
from repro.scenes.registry import family as lookup_family
from repro.scenes.spec import SceneSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.sim.tracing import TraceBus
from repro.sim.watchdog import Watchdog
from repro.tcp.base import TcpSender
from repro.tcp.factory import make_connection


class _SceneRedFactory:
    """Named picklable queue factory: RED on every designated
    bottleneck, each queue with its own ``red/<name>`` substream."""

    __slots__ = ("sim", "params", "root")

    def __init__(self, sim: Simulator, params, root: RngStream):
        self.sim = sim
        self.params = params
        self.root = root

    def __call__(self, name: str) -> PacketQueue:
        return RedQueue(
            self.sim, self.params, self.root.substream(f"red/{name}"), name=name
        )


@dataclass
class Scene:
    """A built world plus handles to everything worth measuring."""

    spec: SceneSpec
    sim: Simulator
    net: Network
    pairs: List[Tuple[Host, Host]]
    senders: Dict[int, TcpSender] = field(default_factory=dict)
    stats: Dict[int, LeanFlowStats] = field(default_factory=dict)
    sources: Dict[int, FtpSource] = field(default_factory=dict)
    onoff: Dict[int, OnOffSource] = field(default_factory=dict)
    bottlenecks: List[Link] = field(default_factory=list)
    #: The single shared bottleneck the mean-field oracle applies to
    #: (None for multi-bottleneck families).
    oracle_link: Optional[Link] = None
    base_rtt: float = 0.0

    def watchdog(self, **overrides) -> Watchdog:
        """A liveness watchdog with budgets scaled to this scene."""
        return Watchdog.scaled(
            self.sim,
            self.senders,
            flows=self.spec.flows.count,
            duration=self.spec.duration,
            **overrides,
        ).arm()

    def run(self, with_watchdog: bool = True) -> "Scene":
        """Run to ``spec.duration`` (convenience for harnesses/tests)."""
        if with_watchdog:
            self.watchdog()
        self.sim.run(until=self.spec.duration)
        return self


def _size_sampler(spec: SceneSpec):
    f = spec.flows
    if f.size_dist == "infinite":
        return FixedSize(None)
    if f.size_dist == "fixed":
        return FixedSize(max(f.min_packets, int(round(f.mean_packets))))
    if f.size_dist == "pareto":
        return ParetoSizes(f.mean_packets, f.pareto_shape, f.min_packets)
    if f.size_dist == "lognormal":
        return LognormalSizes(f.mean_packets, f.lognormal_sigma, f.min_packets)
    raise ConfigurationError(f"unknown size_dist {f.size_dist!r}")


def _start_times(spec: SceneSpec, rng: RngStream) -> List[float]:
    a = spec.arrivals
    n = spec.flows.count
    if a.process == "poisson":
        return PoissonArrivals(a.rate)(rng, n)
    if a.process == "staggered":
        return StaggeredArrivals(a.stagger)(rng, n)
    # "onoff" flows all exist from (jittered) start; modulation is
    # attached per flow below.
    return JitteredArrivals(a.jitter)(rng, n)


def _form_pairs(
    hosts: List[Host], count: int, rng: RngStream
) -> List[Tuple[Host, Host]]:
    """Seeded random src/dst pairing over a fabric's host list: split a
    shuffled copy in half so every host serves one direction only (a
    host that both sends and receives would serialize on its access
    link and confound the workload)."""
    if len(hosts) < 2:
        raise ConfigurationError("scene family produced fewer than two hosts")
    shuffled = list(hosts)
    rng.shuffle(shuffled)
    half = len(shuffled) // 2
    srcs, dsts = shuffled[:half], shuffled[half : 2 * half]
    return [(srcs[i % half], dsts[(i + i // half) % half]) for i in range(count)]


def build_scene(
    spec: SceneSpec,
    sim: Optional[Simulator] = None,
    config: Optional[TcpConfig] = None,
    trace: Optional[TraceBus] = None,
) -> Scene:
    """Build the world a spec describes (see module docstring)."""
    spec.validate()
    fam = lookup_family(spec.family)
    topo_params = spec.topology if spec.topology is not None else fam.default_params()
    if config is None:
        config = spec.tcp  # spec-carried TCP knobs (delayed ACKs, ECN)
    sim = sim or Simulator()
    set_uid_state(1)
    root = RngStream(spec.seed, f"scene/{spec.family}")

    queue_factory = None
    if spec.red is not None:
        queue_factory = _SceneRedFactory(sim, spec.red, root)
    built = fam.builder(sim, topo_params, queue_factory, trace)

    pairs = built.pairs or _form_pairs(
        built.hosts, spec.flows.count, root.substream("pairs")
    )
    scene = Scene(
        spec=spec,
        sim=sim,
        net=built.net,
        pairs=pairs,
        bottlenecks=built.bottlenecks,
        oracle_link=built.oracle_link,
        base_rtt=built.base_rtt,
    )

    sampler = _size_sampler(spec)
    starts = _start_times(spec, root.substream("arrivals"))
    onoff = spec.arrivals.process == "onoff"
    for i in range(spec.flows.count):
        flow_id = i + 1
        src, dst = pairs[i % len(pairs)]
        stats = LeanFlowStats(flow_id=flow_id)
        sender, _ = make_connection(
            sim,
            spec.flows.variant,
            flow_id,
            src,
            dst,
            config=config,
            observer=stats,
            trace=trace,
        )
        scene.senders[flow_id] = sender
        scene.stats[flow_id] = stats
        if onoff:
            scene.onoff[flow_id] = OnOffSource(
                sim,
                sender,
                root.substream(f"flow/{flow_id}/onoff"),
                mean_on_packets=spec.arrivals.on_packets,
                mean_off_seconds=spec.arrivals.off_seconds,
                start_time=starts[i],
            )
        else:
            size = sampler(root.substream(f"flow/{flow_id}/size"))
            scene.sources[flow_id] = FtpSource(
                sim, sender, amount_packets=size, start_time=starts[i]
            )
    return scene
