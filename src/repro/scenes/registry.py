"""Registry of scene topology families.

Maps family names (what :class:`repro.scenes.SceneSpec.family` holds)
to their parameter dataclass and builder so the CLI, the scene builder
and the validator all agree on what exists.  Adding a family is one
:data:`FAMILIES` entry; everything downstream (``--list`` output,
spec validation, ``build_scene``) picks it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.errors import ConfigurationError
from repro.net.parkinglot import ParkingLotParams
from repro.net.topology import DumbbellParams
from repro.scenes.topologies import (
    BuiltTopology,
    FatTreeParams,
    MobileParams,
    WaxmanParams,
    build_dumbbell,
    build_fattree,
    build_mobile,
    build_parkinglot,
    build_wan,
)


@dataclass(frozen=True)
class SceneFamily:
    """One topology family: name, parameter type, builder, blurb."""

    name: str
    params_cls: type
    builder: Callable[..., BuiltTopology]
    description: str

    def default_params(self) -> Any:
        return self.params_cls()


FAMILIES: Dict[str, SceneFamily] = {
    fam.name: fam
    for fam in (
        SceneFamily(
            "dumbbell",
            DumbbellParams,
            build_dumbbell,
            "single shared bottleneck, n sender/receiver pairs (paper Fig. 4)",
        ),
        SceneFamily(
            "parkinglot",
            ParkingLotParams,
            build_parkinglot,
            "chain of bottlenecks: one long path plus per-hop cross traffic",
        ),
        SceneFamily(
            "mobile",
            MobileParams,
            build_mobile,
            "dumbbell with a time-varying wireless bottleneck"
            " (handover outages, bufferbloat buffer)",
        ),
        SceneFamily(
            "fattree",
            FatTreeParams,
            build_fattree,
            "k-ary fat-tree datacenter fabric, k^3/4 hosts",
        ),
        SceneFamily(
            "wan",
            WaxmanParams,
            build_wan,
            "seeded random Waxman WAN graph with access hosts",
        ),
    )
}


def family(name: str) -> SceneFamily:
    """Look up a family or raise with the list of known ones."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scene family {name!r};"
            f" choose from {sorted(FAMILIES)}"
        ) from None


def default_topology(name: str) -> Any:
    """The family's default parameter object."""
    return family(name).default_params()


def describe_families() -> str:
    """One-line-per-family listing for CLI help output."""
    width = max(len(n) for n in FAMILIES)
    return "\n".join(
        f"  {fam.name.ljust(width)}  {fam.description}"
        for fam in FAMILIES.values()
    )
