"""Application layer: traffic sources driving the TCP agents."""

from repro.app.ftp import FtpSource
from repro.app.workload import OnOffSource, PoissonTransfers, TransferRecord

__all__ = ["FtpSource", "PoissonTransfers", "OnOffSource", "TransferRecord"]
