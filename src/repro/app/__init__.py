"""Application layer: traffic sources driving the TCP agents."""

from repro.app.ftp import FtpSource
from repro.app.workload import (
    FixedSize,
    JitteredArrivals,
    LognormalSizes,
    OnOffSource,
    ParetoSizes,
    PoissonArrivals,
    PoissonTransfers,
    StaggeredArrivals,
    TransferRecord,
)

__all__ = [
    "FtpSource",
    "PoissonTransfers",
    "OnOffSource",
    "TransferRecord",
    "FixedSize",
    "ParetoSizes",
    "LognormalSizes",
    "PoissonArrivals",
    "StaggeredArrivals",
    "JitteredArrivals",
]
