"""Workload generators beyond a single FTP transfer.

:class:`PoissonTransfers` models the mice-dominated traffic of a busy
server (the paper's reference [1] studies exactly such a server):
short transfers arriving as a Poisson process, each opening a fresh
connection on its own host pair.  :class:`OnOffSource` chops one
long-lived connection into exponential on/off bursts, a standard
background-traffic model.

Both generators record per-transfer completion metrics so experiments
can report means/percentiles over the fleet.

The second half of the module is the :mod:`repro.scenes` workload
vocabulary: flow-size samplers (:class:`FixedSize`,
:class:`ParetoSizes`, :class:`LognormalSizes`) and arrival processes
(:class:`PoissonArrivals`, :class:`StaggeredArrivals`,
:class:`JitteredArrivals`).  All are *named picklable callables* — no
closures — so a scene mid-run stays snapshot-safe, and every draw
comes from the :class:`~repro.sim.rng.RngStream` passed in, so scenes
stay bit-identical under parallel sweeps, warm starts and restores.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.app.ftp import FtpSource
from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.net.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.base import TcpSender
from repro.tcp.factory import make_connection


class _TransferCompletion:
    """Completion hook for one generated transfer.

    A named callable (not a closure) so a world mid-workload stays
    picklable: closures appended to ``completion_callbacks`` would make
    :mod:`repro.snapshot` refuse the whole scenario.
    """

    __slots__ = ("record", "sender")

    def __init__(self, record: "TransferRecord", sender: TcpSender):
        self.record = record
        self.sender = sender

    def __call__(self, t: float) -> None:
        self.record.complete_time = t
        self.record.timeouts = self.sender.timeouts
        self.record.retransmits = self.sender.retransmits


@dataclass
class TransferRecord:
    """Outcome of one generated transfer."""

    flow_id: int
    start_time: float
    size_packets: int
    complete_time: Optional[float] = None
    timeouts: int = 0
    retransmits: int = 0

    @property
    def completed(self) -> bool:
        return self.complete_time is not None

    @property
    def delay(self) -> Optional[float]:
        if self.complete_time is None:
            return None
        return self.complete_time - self.start_time


class PoissonTransfers:
    """Poisson arrivals of short transfers over a dumbbell.

    Parameters
    ----------
    sim, dumbbell:
        The world to generate into.  The dumbbell must have at least
        ``max_transfers`` host pairs (one fresh pair per transfer, so
        connections never collide on flow ids).
    variant:
        TCP variant for every generated sender.
    arrival_rate:
        Mean arrivals per second (Poisson).
    size_packets:
        Fixed transfer size, or use ``size_sampler`` for a distribution.
    size_sampler:
        Optional callable ``(rng) -> int`` overriding ``size_packets``.
    max_transfers:
        Stop generating after this many transfers.
    rng:
        Random stream for arrivals and sizes.
    config:
        TCP configuration for the generated connections.
    """

    def __init__(
        self,
        sim: Simulator,
        dumbbell: Dumbbell,
        variant: str,
        arrival_rate: float,
        size_packets: int = 50,
        size_sampler: Optional[Callable[[RngStream], int]] = None,
        max_transfers: int = 10,
        rng: Optional[RngStream] = None,
        config: Optional[TcpConfig] = None,
        first_flow_id: int = 1,
    ):
        if arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if max_transfers < 1:
            raise ConfigurationError("max_transfers must be >= 1")
        if len(dumbbell.senders) < max_transfers:
            raise ConfigurationError(
                f"dumbbell has {len(dumbbell.senders)} host pairs but"
                f" {max_transfers} transfers were requested"
            )
        self.sim = sim
        self.dumbbell = dumbbell
        self.variant = variant
        self.arrival_rate = arrival_rate
        self.size_packets = size_packets
        self.size_sampler = size_sampler
        self.max_transfers = max_transfers
        self.rng = rng or RngStream(0, "poisson")
        self.config = config
        self.first_flow_id = first_flow_id
        self.records: List[TransferRecord] = []
        self.senders: Dict[int, TcpSender] = {}
        self._schedule_next(0.0)

    def _schedule_next(self, now: float) -> None:
        if len(self.records) >= self.max_transfers:
            return
        gap = self.rng.expovariate(self.arrival_rate)
        self.sim.schedule(gap, self._launch)

    def _launch(self) -> None:
        index = len(self.records)
        if index >= self.max_transfers:
            return
        flow_id = self.first_flow_id + index
        pair = index + 1  # 1-based host pair
        size = (
            self.size_sampler(self.rng)
            if self.size_sampler is not None
            else self.size_packets
        )
        if size < 1:
            raise ConfigurationError("sampled transfer size must be >= 1 packet")
        record = TransferRecord(
            flow_id=flow_id, start_time=self.sim.now, size_packets=size
        )
        self.records.append(record)
        sender, _ = make_connection(
            self.sim,
            self.variant,
            flow_id,
            self.dumbbell.sender(pair),
            self.dumbbell.receiver(pair),
            config=self.config,
        )
        self.senders[flow_id] = sender

        sender.completion_callbacks.append(_TransferCompletion(record, sender))
        FtpSource(self.sim, sender, amount_packets=size, start_time=self.sim.now)
        self._schedule_next(self.sim.now)

    # ------------------------------------------------------------------
    # fleet metrics
    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[TransferRecord]:
        return [r for r in self.records if r.completed]

    def completion_ratio(self) -> float:
        if not self.records:
            return 0.0
        return len(self.completed) / len(self.records)

    def mean_delay(self) -> Optional[float]:
        done = self.completed
        if not done:
            return None
        return sum(r.delay for r in done) / len(done)

    def percentile_delay(self, fraction: float) -> Optional[float]:
        done = sorted(r.delay for r in self.completed)
        if not done:
            return None
        index = min(int(fraction * len(done)), len(done) - 1)
        return done[index]


class OnOffSource:
    """Exponential on/off modulation of one unbounded sender.

    During OFF periods the application simply stops offering data (the
    sender drains its window and goes quiet); each ON period offers a
    fresh burst of packets.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        rng: RngStream,
        mean_on_packets: int = 50,
        mean_off_seconds: float = 0.5,
        start_time: float = 0.0,
    ):
        if mean_on_packets < 1:
            raise ConfigurationError("mean_on_packets must be >= 1")
        if mean_off_seconds <= 0:
            raise ConfigurationError("mean_off_seconds must be positive")
        self.sim = sim
        self.sender = sender
        self.rng = rng
        self.mean_on_packets = mean_on_packets
        self.mean_off_seconds = mean_off_seconds
        self.bursts = 0
        sender.set_data_limit(None)  # replaced per burst
        sender.completion_callbacks.append(self._burst_done)
        sim.schedule_at(start_time, self._start_burst)

    def _start_burst(self) -> None:
        self.bursts += 1
        burst = max(1, int(self.rng.expovariate(1.0 / self.mean_on_packets)))
        # Extend the sender's limit by one burst worth of packets.
        current = self.sender.snd_nxt
        self.sender.set_data_limit(current + burst)
        self.sender.completed = False  # re-arm completion detection
        if not self.sender.started:
            self.sender.start()
        else:
            self.sender.send_available()

    def _burst_done(self, _t: float) -> None:
        off = self.rng.expovariate(1.0 / self.mean_off_seconds)
        self.sim.schedule(off, self._start_burst)


# ----------------------------------------------------------------------
# scene vocabulary: flow-size samplers
# ----------------------------------------------------------------------


class FixedSize:
    """Every flow transfers exactly ``packets`` packets (``None`` =
    infinite backlog, the paper's long-lived FTP sources)."""

    __slots__ = ("packets",)

    def __init__(self, packets: Optional[int] = None):
        if packets is not None and packets < 1:
            raise ConfigurationError("fixed size must be >= 1 packet")
        self.packets = packets

    def __call__(self, rng: RngStream) -> Optional[int]:
        return self.packets


class ParetoSizes:
    """Heavy-tailed (Pareto) flow sizes in packets.

    ``shape`` is the tail index alpha (> 1 so the mean exists; web
    traffic measurements put it around 1.2-1.6); ``mean_packets`` fixes
    the distribution mean, from which the scale ``x_m = mean * (alpha -
    1) / alpha`` follows.  Samples are floored at ``min_packets``.
    """

    __slots__ = ("mean_packets", "shape", "min_packets", "_scale")

    def __init__(self, mean_packets: float = 100.0, shape: float = 1.5,
                 min_packets: int = 1):
        if shape <= 1.0:
            raise ConfigurationError("Pareto shape must be > 1 (finite mean)")
        if mean_packets < 1:
            raise ConfigurationError("mean_packets must be >= 1")
        if min_packets < 1:
            raise ConfigurationError("min_packets must be >= 1")
        self.mean_packets = mean_packets
        self.shape = shape
        self.min_packets = min_packets
        self._scale = mean_packets * (shape - 1.0) / shape

    def __call__(self, rng: RngStream) -> int:
        u = 1.0 - rng.random()  # in (0, 1]; inverse-CDF draw
        return max(self.min_packets, int(round(self._scale / u ** (1.0 / self.shape))))


class LognormalSizes:
    """Lognormal flow sizes in packets (the body of measured size
    distributions; Pareto covers the tail).

    ``mean_packets`` is the distribution mean; ``sigma`` the log-domain
    standard deviation, so ``mu = ln(mean) - sigma^2 / 2``.  The normal
    draw is Box-Muller over two uniforms from the stream (RngStream
    deliberately has no gauss state to checkpoint).
    """

    __slots__ = ("mean_packets", "sigma", "min_packets", "_mu")

    def __init__(self, mean_packets: float = 100.0, sigma: float = 1.0,
                 min_packets: int = 1):
        if mean_packets < 1:
            raise ConfigurationError("mean_packets must be >= 1")
        if sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        if min_packets < 1:
            raise ConfigurationError("min_packets must be >= 1")
        self.mean_packets = mean_packets
        self.sigma = sigma
        self.min_packets = min_packets
        self._mu = math.log(mean_packets) - 0.5 * sigma * sigma

    def __call__(self, rng: RngStream) -> int:
        u1 = 1.0 - rng.random()  # in (0, 1] so log() is safe
        u2 = rng.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return max(
            self.min_packets, int(round(math.exp(self._mu + self.sigma * z)))
        )


# ----------------------------------------------------------------------
# scene vocabulary: arrival processes
# ----------------------------------------------------------------------


class PoissonArrivals:
    """Flow start times as a Poisson process of ``rate`` per second
    (cumulative sum of exponential gaps)."""

    __slots__ = ("rate",)

    def __init__(self, rate: float = 10.0):
        if rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate = rate

    def __call__(self, rng: RngStream, n: int) -> List[float]:
        times, t = [], 0.0
        for _ in range(n):
            t += rng.expovariate(self.rate)
            times.append(t)
        return times


class StaggeredArrivals:
    """Deterministic starts every ``gap`` seconds (flow ``i`` starts at
    ``i * gap``) — the Figure 6 pattern, generalized."""

    __slots__ = ("gap",)

    def __init__(self, gap: float = 0.01):
        if gap < 0:
            raise ConfigurationError("stagger gap must be >= 0")
        self.gap = gap

    def __call__(self, rng: RngStream, n: int) -> List[float]:
        return [i * self.gap for i in range(n)]


class JitteredArrivals:
    """Near-simultaneous starts: flow ``i`` starts at an independent
    uniform draw in ``[0, window]``.  ``window=0`` is the fully
    synchronized (and maximally phase-locked) start."""

    __slots__ = ("window",)

    def __init__(self, window: float = 0.1):
        if window < 0:
            raise ConfigurationError("jitter window must be >= 0")
        self.window = window

    def __call__(self, rng: RngStream, n: int) -> List[float]:
        if self.window == 0:
            return [0.0] * n
        return [rng.uniform(0.0, self.window) for _ in range(n)]
