"""Workload generators beyond a single FTP transfer.

:class:`PoissonTransfers` models the mice-dominated traffic of a busy
server (the paper's reference [1] studies exactly such a server):
short transfers arriving as a Poisson process, each opening a fresh
connection on its own host pair.  :class:`OnOffSource` chops one
long-lived connection into exponential on/off bursts, a standard
background-traffic model.

Both generators record per-transfer completion metrics so experiments
can report means/percentiles over the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.app.ftp import FtpSource
from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.net.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.tcp.base import TcpSender
from repro.tcp.factory import make_connection


class _TransferCompletion:
    """Completion hook for one generated transfer.

    A named callable (not a closure) so a world mid-workload stays
    picklable: closures appended to ``completion_callbacks`` would make
    :mod:`repro.snapshot` refuse the whole scenario.
    """

    __slots__ = ("record", "sender")

    def __init__(self, record: "TransferRecord", sender: TcpSender):
        self.record = record
        self.sender = sender

    def __call__(self, t: float) -> None:
        self.record.complete_time = t
        self.record.timeouts = self.sender.timeouts
        self.record.retransmits = self.sender.retransmits


@dataclass
class TransferRecord:
    """Outcome of one generated transfer."""

    flow_id: int
    start_time: float
    size_packets: int
    complete_time: Optional[float] = None
    timeouts: int = 0
    retransmits: int = 0

    @property
    def completed(self) -> bool:
        return self.complete_time is not None

    @property
    def delay(self) -> Optional[float]:
        if self.complete_time is None:
            return None
        return self.complete_time - self.start_time


class PoissonTransfers:
    """Poisson arrivals of short transfers over a dumbbell.

    Parameters
    ----------
    sim, dumbbell:
        The world to generate into.  The dumbbell must have at least
        ``max_transfers`` host pairs (one fresh pair per transfer, so
        connections never collide on flow ids).
    variant:
        TCP variant for every generated sender.
    arrival_rate:
        Mean arrivals per second (Poisson).
    size_packets:
        Fixed transfer size, or use ``size_sampler`` for a distribution.
    size_sampler:
        Optional callable ``(rng) -> int`` overriding ``size_packets``.
    max_transfers:
        Stop generating after this many transfers.
    rng:
        Random stream for arrivals and sizes.
    config:
        TCP configuration for the generated connections.
    """

    def __init__(
        self,
        sim: Simulator,
        dumbbell: Dumbbell,
        variant: str,
        arrival_rate: float,
        size_packets: int = 50,
        size_sampler: Optional[Callable[[RngStream], int]] = None,
        max_transfers: int = 10,
        rng: Optional[RngStream] = None,
        config: Optional[TcpConfig] = None,
        first_flow_id: int = 1,
    ):
        if arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if max_transfers < 1:
            raise ConfigurationError("max_transfers must be >= 1")
        if len(dumbbell.senders) < max_transfers:
            raise ConfigurationError(
                f"dumbbell has {len(dumbbell.senders)} host pairs but"
                f" {max_transfers} transfers were requested"
            )
        self.sim = sim
        self.dumbbell = dumbbell
        self.variant = variant
        self.arrival_rate = arrival_rate
        self.size_packets = size_packets
        self.size_sampler = size_sampler
        self.max_transfers = max_transfers
        self.rng = rng or RngStream(0, "poisson")
        self.config = config
        self.first_flow_id = first_flow_id
        self.records: List[TransferRecord] = []
        self.senders: Dict[int, TcpSender] = {}
        self._schedule_next(0.0)

    def _schedule_next(self, now: float) -> None:
        if len(self.records) >= self.max_transfers:
            return
        gap = self.rng.expovariate(self.arrival_rate)
        self.sim.schedule(gap, self._launch)

    def _launch(self) -> None:
        index = len(self.records)
        if index >= self.max_transfers:
            return
        flow_id = self.first_flow_id + index
        pair = index + 1  # 1-based host pair
        size = (
            self.size_sampler(self.rng)
            if self.size_sampler is not None
            else self.size_packets
        )
        if size < 1:
            raise ConfigurationError("sampled transfer size must be >= 1 packet")
        record = TransferRecord(
            flow_id=flow_id, start_time=self.sim.now, size_packets=size
        )
        self.records.append(record)
        sender, _ = make_connection(
            self.sim,
            self.variant,
            flow_id,
            self.dumbbell.sender(pair),
            self.dumbbell.receiver(pair),
            config=self.config,
        )
        self.senders[flow_id] = sender

        sender.completion_callbacks.append(_TransferCompletion(record, sender))
        FtpSource(self.sim, sender, amount_packets=size, start_time=self.sim.now)
        self._schedule_next(self.sim.now)

    # ------------------------------------------------------------------
    # fleet metrics
    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[TransferRecord]:
        return [r for r in self.records if r.completed]

    def completion_ratio(self) -> float:
        if not self.records:
            return 0.0
        return len(self.completed) / len(self.records)

    def mean_delay(self) -> Optional[float]:
        done = self.completed
        if not done:
            return None
        return sum(r.delay for r in done) / len(done)

    def percentile_delay(self, fraction: float) -> Optional[float]:
        done = sorted(r.delay for r in self.completed)
        if not done:
            return None
        index = min(int(fraction * len(done)), len(done) - 1)
        return done[index]


class OnOffSource:
    """Exponential on/off modulation of one unbounded sender.

    During OFF periods the application simply stops offering data (the
    sender drains its window and goes quiet); each ON period offers a
    fresh burst of packets.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        rng: RngStream,
        mean_on_packets: int = 50,
        mean_off_seconds: float = 0.5,
        start_time: float = 0.0,
    ):
        if mean_on_packets < 1:
            raise ConfigurationError("mean_on_packets must be >= 1")
        if mean_off_seconds <= 0:
            raise ConfigurationError("mean_off_seconds must be positive")
        self.sim = sim
        self.sender = sender
        self.rng = rng
        self.mean_on_packets = mean_on_packets
        self.mean_off_seconds = mean_off_seconds
        self.bursts = 0
        sender.set_data_limit(None)  # replaced per burst
        sender.completion_callbacks.append(self._burst_done)
        sim.schedule_at(start_time, self._start_burst)

    def _start_burst(self) -> None:
        self.bursts += 1
        burst = max(1, int(self.rng.expovariate(1.0 / self.mean_on_packets)))
        # Extend the sender's limit by one burst worth of packets.
        current = self.sender.snd_nxt
        self.sender.set_data_limit(current + burst)
        self.sender.completed = False  # re-arm completion detection
        if not self.sender.started:
            self.sender.start()
        else:
            self.sender.send_available()

    def _burst_done(self, _t: float) -> None:
        off = self.rng.expovariate(1.0 / self.mean_off_seconds)
        self.sim.schedule(off, self._start_burst)
