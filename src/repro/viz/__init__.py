"""Terminal visualization: ASCII scatter plots and aligned tables for
the experiment harnesses (no plotting dependency required)."""

from repro.viz.ascii import ascii_scatter, ascii_step_series, format_table

__all__ = ["ascii_scatter", "ascii_step_series", "format_table"]
