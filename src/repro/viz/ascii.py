"""Plain-text plotting helpers.

The experiment harnesses print their figures as ASCII scatter plots so
the reproduction needs no plotting stack; the raw series are always
returned alongside for anyone who wants to re-plot with matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def ascii_scatter(
    series: Dict[str, List[Point]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    markers: str = "ox+*#@%&",
    title: str = "",
) -> str:
    """Render named point series on one character grid.

    Each series gets the next marker from ``markers``; overlapping
    points show the marker of the series drawn last.  Returns the plot
    as a single string (legend + canvas + axis ranges).
    """
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return "(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend_parts = []
    # Cycle markers so a plot with more series than markers still shows
    # every series (markers then repeat).
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend_parts.append(f"{marker} = {name}")
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(legend_parts))
    lines.append(f"{y_label}: [{y_min:.3g} .. {y_max:.3g}]")
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(f"{x_label}: [{x_min:.3g} .. {x_max:.3g}]")
    return "\n".join(lines)


def ascii_step_series(
    points: List[Point],
    width: int = 72,
    height: int = 14,
    x_label: str = "time (s)",
    y_label: str = "value",
    title: str = "",
    marker: str = "#",
) -> str:
    """Render one stepwise series (e.g. a cwnd trajectory) as filled
    vertical bars — easier to read for staircase signals than a
    scatter.  Each column shows the series value at that time bin
    (last-sample-wins within a bin)."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(0.0, min(ys)), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    # Column value = the latest sample falling in (or before) the bin.
    ordered = sorted(points)
    column_values = [None] * width
    for x, y in ordered:
        col = int((x - x_min) / x_span * (width - 1))
        column_values[col] = y
    last = ordered[0][1]
    for col in range(width):
        if column_values[col] is None:
            column_values[col] = last
        else:
            last = column_values[col]

    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(column_values):
        top = int((value - y_min) / y_span * (height - 1))
        for row in range(top + 1):
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}: [{y_min:.3g} .. {y_max:.3g}]")
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(f"{x_label}: [{x_min:.3g} .. {x_max:.3g}]")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (left-aligned first column,
    right-aligned numerics)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out_lines = []
    for row_index, row in enumerate(cells):
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        out_lines.append("  ".join(parts))
        if row_index == 0:
            out_lines.append("  ".join("-" * w for w in widths))
    return "\n".join(out_lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
