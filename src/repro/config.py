"""Shared configuration dataclasses.

:class:`TcpConfig` gathers every tunable of the TCP agents.  Defaults
match the paper's evaluation setup: 1000-byte data packets, 40-byte
ACKs, an ACK for every received packet (delayed ACKs off — Section 2.2
relies on immediate ACKs for out-of-order data), windows and buffers
measured in packets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TcpConfig:
    """TCP agent tunables (packet-unit convention, see DESIGN.md §3).

    Attributes
    ----------
    mss_bytes:
        Data packet size on the wire (paper: 1000 bytes).
    ack_bytes:
        ACK packet size (paper: 40 bytes).
    initial_cwnd:
        Initial congestion window, packets.
    initial_ssthresh:
        Initial slow-start threshold, packets (effectively "large").
    receiver_window:
        Advertised window, packets.
    dupack_threshold:
        Duplicate ACKs that trigger fast retransmit (3, as everywhere).
    initial_rto:
        RTO before the first RTT sample (RFC 6298 suggests 1-3 s).
    min_rto / max_rto:
        RTO clamp.
    timer_granularity:
        Coarse timer tick in seconds (0 = exact timers).  The classic
        100 ms tick reproduces the visibly coarse timeouts of Fig. 6(a).
    max_burst:
        Packets a New-Reno/SACK sender may emit per incoming ACK while
        in recovery (the paper's "maxburst"; 0 disables the limit).
    delayed_ack:
        Enable RFC 1122 delayed ACKs at the receiver.  Off by default:
        the paper's receivers ACK every packet.
    delayed_ack_timeout:
        Delayed-ACK timer, seconds.
    sack_block_limit:
        Max SACK blocks carried per ACK (RFC 2018 allows 3-4).
    ecn_enabled:
        Negotiate ECN: data packets carry the ECT codepoint and the
        sender halves its window (at most once per RTT) on an echoed
        congestion mark instead of waiting for a loss.  Off by default
        — the paper predates deployed ECN; provided as an extension.
    slow_start_restart:
        RFC 2581 §4.1: after the connection has been idle for more
        than one RTO, collapse cwnd back to the initial window before
        sending again, so an on/off source cannot blast a stale full
        window into the path.  Off by default (the paper's sources are
        never idle).
    """

    mss_bytes: int = 1000
    ack_bytes: int = 40
    initial_cwnd: float = 1.0
    initial_ssthresh: float = 64.0
    receiver_window: int = 64
    dupack_threshold: int = 3
    initial_rto: float = 3.0
    min_rto: float = 1.0
    max_rto: float = 64.0
    timer_granularity: float = 0.1
    max_burst: int = 4
    delayed_ack: bool = False
    delayed_ack_timeout: float = 0.2
    sack_block_limit: int = 3
    ecn_enabled: bool = False
    slow_start_restart: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.mss_bytes < 1 or self.ack_bytes < 1:
            raise ConfigurationError("packet sizes must be positive")
        if self.initial_cwnd < 1:
            raise ConfigurationError("initial cwnd must be >= 1 packet")
        if self.receiver_window < 1:
            raise ConfigurationError("receiver window must be >= 1 packet")
        if self.dupack_threshold < 1:
            raise ConfigurationError("dupack threshold must be >= 1")
        if not 0 < self.min_rto <= self.max_rto:
            raise ConfigurationError("need 0 < min_rto <= max_rto")
        if self.initial_rto <= 0:
            raise ConfigurationError("initial_rto must be positive")
        if self.timer_granularity < 0:
            raise ConfigurationError("timer granularity must be >= 0")
        if self.max_burst < 0:
            raise ConfigurationError("max_burst must be >= 0")
        if self.sack_block_limit < 1:
            raise ConfigurationError("sack_block_limit must be >= 1")

    def with_(self, **changes: Any) -> "TcpConfig":
        """Return a copy with ``changes`` applied (validated)."""
        cfg = replace(self, **changes)
        cfg.validate()
        return cfg
