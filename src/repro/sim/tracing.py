"""A lightweight trace bus, the replacement for ns-2 trace files.

Components publish typed trace records (packet enqueued, dropped, ACK
received, cwnd changed, ...); metrics modules subscribe by category.
Tracing is pay-for-what-you-use: with no subscribers a publish is one
dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, Iterable, List
from collections import defaultdict, deque


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Simulation time the event occurred.
    category:
        Dotted category string, e.g. ``"queue.drop"`` or ``"tcp.cwnd"``.
    source:
        Name of the emitting component.
    fields:
        Category-specific payload.
    """

    time: float
    category: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[TraceRecord], None]


class TraceChannel:
    """A per-category emit handle with a live merged-subscriber list.

    Hot call sites hold one of these (obtained from
    :meth:`TraceBus.channel`) and guard on ``channel.subs`` *before*
    building the field dict, so an unsubscribed category costs one
    attribute load and one truthiness test — no kwargs dict, no
    :class:`TraceRecord`.  The bus keeps ``subs`` current on every
    subscribe/unsubscribe (including wildcard changes), so mid-run
    subscriptions re-enable the category immediately.
    """

    __slots__ = ("category", "subs")

    def __init__(self, category: str, subs: List[Subscriber]):
        self.category = category
        self.subs = subs

    def emit(self, time: float, source: str, **fields: Any) -> None:
        """Build and deliver a record.  Callers on hot paths should
        check ``self.subs`` first and skip the call entirely when it is
        empty; calling unconditionally is still correct."""
        subs = self.subs
        if subs:
            record = TraceRecord(time=time, category=self.category, source=source, fields=fields)
            for fn in subs:
                fn(record)


#: Shared no-op channel for components constructed without a trace bus:
#: ``subs`` is permanently empty, so the hot-path guard stays a single
#: attribute test with no ``trace is None`` special case.
NULL_CHANNEL = TraceChannel("<null>", [])


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord` objects.

    Subscriptions are exact-category; subscribing to ``"*"`` receives
    everything.

    Delivery is driven by a per-category *merged* subscriber list
    (exact + wildcard, materialized lazily and invalidated on
    subscribe/unsubscribe), so the per-emit cost is a single dict
    lookup whether or not anyone is listening — emits happen millions
    of times per run, subscription changes a handful.
    """

    WILDCARD = "*"

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)
        # category -> snapshot of exact + wildcard subscribers.  An
        # empty snapshot is cached too: that is what keeps the
        # nobody-listening emit at one lookup.
        self._merged: Dict[str, List[Subscriber]] = {}
        # category -> TraceChannel handed to hot call sites.  Channels
        # are updated eagerly on subscription changes (rare) so the
        # per-emit fast path never has to revalidate.
        self._channels: Dict[str, TraceChannel] = {}

    def channel(self, category: str) -> TraceChannel:
        """A cacheable per-category emit handle (see
        :class:`TraceChannel`).  Repeated calls return the same object,
        and its ``subs`` list tracks subscription changes."""
        ch = self._channels.get(category)
        if ch is None:
            merged = self._merged.get(category)
            if merged is None:
                merged = self._merge(category)
            ch = TraceChannel(category, merged)
            self._channels[category] = ch
        return ch

    def _invalidate(self, category: str) -> None:
        # _merge refreshes any existing channel's subs as a side effect.
        if category == self.WILDCARD:
            self._merged.clear()
            for ch in self._channels.values():
                self._merge(ch.category)
        else:
            self._merged.pop(category, None)
            if category in self._channels:
                self._merge(category)

    def _merge(self, category: str) -> List[Subscriber]:
        merged = list(self._subscribers.get(category, ()))
        if category != self.WILDCARD:
            merged.extend(self._subscribers.get(self.WILDCARD, ()))
        self._merged[category] = merged
        ch = self._channels.get(category)
        if ch is not None:
            ch.subs = merged
        return merged

    def subscribe(self, category: str, fn: Subscriber) -> None:
        """Register ``fn`` for records of ``category`` (or ``"*"``)."""
        self._subscribers[category].append(fn)
        self._invalidate(category)

    def unsubscribe(self, category: str, fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        subscribers = self._subscribers[category]
        subscribers.remove(fn)
        if not subscribers:
            # Prune the empty list: a leftover [] would make the
            # defaultdict read as "has subscribers" forever.
            del self._subscribers[category]
        self._invalidate(category)

    def subscribe_many(self, categories: Iterable[str], fn: Subscriber) -> None:
        """Register one ``fn`` across several exact categories — the
        trace-tap idiom used by metrics collectors that want a handful
        of related channels without paying for a wildcard."""
        for category in categories:
            self.subscribe(category, fn)

    def unsubscribe_many(self, categories: Iterable[str], fn: Subscriber) -> None:
        """Undo a :meth:`subscribe_many` with the same arguments."""
        for category in categories:
            self.unsubscribe(category, fn)

    def has_subscribers(self, category: str) -> bool:
        merged = self._merged.get(category)
        if merged is None:
            merged = self._merge(category)
        return bool(merged)

    def publish(self, record: TraceRecord) -> None:
        """Deliver ``record`` to exact-category and wildcard subscribers."""
        merged = self._merged.get(record.category)
        if merged is None:
            merged = self._merge(record.category)
        for fn in merged:
            fn(record)

    def emit(self, time: float, category: str, source: str, **fields: Any) -> None:
        """Convenience constructor + publish, skipping record creation
        entirely when nobody is listening."""
        merged = self._merged.get(category)
        if merged is None:
            merged = self._merge(category)
        if merged:
            record = TraceRecord(time=time, category=category, source=source, fields=fields)
            for fn in merged:
                fn(record)

    # ------------------------------------------------------------------
    # checkpoint / restore (pickle protocol)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Subscriptions only — the merged cache is a lazily rebuilt
        derived structure, so dropping it keeps the pickled form (and
        the snapshot digest) independent of which categories happened
        to be emitted before capture."""
        return {"subscribers": {k: list(v) for k, v in self._subscribers.items()}}

    def __setstate__(self, state) -> None:
        self._subscribers = defaultdict(list)
        for category, subscribers in state["subscribers"].items():
            self._subscribers[category] = list(subscribers)
        self._merged = {}
        self._channels = {}


class TraceTail:
    """A bounded ring buffer of the most recent trace records.

    Post-mortem tooling (invariant checkers, the engine watchdog)
    attaches the tail to its failure report so "what just happened"
    survives the abort.  Subscribe it to a bus wildcard, or let
    :class:`~repro.sim.invariants.InvariantSuite` feed it.
    """

    def __init__(self, capacity: int = 50):
        if capacity < 1:
            raise ValueError(f"tail capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def install(self, bus: "TraceBus") -> None:
        """Start capturing everything published on ``bus``."""
        bus.subscribe(TraceBus.WILDCARD, self.append)

    def records(self) -> List[TraceRecord]:
        """The captured records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
