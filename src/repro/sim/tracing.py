"""A lightweight trace bus, the replacement for ns-2 trace files.

Components publish typed trace records (packet enqueued, dropped, ACK
received, cwnd changed, ...); metrics modules subscribe by category.
Tracing is pay-for-what-you-use: with no subscribers a publish is one
dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, List
from collections import defaultdict, deque


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Simulation time the event occurred.
    category:
        Dotted category string, e.g. ``"queue.drop"`` or ``"tcp.cwnd"``.
    source:
        Name of the emitting component.
    fields:
        Category-specific payload.
    """

    time: float
    category: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord` objects.

    Subscriptions are exact-category; subscribing to ``"*"`` receives
    everything.

    Delivery is driven by a per-category *merged* subscriber list
    (exact + wildcard, materialized lazily and invalidated on
    subscribe/unsubscribe), so the per-emit cost is a single dict
    lookup whether or not anyone is listening — emits happen millions
    of times per run, subscription changes a handful.
    """

    WILDCARD = "*"

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)
        # category -> snapshot of exact + wildcard subscribers.  An
        # empty snapshot is cached too: that is what keeps the
        # nobody-listening emit at one lookup.
        self._merged: Dict[str, List[Subscriber]] = {}

    def _invalidate(self, category: str) -> None:
        if category == self.WILDCARD:
            self._merged.clear()
        else:
            self._merged.pop(category, None)

    def _merge(self, category: str) -> List[Subscriber]:
        merged = list(self._subscribers.get(category, ()))
        if category != self.WILDCARD:
            merged.extend(self._subscribers.get(self.WILDCARD, ()))
        self._merged[category] = merged
        return merged

    def subscribe(self, category: str, fn: Subscriber) -> None:
        """Register ``fn`` for records of ``category`` (or ``"*"``)."""
        self._subscribers[category].append(fn)
        self._invalidate(category)

    def unsubscribe(self, category: str, fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        subscribers = self._subscribers[category]
        subscribers.remove(fn)
        if not subscribers:
            # Prune the empty list: a leftover [] would make the
            # defaultdict read as "has subscribers" forever.
            del self._subscribers[category]
        self._invalidate(category)

    def has_subscribers(self, category: str) -> bool:
        merged = self._merged.get(category)
        if merged is None:
            merged = self._merge(category)
        return bool(merged)

    def publish(self, record: TraceRecord) -> None:
        """Deliver ``record`` to exact-category and wildcard subscribers."""
        merged = self._merged.get(record.category)
        if merged is None:
            merged = self._merge(record.category)
        for fn in merged:
            fn(record)

    def emit(self, time: float, category: str, source: str, **fields: Any) -> None:
        """Convenience constructor + publish, skipping record creation
        entirely when nobody is listening."""
        merged = self._merged.get(category)
        if merged is None:
            merged = self._merge(category)
        if merged:
            record = TraceRecord(time=time, category=category, source=source, fields=fields)
            for fn in merged:
                fn(record)

    # ------------------------------------------------------------------
    # checkpoint / restore (pickle protocol)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Subscriptions only — the merged cache is a lazily rebuilt
        derived structure, so dropping it keeps the pickled form (and
        the snapshot digest) independent of which categories happened
        to be emitted before capture."""
        return {"subscribers": {k: list(v) for k, v in self._subscribers.items()}}

    def __setstate__(self, state) -> None:
        self._subscribers = defaultdict(list)
        for category, subscribers in state["subscribers"].items():
            self._subscribers[category] = list(subscribers)
        self._merged = {}


class TraceTail:
    """A bounded ring buffer of the most recent trace records.

    Post-mortem tooling (invariant checkers, the engine watchdog)
    attaches the tail to its failure report so "what just happened"
    survives the abort.  Subscribe it to a bus wildcard, or let
    :class:`~repro.sim.invariants.InvariantSuite` feed it.
    """

    def __init__(self, capacity: int = 50):
        if capacity < 1:
            raise ValueError(f"tail capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def install(self, bus: "TraceBus") -> None:
        """Start capturing everything published on ``bus``."""
        bus.subscribe(TraceBus.WILDCARD, self.append)

    def records(self) -> List[TraceRecord]:
        """The captured records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
