"""A lightweight trace bus, the replacement for ns-2 trace files.

Components publish typed trace records (packet enqueued, dropped, ACK
received, cwnd changed, ...); metrics modules subscribe by category.
Tracing is pay-for-what-you-use: with no subscribers a publish is one
dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, List
from collections import defaultdict


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Simulation time the event occurred.
    category:
        Dotted category string, e.g. ``"queue.drop"`` or ``"tcp.cwnd"``.
    source:
        Name of the emitting component.
    fields:
        Category-specific payload.
    """

    time: float
    category: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord` objects.

    Subscriptions are exact-category; subscribing to ``"*"`` receives
    everything.
    """

    WILDCARD = "*"

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)

    def subscribe(self, category: str, fn: Subscriber) -> None:
        """Register ``fn`` for records of ``category`` (or ``"*"``)."""
        self._subscribers[category].append(fn)

    def unsubscribe(self, category: str, fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        self._subscribers[category].remove(fn)

    def has_subscribers(self, category: str) -> bool:
        return bool(self._subscribers.get(category) or self._subscribers.get(self.WILDCARD))

    def publish(self, record: TraceRecord) -> None:
        """Deliver ``record`` to exact-category and wildcard subscribers."""
        for fn in self._subscribers.get(record.category, ()):
            fn(record)
        for fn in self._subscribers.get(self.WILDCARD, ()):
            fn(record)

    def emit(self, time: float, category: str, source: str, **fields: Any) -> None:
        """Convenience constructor + publish, skipping record creation
        entirely when nobody is listening."""
        if self.has_subscribers(category):
            self.publish(TraceRecord(time=time, category=category, source=source, fields=fields))
