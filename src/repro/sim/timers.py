"""Cancellable, restartable timers on top of the event engine.

TCP needs a retransmission timer that is constantly restarted as ACKs
arrive; doing that with raw events invites leaks.  :class:`Timer` wraps
one logical timer with ``start``/``restart``/``stop`` semantics and an
optional coarse *granularity* that rounds expirations up to a tick
boundary, mimicking the coarse-grained timers of classic BSD/ns-2 TCP
implementations.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Event, Simulator


class Timer:
    """One restartable timeout.

    Parameters
    ----------
    sim:
        The simulator that provides the clock.
    callback:
        Called (with no arguments) when the timer expires.
    granularity:
        If > 0, expiration delays are rounded up to the next multiple of
        this tick (seconds), emulating coarse-grained kernel timers.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        granularity: float = 0.0,
    ):
        if granularity < 0:
            raise ConfigurationError("timer granularity must be >= 0")
        self._sim = sim
        self._callback = callback
        self._granularity = granularity
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True while the timer is armed."""
        return self._event is not None and self._event.pending

    @property
    def granularity(self) -> float:
        """Current tick size in seconds (0 = exact timers)."""
        return self._granularity

    def set_granularity(self, granularity: float) -> None:
        """Change the tick size.  Applies to subsequent (re)starts; an
        already-armed expiration is left where it is.  Fault injection
        uses this to model clock-granularity skew between hosts."""
        if granularity < 0:
            raise ConfigurationError("timer granularity must be >= 0")
        self._granularity = granularity

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiration time, or None when not armed."""
        return self._event.time if self.pending else None

    def _quantize(self, delay: float) -> float:
        if self._granularity <= 0:
            return delay
        ticks = math.ceil(delay / self._granularity - 1e-12)
        return max(1, ticks) * self._granularity

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now.

        Restarting an armed timer cancels the previous expiration.
        """
        self.stop()
        self._event = self._sim.schedule(self._quantize(delay), self._fire)

    # ``restart`` reads better at call sites that always rearm.
    restart = start

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
