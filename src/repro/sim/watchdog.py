"""Engine watchdog: stall detection, event-storm guards, deadlines.

A chaos campaign must never *hang* — a permanent outage, a timer bug or
a runaway event loop has to end in a structured, inspectable abort.
The :class:`Watchdog` schedules itself on the simulator at a fixed
check interval and trips when any guard fires:

* **stall** — no flow made goodput progress (``snd_una`` advance) for
  ``stall_timeout`` simulated seconds while traffic is still owed;
* **event storm** — the engine fired more than ``max_events`` events,
  or more than ``max_event_rate`` events per simulated second since the
  previous tick (a self-rescheduling loop at one instant);
* **wall-clock deadline** — the host process spent more than
  ``max_wallclock`` real seconds inside the run.

Tripping does not raise: the watchdog calls
:meth:`~repro.sim.engine.Simulator.request_stop`, the run loop returns
before the next event, and a :class:`CrashReport` — simulation time,
the last trace records, a per-flow state snapshot and the stalled flow
ids — is left on ``watchdog.report`` for the harness to render.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Event, Simulator
from repro.sim.tracing import TraceBus, TraceRecord, TraceTail


@dataclass
class FlowSnapshot:
    """One sender's state at abort time."""

    flow_id: int
    variant: str
    snd_una: int
    snd_nxt: int
    maxseq: int
    cwnd: float
    ssthresh: float
    in_recovery: bool
    timeouts: int
    completed: bool
    stalled_for: float  # sim-seconds since last goodput progress

    def format(self) -> str:
        state = "done" if self.completed else ("recovery" if self.in_recovery else "open")
        return (
            f"flow {self.flow_id} ({self.variant}, {state}): "
            f"una={self.snd_una} nxt={self.snd_nxt} max={self.maxseq} "
            f"cwnd={self.cwnd:.2f} ssthresh={self.ssthresh:.2f} "
            f"rtos={self.timeouts} idle={self.stalled_for:.2f}s"
        )


@dataclass
class CrashReport:
    """Structured result of a watchdog abort.

    ``snapshot_digest`` / ``triage`` are attached after the fact by
    harnesses that freeze the crash point and bisect it (see
    :func:`repro.faults.triage.triage_crash`); they stay ``None`` for
    plain watchdog aborts.
    """

    reason: str                 # "stall" | "event-storm" | "event-rate" | "wallclock"
    message: str
    sim_time: float
    events_processed: int
    stalled_flows: List[int] = field(default_factory=list)
    flows: List[FlowSnapshot] = field(default_factory=list)
    last_events: List[TraceRecord] = field(default_factory=list)
    snapshot_digest: Optional[str] = None
    triage: Optional[object] = None   # repro.faults.triage.TriageResult

    def format(self) -> str:
        lines = [
            f"watchdog abort [{self.reason}] at t={self.sim_time:.3f}s "
            f"after {self.events_processed} events",
            f"  {self.message}",
        ]
        if self.stalled_flows:
            lines.append(f"  stalled flows: {self.stalled_flows}")
        for snapshot in self.flows:
            lines.append(f"  {snapshot.format()}")
        if self.last_events:
            lines.append(f"  last {len(self.last_events)} trace records:")
            for rec in self.last_events[-10:]:
                lines.append(
                    f"    t={rec.time:.6f} {rec.category:<20} {rec.source:<16} {rec.fields}"
                )
        if self.snapshot_digest is not None:
            lines.append(f"  crash snapshot: {self.snapshot_digest}")
        if self.triage is not None:
            lines.append("  " + self.triage.format().replace("\n", "\n  "))
        return "\n".join(lines)


class Watchdog:
    """Keeps one simulation run honest.

    Parameters
    ----------
    sim:
        The engine to guard.
    senders:
        Mapping flow id -> TCP sender; progress is ``snd_una`` advance
        (or completion).  May be empty, in which case only the event
        and wall-clock guards apply.
    stall_timeout:
        Simulated seconds without progress on any unfinished flow
        before the run is declared stalled.  Must comfortably exceed
        the maximum RTO back-off, or healthy timeout recovery reads as
        a stall.
    check_interval:
        Simulated seconds between watchdog ticks.
    max_events:
        Hard ceiling on total engine events for this run.
    max_event_rate:
        Ceiling on events per simulated second, measured between
        consecutive ticks (catches same-instant event storms).
    max_wallclock:
        Real seconds the run may take.
    trace / tail:
        Either a bus to capture a fresh tail from, or an existing
        :class:`TraceTail` (e.g. the invariant suite's) to share.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: Optional[Dict[int, object]] = None,
        stall_timeout: float = 60.0,
        check_interval: float = 1.0,
        max_events: Optional[int] = None,
        max_event_rate: Optional[float] = None,
        max_wallclock: Optional[float] = None,
        trace: Optional[TraceBus] = None,
        tail: Optional[TraceTail] = None,
    ):
        if stall_timeout <= 0:
            raise ConfigurationError("stall_timeout must be > 0")
        if check_interval <= 0:
            raise ConfigurationError("check_interval must be > 0")
        self._sim = sim
        self._senders = dict(senders or {})
        self.stall_timeout = stall_timeout
        self.check_interval = check_interval
        self.max_events = max_events
        self.max_event_rate = max_event_rate
        self.max_wallclock = max_wallclock
        self.tail = tail
        if self.tail is None and trace is not None:
            self.tail = TraceTail(50)
            self.tail.install(trace)
        self.report: Optional[CrashReport] = None
        self.checks_performed = 0
        self._event: Optional[Event] = None
        self._armed = False
        self._wall_start = 0.0
        self._last_events_processed = 0
        self._last_tick_time = 0.0
        # flow id -> (last snd_una seen, sim time it advanced)
        self._progress: Dict[int, tuple] = {}

    #: :meth:`scaled` budget shape.  The paper's 8-node harnesses fire
    #: a few hundred thousand events; a healthy many-flow scene fires
    #: roughly 10-20 engine events per delivered packet, so the ceiling
    #: grants a generous per-flow-second allowance and a floor that
    #: keeps small scenes on the classic budget.
    SCALED_EVENTS_PER_FLOW_SECOND = 4000.0
    SCALED_MIN_EVENTS = 2_000_000
    SCALED_RATE_PER_FLOW = 20_000.0
    SCALED_MIN_RATE = 200_000.0

    @classmethod
    def scaled(
        cls,
        sim: Simulator,
        senders: Optional[Dict[int, object]],
        flows: int,
        duration: float,
        check_interval: Optional[float] = None,
        max_wallclock: Optional[float] = None,
        trace: Optional[TraceBus] = None,
        tail: Optional[TraceTail] = None,
    ) -> "Watchdog":
        """A watchdog whose budgets derive from scene size.

        The classic defaults are tuned for the paper's 8-node dumbbell
        and false-positive on thousand-flow scenes: a fair thousand-way
        share legitimately starves individual flows for minutes, and a
        big scene fires tens of millions of healthy events.  Budgets
        here scale with ``flows * duration`` (floored at the classic
        values, so small scenes keep the old guarantees); existing
        harnesses calling the constructor directly are unaffected.
        """
        flows = max(1, int(flows))
        duration = max(1.0, float(duration))
        return cls(
            sim,
            senders,
            # A flow's fair share shrinks ~1/N; only call it stalled
            # after a full scene duration without a single ACK advance.
            stall_timeout=max(60.0, duration),
            check_interval=check_interval or max(1.0, duration / 20.0),
            max_events=max(
                cls.SCALED_MIN_EVENTS,
                int(cls.SCALED_EVENTS_PER_FLOW_SECOND * flows * duration),
            ),
            max_event_rate=max(
                cls.SCALED_MIN_RATE, cls.SCALED_RATE_PER_FLOW * flows
            ),
            max_wallclock=max_wallclock,
            trace=trace,
            tail=tail,
        )

    @property
    def triggered(self) -> bool:
        return self.report is not None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> "Watchdog":
        """Start guarding: baseline the progress markers and schedule
        the first tick."""
        if self._armed:
            return self
        self._armed = True
        self._wall_start = _time.monotonic()
        self._last_events_processed = self._sim.events_processed
        self._last_tick_time = self._sim.now
        now = self._sim.now
        for flow_id, sender in self._senders.items():
            self._progress[flow_id] = (sender.snd_una, now)
        self._event = self._sim.schedule(self.check_interval, self._tick)
        return self

    def disarm(self) -> None:
        """Stop guarding; pending tick is cancelled."""
        self._armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._event = None
        if not self._armed:
            return
        self.checks_performed += 1
        now = self._sim.now

        # Event-count / event-rate guards.
        processed = self._sim.events_processed
        if self.max_events is not None and processed > self.max_events:
            self._trip(
                "event-storm",
                f"{processed} events fired, ceiling is {self.max_events}",
            )
            return
        if self.max_event_rate is not None:
            elapsed = max(now - self._last_tick_time, 1e-12)
            rate = (processed - self._last_events_processed) / elapsed
            if rate > self.max_event_rate:
                self._trip(
                    "event-rate",
                    f"{rate:.0f} events/sim-second since the last tick, "
                    f"ceiling is {self.max_event_rate:.0f}",
                )
                return
        self._last_events_processed = processed
        self._last_tick_time = now

        # Wall-clock deadline.
        if self.max_wallclock is not None:
            wall = _time.monotonic() - self._wall_start
            if wall > self.max_wallclock:
                self._trip(
                    "wallclock",
                    f"run exceeded the {self.max_wallclock:.1f}s wall-clock budget",
                )
                return

        # Stall detection: any unfinished flow with no snd_una advance
        # for stall_timeout sim-seconds.
        stalled: List[int] = []
        for flow_id, sender in self._senders.items():
            if sender.completed or not sender.started:
                self._progress[flow_id] = (sender.snd_una, now)
                continue
            last_una, last_time = self._progress.get(flow_id, (sender.snd_una, now))
            if sender.snd_una > last_una:
                self._progress[flow_id] = (sender.snd_una, now)
            elif now - last_time > self.stall_timeout:
                stalled.append(flow_id)
        if stalled:
            self._trip(
                "stall",
                f"no goodput progress for > {self.stall_timeout:.1f} sim-seconds "
                f"on flow(s) {stalled}",
                stalled_flows=stalled,
            )
            return

        self._event = self._sim.schedule(self.check_interval, self._tick)

    # ------------------------------------------------------------------
    # abort
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # checkpoint / restore (pickle protocol)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Everything except the wall-clock baseline, which is only
        meaningful inside the process that called :func:`time.monotonic`."""
        state = {k: v for k, v in self.__dict__.items() if k != "_wall_start"}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Re-baseline: a restored run gets a fresh wall-clock budget.
        self._wall_start = _time.monotonic()

    def _stalled_for(self, flow_id: int) -> float:
        last = self._progress.get(flow_id)
        return self._sim.now - last[1] if last else 0.0

    def snapshot(self) -> List[FlowSnapshot]:
        """Per-flow sender state, for the crash report."""
        snapshots = []
        for flow_id, sender in sorted(self._senders.items()):
            snapshots.append(
                FlowSnapshot(
                    flow_id=flow_id,
                    variant=getattr(sender, "variant", "?"),
                    snd_una=sender.snd_una,
                    snd_nxt=sender.snd_nxt,
                    maxseq=sender.maxseq,
                    cwnd=sender.cwnd,
                    ssthresh=sender.ssthresh,
                    in_recovery=sender.in_recovery,
                    timeouts=sender.timeouts,
                    completed=sender.completed,
                    stalled_for=self._stalled_for(flow_id),
                )
            )
        return snapshots

    def _trip(self, reason: str, message: str, stalled_flows: Optional[List[int]] = None) -> None:
        self.report = CrashReport(
            reason=reason,
            message=message,
            sim_time=self._sim.now,
            events_processed=self._sim.events_processed,
            stalled_flows=list(stalled_flows or []),
            flows=self.snapshot(),
            last_events=self.tail.records() if self.tail is not None else [],
        )
        self.disarm()
        self._sim.request_stop(f"watchdog: {reason}")
