"""Seeded random-number streams.

Every stochastic component (RED gateway, random-loss module, jittered
start times) takes its own :class:`RngStream`, derived from a root seed
plus a component name.  This keeps runs reproducible *and* keeps
components statistically independent: adding a new consumer of
randomness does not perturb the draws other components see.

Streams are *checkpointable*: :meth:`RngStream.getstate` captures the
exact draw position and :meth:`RngStream.setstate` rewinds to it, so a
failing draw sequence can be replayed without re-running the warm-up
that produced it.  :mod:`repro.snapshot` relies on this round-trip for
bit-identical continuation after a restore.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Iterable, List, Tuple

#: Tag identifying the layout of :meth:`RngStream.getstate` tuples, so a
#: state captured by a future incompatible version fails loudly instead
#: of silently desynchronizing the stream.
_STATE_TAG = "RngStream.v1"


class RngStream:
    """An independently seeded wrapper over :class:`random.Random`."""

    def __init__(self, root_seed: int, name: str = ""):
        self._root_seed = root_seed
        self._name = name
        # Mix the name into the seed so streams with the same root seed
        # but different names are decorrelated.
        mixed = (root_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        self._rng = random.Random(mixed)

    @property
    def name(self) -> str:
        return self._name

    def substream(self, name: str) -> "RngStream":
        """Derive a child stream, e.g. per flow or per queue."""
        return RngStream(self._root_seed, f"{self._name}/{name}")

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def getstate(self) -> Tuple[str, int, str, Any]:
        """Capture the stream's exact position as a picklable tuple.

        The tuple records the identity (root seed + name) alongside the
        underlying generator state, so :meth:`setstate` can verify the
        state is being restored onto the stream it came from.
        """
        return (_STATE_TAG, self._root_seed, self._name, self._rng.getstate())

    def setstate(self, state: Tuple[str, int, str, Any]) -> None:
        """Rewind the stream to a state captured by :meth:`getstate`.

        Raises ``ValueError`` when the state tuple has an unknown layout
        or belongs to a differently-identified stream — restoring a
        mismatched state would silently decorrelate every later draw.
        """
        try:
            tag, root_seed, name, rng_state = state
        except (TypeError, ValueError):
            raise ValueError(f"not an RngStream state: {state!r}") from None
        if tag != _STATE_TAG:
            raise ValueError(f"unknown RngStream state tag {tag!r}")
        if (root_seed, name) != (self._root_seed, self._name):
            raise ValueError(
                f"state belongs to stream (seed={root_seed}, name={name!r}), "
                f"not (seed={self._root_seed}, name={self._name!r})"
            )
        self._rng.setstate(rng_state)

    def uniform(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def sample(self, population: Iterable, k: int):
        return self._rng.sample(list(population), k)

    def bernoulli(self, p: float) -> bool:
        """One biased coin flip (True with probability ``p``)."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p
