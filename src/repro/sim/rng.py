"""Seeded random-number streams.

Every stochastic component (RED gateway, random-loss module, jittered
start times) takes its own :class:`RngStream`, derived from a root seed
plus a component name.  This keeps runs reproducible *and* keeps
components statistically independent: adding a new consumer of
randomness does not perturb the draws other components see.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, List


class RngStream:
    """An independently seeded wrapper over :class:`random.Random`."""

    def __init__(self, root_seed: int, name: str = ""):
        self._root_seed = root_seed
        self._name = name
        # Mix the name into the seed so streams with the same root seed
        # but different names are decorrelated.
        mixed = (root_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        self._rng = random.Random(mixed)

    @property
    def name(self) -> str:
        return self._name

    def substream(self, name: str) -> "RngStream":
        """Derive a child stream, e.g. per flow or per queue."""
        return RngStream(self._root_seed, f"{self._name}/{name}")

    def uniform(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def sample(self, population: Iterable, k: int):
        return self._rng.sample(list(population), k)

    def bernoulli(self, p: float) -> bool:
        """One biased coin flip (True with probability ``p``)."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p
