"""Online invariant checking over the trace bus.

The simulator's components publish typed trace records as they run
(:mod:`repro.sim.tracing`); the checkers here subscribe to those
records and raise :class:`~repro.errors.InvariantViolation` — with the
recent trace tail attached — the moment a run contradicts itself,
instead of letting a corrupted state machine limp on to a misleading
result.  This is the runtime-verification half of the chaos harness
(see docs/FAULTS.md): fault campaigns make the simulator *survive*
adversarial conditions, invariant checkers prove it stayed *correct*
while doing so.

Checked invariants (DESIGN.md §7's property list, enforced online):

* cumulative ACKs never regress per flow (:class:`AckMonotonicity`);
* ``snd_una <= snd_nxt <= maxseq`` at every send/ACK
  (:class:`SendWindowSanity`);
* RR's ``actnum`` and ``ndup`` stay non-negative (:class:`RrStateSanity`);
* the recovery exit threshold ``recover`` only advances within an
  episode (:class:`RecoverMonotonic`);
* a RED gateway's averaged queue length stays within ``[0, buffer]``
  (:class:`RedAverageBounds`);
* instantaneous queue occupancy stays within ``[0, limit]``
  (:class:`QueueOccupancyBounds`).

Usage::

    suite = InvariantSuite.standard()
    suite.watch_queue(bell.bottleneck_queue)
    suite.install(bell.net.trace)
    sim.run(until=...)        # raises InvariantViolation on first breach
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation
from repro.sim.tracing import TraceBus, TraceRecord, TraceTail


class InvariantChecker:
    """One online invariant.

    Subclasses set ``categories`` (trace categories that can affect the
    invariant; empty = probe on every record) and implement
    :meth:`check`, calling :meth:`fail` on a breach.
    """

    #: trace categories this checker reacts to; () = every record.
    categories: Tuple[str, ...] = ()
    name = "invariant"

    def __init__(self) -> None:
        self._suite: Optional["InvariantSuite"] = None
        self.records_checked = 0

    def check(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def fail(self, record: TraceRecord, message: str) -> None:
        tail = self._suite.tail.records() if self._suite is not None else []
        raise InvariantViolation(
            f"[{self.name}] {message} (at t={record.time:.6f}, "
            f"source={record.source})",
            invariant=self.name,
            record=record,
            tail=tail,
        )


class AckMonotonicity(InvariantChecker):
    """The cumulative ACK level of a flow never moves backwards."""

    categories = ("tcp.ack",)
    name = "ack-monotonic"

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[str, int] = {}

    def check(self, record: TraceRecord) -> None:
        ackno = record.fields.get("ackno")
        if ackno is None:
            return
        last = self._last.get(record.source)
        if last is not None and ackno < last:
            self.fail(
                record,
                f"cumulative ACK regressed from {last} to {ackno}",
            )
        self._last[record.source] = ackno


class SendWindowSanity(InvariantChecker):
    """``snd_una <= snd_nxt <= maxseq`` whenever the sender reports
    its window pointers."""

    categories = ("tcp.send", "tcp.ack", "tcp.timeout")
    name = "send-window"

    def check(self, record: TraceRecord) -> None:
        fields = record.fields
        snd_una = fields.get("snd_una")
        snd_nxt = fields.get("snd_nxt")
        if snd_una is None or snd_nxt is None:
            return
        if snd_una > snd_nxt:
            self.fail(record, f"snd_una={snd_una} > snd_nxt={snd_nxt}")
        maxseq = fields.get("maxseq")
        if maxseq is not None and snd_nxt > maxseq:
            self.fail(record, f"snd_nxt={snd_nxt} > maxseq={maxseq}")


class RrStateSanity(InvariantChecker):
    """RR's recovery bookkeeping stays in range: ``actnum >= 0`` and
    ``ndup >= 0`` (Table 2 variables)."""

    categories = ("tcp.rr",)
    name = "rr-state"

    def check(self, record: TraceRecord) -> None:
        actnum = record.fields.get("actnum")
        if actnum is not None and actnum < 0:
            self.fail(record, f"actnum={actnum} < 0")
        ndup = record.fields.get("ndup")
        if ndup is not None and ndup < 0:
            self.fail(record, f"ndup={ndup} < 0")


class RecoverMonotonic(InvariantChecker):
    """Within one recovery episode the exit threshold only advances
    (Section 2.2: further losses *extend* the exit point; nothing may
    pull it back).  Tracking resets when the episode ends — by exit or
    by timeout, which legitimately rewinds ``recover``."""

    categories = ("tcp.recovery_enter", "tcp.rr", "tcp.recovery_exit", "tcp.timeout")
    name = "recover-monotonic"

    def __init__(self) -> None:
        super().__init__()
        self._recover: Dict[str, int] = {}

    def check(self, record: TraceRecord) -> None:
        source = record.source
        if record.category in ("tcp.recovery_exit", "tcp.timeout"):
            self._recover.pop(source, None)
            return
        recover = record.fields.get("recover")
        if recover is None:
            return
        if record.category == "tcp.recovery_enter":
            self._recover[source] = recover
            return
        last = self._recover.get(source)
        if last is None:
            return  # not inside a tracked episode
        if recover < last:
            self.fail(
                record,
                f"recovery exit threshold regressed from {last} to {recover}",
            )
        self._recover[source] = recover


class QueueOccupancyBounds(InvariantChecker):
    """A queue's instantaneous occupancy stays within ``[0, limit]``.

    A probe: it inspects the queue object directly on every record, so
    it needs no queue-side trace emission.
    """

    name = "queue-occupancy"

    def __init__(self, queue) -> None:
        super().__init__()
        self.queue = queue

    def check(self, record: TraceRecord) -> None:
        occupancy = len(self.queue)
        if not 0 <= occupancy <= self.queue.limit:
            self.fail(
                record,
                f"queue {self.queue.name!r} occupancy {occupancy} outside "
                f"[0, {self.queue.limit}]",
            )


class RedAverageBounds(InvariantChecker):
    """A RED gateway's EWMA queue average stays within ``[0, buffer]``
    (the average is a convex combination of occupancies, so escaping
    the physical buffer range means the EWMA arithmetic went wrong)."""

    name = "red-average"

    def __init__(self, queue) -> None:
        super().__init__()
        self.queue = queue

    def check(self, record: TraceRecord) -> None:
        avg = self.queue.avg
        if not 0.0 <= avg <= self.queue.limit:
            self.fail(
                record,
                f"RED queue {self.queue.name!r} average {avg:.4f} outside "
                f"[0, {self.queue.limit}]",
            )


class InvariantSuite:
    """A set of checkers sharing one trace tail.

    The suite subscribes a single wildcard listener: each record is
    appended to the tail *first* (so the offending record is part of
    the attached evidence), then dispatched to the category-matched
    checkers and to every probe.
    """

    def __init__(self, tail_size: int = 50):
        self.tail = TraceTail(tail_size)
        self.checkers: List[InvariantChecker] = []
        self._by_category: Dict[str, List[InvariantChecker]] = {}
        self._probes: List[InvariantChecker] = []
        self.records_seen = 0
        self._bus: Optional[TraceBus] = None

    @classmethod
    def standard(cls, tail_size: int = 50) -> "InvariantSuite":
        """The default TCP/RR checker set (no queue probes; add those
        with :meth:`watch_queue` once the topology exists)."""
        suite = cls(tail_size=tail_size)
        suite.add(AckMonotonicity())
        suite.add(SendWindowSanity())
        suite.add(RrStateSanity())
        suite.add(RecoverMonotonic())
        return suite

    def add(self, checker: InvariantChecker) -> "InvariantSuite":
        checker._suite = self
        self.checkers.append(checker)
        if checker.categories:
            for category in checker.categories:
                self._by_category.setdefault(category, []).append(checker)
        else:
            self._probes.append(checker)
        return self

    def watch_queue(self, queue) -> "InvariantSuite":
        """Register occupancy bounds for ``queue`` — and, when it looks
        like a RED queue (has an ``avg``), the RED average bounds too."""
        self.add(QueueOccupancyBounds(queue))
        if hasattr(queue, "avg"):
            self.add(RedAverageBounds(queue))
        return self

    def install(self, bus: TraceBus) -> "InvariantSuite":
        """Start checking everything published on ``bus``."""
        if self._bus is not None:
            raise ValueError("suite is already installed on a bus")
        self._bus = bus
        bus.subscribe(TraceBus.WILDCARD, self._on_record)
        return self

    def uninstall(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(TraceBus.WILDCARD, self._on_record)
            self._bus = None

    def _on_record(self, record: TraceRecord) -> None:
        self.tail.append(record)
        self.records_seen += 1
        for checker in self._by_category.get(record.category, ()):
            checker.records_checked += 1
            checker.check(record)
        for checker in self._probes:
            checker.records_checked += 1
            checker.check(record)


def standard_suite(
    queues: Sequence = (), tail_size: int = 50
) -> InvariantSuite:
    """Convenience: the standard suite with ``queues`` under watch."""
    suite = InvariantSuite.standard(tail_size=tail_size)
    for queue in queues:
        suite.watch_queue(queue)
    return suite
