/* Compiled dispatch core for repro.sim.engine.Simulator.
 *
 * Design: events stay ordinary Python ``Event`` objects (created and
 * recycled by the Python ``Simulator.schedule``); this module owns only
 * the heap array, the counters and the dispatch loop.  That keeps every
 * serialization surface (pickles, snapshot digests, golden state) in
 * Python and bit-identical across backends — a host without a C
 * compiler simply falls back to the pure-python loop.
 *
 * The heap stores {time, serial, event} structs and orders on
 * (time, serial) exactly like the pure backend's (time, serial, event)
 * tuples; serials are unique so the event itself is never compared.
 *
 * Fired/cancelled events whose only remaining reference is the core's
 * own are recycled onto the shared free list (set_free_list) after
 * their fn/args are cleared, mirroring the pure backend's
 * sys.getrefcount gate.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h> /* PyMemberDef layout for slot offsets */

typedef struct {
    double time;
    long long serial;
    PyObject *event; /* strong */
} entry_t;

typedef struct {
    PyObject_HEAD
    double now;
    long long serial_next;
    long long events_processed;
    Py_ssize_t pending;
    Py_ssize_t cancelled;
    int stop_requested;
    entry_t *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    PyObject *free_list;     /* strong, list or NULL */
    PyObject *current_event; /* strong, event whose callback raised */
} CoreObject;

/* Matches HEAP_COMPACT_MIN in engine.py. */
#define HEAP_COMPACT_MIN 64

static PyObject *s_cancelled; /* "_cancelled" */
static PyObject *s_fired;     /* "_fired" */
static PyObject *s_fn;        /* "fn" */
static PyObject *s_args;      /* "args" */

/* The Python Event class and the byte offsets of its __slots__,
 * captured by register_event_type().  Slot storage is a plain
 * PyObject* at a fixed offset, so once registered the hot loop reads
 * and writes event fields with direct memory access instead of
 * attribute lookups. */
static PyTypeObject *event_type;
static Py_ssize_t off_time, off_serial, off_fn, off_args;
static Py_ssize_t off_cancelled, off_fired, off_sim;

#define EV_SLOT(ev, off) (*(PyObject **)((char *)(ev) + (off)))

/* Replace slot contents with an already-owned reference. */
static inline void
ev_set(PyObject *ev, Py_ssize_t off, PyObject *owned)
{
    PyObject *old = EV_SLOT(ev, off);
    EV_SLOT(ev, off) = owned;
    Py_XDECREF(old);
}

static inline int
ev_is_cancelled(PyObject *ev)
{
    PyObject *v = EV_SLOT(ev, off_cancelled);
    if (v == Py_False || v == NULL)
        return 0;
    if (v == Py_True)
        return 1;
    return PyObject_IsTrue(v);
}

/* ------------------------------------------------------------------ */
/* heap primitives                                                     */
/* ------------------------------------------------------------------ */

static inline int
entry_lt(const entry_t *a, const entry_t *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    return a->serial < b->serial;
}

static int
heap_reserve(CoreObject *self, Py_ssize_t need)
{
    Py_ssize_t cap;
    entry_t *grown;
    if (need <= self->heap_cap)
        return 0;
    cap = self->heap_cap ? self->heap_cap : 64;
    while (cap < need)
        cap *= 2;
    grown = (entry_t *)PyMem_Realloc(self->heap, (size_t)cap * sizeof(entry_t));
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = grown;
    self->heap_cap = cap;
    return 0;
}

/* Push an entry (steals the event reference on success only). */
static int
heap_push(CoreObject *self, double time, long long serial, PyObject *event)
{
    entry_t *heap;
    Py_ssize_t pos, parent;
    entry_t item;
    if (heap_reserve(self, self->heap_len + 1) < 0)
        return -1;
    heap = self->heap;
    item.time = time;
    item.serial = serial;
    item.event = event;
    pos = self->heap_len++;
    while (pos > 0) {
        parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
    return 0;
}

/* Pop the minimum entry into *out; caller owns out->event. */
static void
heap_pop(CoreObject *self, entry_t *out)
{
    entry_t *heap = self->heap;
    entry_t last;
    Py_ssize_t pos, child, n;
    *out = heap[0];
    n = --self->heap_len;
    if (n == 0)
        return;
    last = heap[n];
    pos = 0;
    for (;;) {
        child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &last))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = last;
}

static void
heapify(entry_t *heap, Py_ssize_t n)
{
    Py_ssize_t start;
    for (start = n / 2 - 1; start >= 0; start--) {
        entry_t item = heap[start];
        Py_ssize_t pos = start, child;
        for (;;) {
            child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
                child += 1;
            if (!entry_lt(&heap[child], &item))
                break;
            heap[pos] = heap[child];
            pos = child;
        }
        heap[pos] = item;
    }
}

/* ------------------------------------------------------------------ */
/* event helpers                                                       */
/* ------------------------------------------------------------------ */

/* Consume our reference to a dead (fired or cancelled) event,
 * recycling it onto the free list when nothing else holds it. */
static void
recycle_or_release(CoreObject *self, PyObject *event)
{
    if (self->free_list != NULL && Py_REFCNT(event) == 1) {
        Py_INCREF(Py_None);
        ev_set(event, off_fn, Py_None);
        Py_INCREF(Py_None);
        ev_set(event, off_args, Py_None);
        if (PyList_Append(self->free_list, event) < 0)
            PyErr_Clear();
    }
    Py_DECREF(event);
}

/* Drop cancelled entries from the heap top. */
static void
drop_cancelled_heads(CoreObject *self)
{
    while (self->heap_len > 0 && ev_is_cancelled(self->heap[0].event)) {
        entry_t top;
        heap_pop(self, &top);
        self->cancelled--;
        recycle_or_release(self, top.event);
    }
}

/* Fire one already-popped event (we own entry->event).  Returns 0, or
 * -1 with the exception set and the event parked in current_event. */
static int
fire_event(CoreObject *self, entry_t *entry)
{
    PyObject *event = entry->event;
    PyObject *fn, *args, *result;
    self->now = entry->time;
    Py_INCREF(Py_True);
    ev_set(event, off_fired, Py_True);
    self->pending--;
    self->events_processed++;
    fn = EV_SLOT(event, off_fn);
    args = EV_SLOT(event, off_args);
    Py_INCREF(fn);
    Py_INCREF(args);
    result = PyObject_Call(fn, args, NULL);
    Py_DECREF(fn);
    Py_DECREF(args);
    if (result == NULL) {
        /* Keep the event for Simulator's error report; the exception
         * is already set. */
        Py_XSETREF(self->current_event, event);
        return -1;
    }
    Py_DECREF(result);
    recycle_or_release(self, event);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Core methods                                                        */
/* ------------------------------------------------------------------ */

static PyObject *
Core_push(CoreObject *self, PyObject *const *argv, Py_ssize_t argc)
{
    double time;
    long long serial;
    PyObject *event;
    if (argc != 3) {
        PyErr_SetString(PyExc_TypeError, "push(time, serial, event)");
        return NULL;
    }
    time = PyFloat_AsDouble(argv[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    serial = PyLong_AsLongLong(argv[1]);
    if (serial == -1 && PyErr_Occurred())
        return NULL;
    event = argv[2];
    Py_INCREF(event);
    if (heap_push(self, time, serial, event) < 0) {
        Py_DECREF(event);
        return NULL;
    }
    self->pending++;
    Py_RETURN_NONE;
}

/* The scheduling fast path: mint the serial, reuse or allocate an
 * Event, fill its slots directly and push it.  Returns the event. */
static PyObject *
schedule_common(CoreObject *self, double time, PyObject *fn, PyObject *args,
                PyObject *sim)
{
    long long serial;
    PyObject *event;
    PyObject *time_obj, *serial_obj;
    Py_ssize_t nfree;
    serial = self->serial_next++;
    /* Boxed field values before touching the free list / allocator. */
    time_obj = PyFloat_FromDouble(time);
    if (time_obj == NULL)
        return NULL;
    serial_obj = PyLong_FromLongLong(serial);
    if (serial_obj == NULL) {
        Py_DECREF(time_obj);
        return NULL;
    }
    nfree = self->free_list ? PyList_GET_SIZE(self->free_list) : 0;
    if (nfree > 0) {
        event = PyList_GET_ITEM(self->free_list, nfree - 1);
        Py_INCREF(event);
        if (PyList_SetSlice(self->free_list, nfree - 1, nfree, NULL) < 0) {
            Py_DECREF(event);
            Py_DECREF(time_obj);
            Py_DECREF(serial_obj);
            return NULL;
        }
    } else {
        event = event_type->tp_alloc(event_type, 0);
        if (event == NULL) {
            Py_DECREF(time_obj);
            Py_DECREF(serial_obj);
            return NULL;
        }
    }
    /* ev_set consumes a reference; slots may hold stale values from a
     * recycled event (or NULL from a fresh allocation). */
    ev_set(event, off_time, time_obj);
    ev_set(event, off_serial, serial_obj);
    Py_INCREF(fn);
    ev_set(event, off_fn, fn);
    Py_INCREF(args);
    ev_set(event, off_args, args);
    Py_INCREF(Py_False);
    ev_set(event, off_cancelled, Py_False);
    Py_INCREF(Py_False);
    ev_set(event, off_fired, Py_False);
    Py_INCREF(sim);
    ev_set(event, off_sim, sim);
    Py_INCREF(event); /* heap's reference */
    if (heap_push(self, time, serial, event) < 0) {
        Py_DECREF(event); /* heap's */
        Py_DECREF(event); /* caller's */
        return NULL;
    }
    self->pending++;
    return event;
}

/* schedule(delay, fn, args, sim) — delay pre-validated by the caller. */
static PyObject *
Core_schedule(CoreObject *self, PyObject *const *argv, Py_ssize_t argc)
{
    double delay;
    if (argc != 4) {
        PyErr_SetString(PyExc_TypeError, "schedule(delay, fn, args, sim)");
        return NULL;
    }
    delay = PyFloat_AsDouble(argv[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    return schedule_common(self, self->now + delay, argv[1], argv[2], argv[3]);
}

/* schedule_abs(time, fn, args, sim) — exact absolute timestamp, no
 * now+delay round trip; time pre-validated by the caller. */
static PyObject *
Core_schedule_abs(CoreObject *self, PyObject *const *argv, Py_ssize_t argc)
{
    double time;
    if (argc != 4) {
        PyErr_SetString(PyExc_TypeError, "schedule_abs(time, fn, args, sim)");
        return NULL;
    }
    time = PyFloat_AsDouble(argv[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    return schedule_common(self, time, argv[1], argv[2], argv[3]);
}

static PyObject *
Core_next_serial(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(self->serial_next++);
}

static PyObject *
Core_set_serial(CoreObject *self, PyObject *arg)
{
    long long serial = PyLong_AsLongLong(arg);
    if (serial == -1 && PyErr_Occurred())
        return NULL;
    self->serial_next = serial;
    Py_RETURN_NONE;
}

static PyObject *
Core_set_events_processed(CoreObject *self, PyObject *arg)
{
    long long n = PyLong_AsLongLong(arg);
    if (n == -1 && PyErr_Occurred())
        return NULL;
    self->events_processed = n;
    Py_RETURN_NONE;
}

static PyObject *
Core_set_now(CoreObject *self, PyObject *arg)
{
    double now = PyFloat_AsDouble(arg);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    self->now = now;
    Py_RETURN_NONE;
}

static PyObject *
Core_set_free_list(CoreObject *self, PyObject *arg)
{
    if (!PyList_Check(arg)) {
        PyErr_SetString(PyExc_TypeError, "free list must be a list");
        return NULL;
    }
    Py_INCREF(arg);
    Py_XSETREF(self->free_list, arg);
    Py_RETURN_NONE;
}

static PyObject *
Core_note_cancelled(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    self->pending--;
    self->cancelled++;
    if (self->cancelled > HEAP_COMPACT_MIN &&
        self->cancelled * 2 > self->heap_len) {
        /* Compact: keep live entries in array order, re-heapify. */
        entry_t *heap = self->heap;
        Py_ssize_t n = self->heap_len, live = 0, i;
        for (i = 0; i < n; i++) {
            if (ev_is_cancelled(heap[i].event)) {
                recycle_or_release(self, heap[i].event);
            } else {
                heap[live++] = heap[i];
            }
        }
        self->heap_len = live;
        heapify(heap, live);
        self->cancelled = 0;
    }
    Py_RETURN_NONE;
}

static PyObject *
Core_peek_time(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    drop_cancelled_heads(self);
    if (self->heap_len == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->heap[0].time);
}

static PyObject *
Core_step1(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    entry_t entry;
    drop_cancelled_heads(self);
    if (self->heap_len == 0)
        Py_RETURN_FALSE;
    heap_pop(self, &entry);
    if (fire_event(self, &entry) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
Core_run(CoreObject *self, PyObject *const *argv, Py_ssize_t argc)
{
    int has_until = 0, has_max = 0, interrupted = 0;
    double until = 0.0;
    long long max_events = 0, fired = 0;
    if (argc != 2) {
        PyErr_SetString(PyExc_TypeError, "run(until, max_events)");
        return NULL;
    }
    if (argv[0] != Py_None) {
        until = PyFloat_AsDouble(argv[0]);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        has_until = 1;
    }
    if (argv[1] != Py_None) {
        max_events = PyLong_AsLongLong(argv[1]);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
        has_max = 1;
    }
    for (;;) {
        entry_t entry;
        if (self->stop_requested || (has_max && fired >= max_events)) {
            interrupted = 1;
            break;
        }
        drop_cancelled_heads(self);
        if (self->heap_len == 0)
            break;
        if (has_until && self->heap[0].time > until)
            break;
        heap_pop(self, &entry);
        if (fire_event(self, &entry) < 0)
            return NULL;
        fired++;
    }
    return Py_BuildValue("(Li)", fired, interrupted);
}

static PyObject *
Core_entries(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *list = PyList_New(self->heap_len);
    Py_ssize_t i;
    if (list == NULL)
        return NULL;
    for (i = 0; i < self->heap_len; i++) {
        PyObject *item = Py_BuildValue(
            "(dLO)", self->heap[i].time, self->heap[i].serial,
            self->heap[i].event);
        if (item == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, item);
    }
    return list;
}

static PyObject *
Core_reset_heap(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t i, n = self->heap_len;
    self->heap_len = 0;
    self->pending = 0;
    self->cancelled = 0;
    for (i = 0; i < n; i++)
        Py_DECREF(self->heap[i].event);
    Py_RETURN_NONE;
}

static PyObject *
Core_request_stop(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_requested = 1;
    Py_RETURN_NONE;
}

static PyObject *
Core_clear_stop(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_requested = 0;
    Py_RETURN_NONE;
}

static PyObject *
Core_take_current_event(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *event = self->current_event;
    if (event == NULL)
        Py_RETURN_NONE;
    self->current_event = NULL;
    return event; /* transfer our reference */
}

/* ------------------------------------------------------------------ */
/* type plumbing                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
Core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    double start_time = 0.0;
    CoreObject *self;
    static char *kwlist[] = {"start_time", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d", kwlist, &start_time))
        return NULL;
    self = (CoreObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = start_time;
    self->serial_next = 0;
    self->events_processed = 0;
    self->pending = 0;
    self->cancelled = 0;
    self->stop_requested = 0;
    self->heap = NULL;
    self->heap_len = 0;
    self->heap_cap = 0;
    self->free_list = NULL;
    self->current_event = NULL;
    return (PyObject *)self;
}

static int
Core_traverse(CoreObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->heap_len; i++)
        Py_VISIT(self->heap[i].event);
    Py_VISIT(self->free_list);
    Py_VISIT(self->current_event);
    return 0;
}

static int
Core_clear_refs(CoreObject *self)
{
    Py_ssize_t i, n = self->heap_len;
    self->heap_len = 0;
    for (i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].event);
    Py_CLEAR(self->free_list);
    Py_CLEAR(self->current_event);
    return 0;
}

static void
Core_dealloc(CoreObject *self)
{
    PyObject_GC_UnTrack(self);
    Core_clear_refs(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
Core_length(CoreObject *self)
{
    return self->heap_len;
}

static PyObject *
Core_iter(CoreObject *self)
{
    PyObject *list = Core_entries(self, NULL);
    PyObject *iter;
    if (list == NULL)
        return NULL;
    iter = PyObject_GetIter(list);
    Py_DECREF(list);
    return iter;
}

static PyObject *
Core_get_now(CoreObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Core_get_pending(CoreObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->pending);
}

static PyObject *
Core_get_cancelled(CoreObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->cancelled);
}

static PyObject *
Core_get_events_processed(CoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
Core_get_serial_next(CoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->serial_next);
}

static PyObject *
Core_get_stop_requested(CoreObject *self, void *closure)
{
    return PyBool_FromLong(self->stop_requested);
}

static PyGetSetDef Core_getset[] = {
    {"now", (getter)Core_get_now, NULL, "current simulation time", NULL},
    {"pending", (getter)Core_get_pending, NULL, "live pending events", NULL},
    {"cancelled", (getter)Core_get_cancelled, NULL,
     "lazily-deleted entries still in the heap", NULL},
    {"events_processed", (getter)Core_get_events_processed, NULL,
     "events fired so far", NULL},
    {"serial_next", (getter)Core_get_serial_next, NULL,
     "next schedule serial", NULL},
    {"stop_requested", (getter)Core_get_stop_requested, NULL,
     "cooperative stop flag", NULL},
    {NULL},
};

static PyMethodDef Core_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Core_push, METH_FASTCALL,
     "push(time, serial, event): add a pending event"},
    {"schedule", (PyCFunction)(void (*)(void))Core_schedule, METH_FASTCALL,
     "schedule(delay, fn, args, sim) -> Event (delay pre-validated)"},
    {"schedule_abs", (PyCFunction)(void (*)(void))Core_schedule_abs,
     METH_FASTCALL,
     "schedule_abs(time, fn, args, sim) -> Event (time pre-validated)"},
    {"next_serial", (PyCFunction)Core_next_serial, METH_NOARGS,
     "return the next schedule serial and advance the counter"},
    {"set_serial", (PyCFunction)Core_set_serial, METH_O,
     "set the next schedule serial (restore hook)"},
    {"set_events_processed", (PyCFunction)Core_set_events_processed, METH_O,
     "set the fired-event counter (restore hook)"},
    {"set_now", (PyCFunction)Core_set_now, METH_O,
     "advance the clock (end-of-run adjustment)"},
    {"set_free_list", (PyCFunction)Core_set_free_list, METH_O,
     "share the simulator's Event free list"},
    {"note_cancelled", (PyCFunction)Core_note_cancelled, METH_NOARGS,
     "account for a lazily-cancelled entry; compacts when warranted"},
    {"peek_time", (PyCFunction)Core_peek_time, METH_NOARGS,
     "time of the next pending event, or None"},
    {"step1", (PyCFunction)Core_step1, METH_NOARGS,
     "fire the single next pending event; returns whether one fired"},
    {"run", (PyCFunction)(void (*)(void))Core_run, METH_FASTCALL,
     "run(until, max_events) -> (fired, interrupted)"},
    {"entries", (PyCFunction)Core_entries, METH_NOARGS,
     "heap contents as (time, serial, event) tuples, array order"},
    {"reset_heap", (PyCFunction)Core_reset_heap, METH_NOARGS,
     "drop every entry and zero the pending/cancelled counters"},
    {"request_stop", (PyCFunction)Core_request_stop, METH_NOARGS,
     "set the cooperative stop flag"},
    {"clear_stop", (PyCFunction)Core_clear_stop, METH_NOARGS,
     "clear the cooperative stop flag"},
    {"take_current_event", (PyCFunction)Core_take_current_event, METH_NOARGS,
     "pop the event whose callback raised (error reporting)"},
    {NULL},
};

static PySequenceMethods Core_as_sequence = {
    .sq_length = (lenfunc)Core_length,
};

static PyTypeObject CoreType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._engine_core.Core",
    .tp_basicsize = sizeof(CoreObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C event-heap + dispatch loop behind Simulator",
    .tp_new = Core_new,
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_traverse = (traverseproc)Core_traverse,
    .tp_clear = (inquiry)Core_clear_refs,
    .tp_methods = Core_methods,
    .tp_getset = Core_getset,
    .tp_as_sequence = &Core_as_sequence,
    .tp_iter = (getiterfunc)Core_iter,
};

/* Capture the Python Event class and its slot offsets.  Must be
 * called (by repro.sim.engine, at import) before any Core is used;
 * raises if the class layout is not the expected __slots__ set. */
static PyObject *
module_register_event_type(PyObject *Py_UNUSED(module), PyObject *arg)
{
    static const char *names[] = {"time",       "serial", "fn",   "args",
                                  "_cancelled", "_fired", "_sim"};
    Py_ssize_t *offsets[] = {&off_time,      &off_serial, &off_fn, &off_args,
                             &off_cancelled, &off_fired,  &off_sim};
    size_t i;
    if (!PyType_Check(arg)) {
        PyErr_SetString(PyExc_TypeError, "expected the Event class");
        return NULL;
    }
    for (i = 0; i < sizeof(names) / sizeof(names[0]); i++) {
        PyObject *descr = PyObject_GetAttrString(arg, names[i]);
        if (descr == NULL)
            return NULL;
        if (Py_TYPE(descr) != &PyMemberDescr_Type) {
            Py_DECREF(descr);
            PyErr_Format(PyExc_TypeError,
                         "Event.%s is not a slot descriptor", names[i]);
            return NULL;
        }
        *offsets[i] = ((PyMemberDescrObject *)descr)->d_member->offset;
        Py_DECREF(descr);
    }
    Py_INCREF(arg);
    Py_XSETREF(event_type, (PyTypeObject *)arg);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"register_event_type", module_register_event_type, METH_O,
     "capture the Event class and its slot offsets (engine import hook)"},
    {NULL},
};

static struct PyModuleDef enginecoremodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._engine_core",
    .m_doc = "compiled event-dispatch core (optional fast path)",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__engine_core(void)
{
    PyObject *module;
    s_cancelled = PyUnicode_InternFromString("_cancelled");
    s_fired = PyUnicode_InternFromString("_fired");
    s_fn = PyUnicode_InternFromString("fn");
    s_args = PyUnicode_InternFromString("args");
    if (s_cancelled == NULL || s_fired == NULL || s_fn == NULL ||
        s_args == NULL)
        return NULL;
    if (PyType_Ready(&CoreType) < 0)
        return NULL;
    module = PyModule_Create(&enginecoremodule);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CoreType);
    if (PyModule_AddObject(module, "Core", (PyObject *)&CoreType) < 0) {
        Py_DECREF(&CoreType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
