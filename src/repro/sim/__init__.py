"""Discrete-event simulation core.

This subpackage is the substrate everything else runs on: a heap-based event
scheduler (:class:`~repro.sim.engine.Simulator`), cancellable/restartable
timers (:class:`~repro.sim.timers.Timer`), seeded random-number streams
(:class:`~repro.sim.rng.RngStream`), and a lightweight trace bus
(:class:`~repro.sim.tracing.TraceBus`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStream
from repro.sim.timers import Timer
from repro.sim.tracing import TraceBus, TraceRecord

__all__ = ["Event", "Simulator", "Timer", "RngStream", "TraceBus", "TraceRecord"]
