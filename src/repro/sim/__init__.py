"""Discrete-event simulation core.

This subpackage is the substrate everything else runs on: a heap-based event
scheduler (:class:`~repro.sim.engine.Simulator`), cancellable/restartable
timers (:class:`~repro.sim.timers.Timer`), seeded random-number streams
(:class:`~repro.sim.rng.RngStream`), and a lightweight trace bus
(:class:`~repro.sim.tracing.TraceBus`) — plus the chaos harness's
defensive half: online invariant checking over the bus
(:mod:`repro.sim.invariants`) and a run watchdog
(:mod:`repro.sim.watchdog`); see docs/FAULTS.md.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.invariants import InvariantChecker, InvariantSuite, standard_suite
from repro.sim.rng import RngStream
from repro.sim.timers import Timer
from repro.sim.tracing import TraceBus, TraceRecord, TraceTail
from repro.sim.watchdog import CrashReport, FlowSnapshot, Watchdog

__all__ = [
    "CrashReport",
    "Event",
    "FlowSnapshot",
    "InvariantChecker",
    "InvariantSuite",
    "RngStream",
    "Simulator",
    "Timer",
    "TraceBus",
    "TraceRecord",
    "TraceTail",
    "Watchdog",
    "standard_suite",
]
