"""Heap-based discrete-event simulation engine.

The engine is deliberately minimal and deterministic:

* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO tie-break via a monotonically increasing serial number).
* Events are cancellable; cancellation is O(1) (lazy deletion).
* The engine never advances time backwards and refuses to schedule into
  the past, so component code can rely on causality.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.0, lambda: fired.append("a"))
>>> _ = sim.schedule(0.5, lambda: fired.append("b"))
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError, SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    needs :meth:`cancel` and the read-only properties.
    """

    __slots__ = ("time", "serial", "fn", "args", "_cancelled", "_fired")

    def __init__(self, time: float, serial: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.serial = serial
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.serial) < (other.time, other.serial)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"Event(t={self.time:.6f}, serial={self.serial}, {state})"


class Simulator:
    """A discrete-event simulator with deterministic ordering.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._serial = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return sum(1 for e in self._heap if e.pending)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        Raises :class:`SchedulingError` for negative delays.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._serial), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self._now, fn, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0]._cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue was empty.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = event.time
        event._fired = True
        self._events_processed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event lands on it, so back-to-back ``run`` calls resume
        cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    return
                self._drop_cancelled()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def clear(self) -> None:
        """Drop all pending events (they are marked cancelled)."""
        for event in self._heap:
            event.cancel()
        self._heap.clear()
