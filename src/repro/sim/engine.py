"""Heap-based discrete-event simulation engine.

The engine is deliberately minimal and deterministic:

* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO tie-break via a monotonically increasing serial number).
* Events are cancellable; cancellation is O(1) (lazy deletion), and the
  pending-event count is maintained incrementally so callers can poll it
  cheaply (watchdogs do, every tick).  Lazily-deleted entries cannot
  accumulate without bound: once cancelled entries outnumber live ones
  (past a small floor) the heap is compacted in place, so cancel-heavy
  workloads — a TCP timer restarted on every ACK — keep ``len(heap)``
  proportional to the *live* event count.
* The engine is checkpointable: ``__getstate__``/``__setstate__``
  serialize the clock, serial counter and the *pending* events only
  (cancelled entries are dropped, the heap is stored in sorted order),
  so pickling a simulator mid-scenario and unpickling it elsewhere
  continues bit-identically.  See :mod:`repro.snapshot`.
* The engine never advances time backwards and refuses to schedule into
  the past, so component code can rely on causality.  Tiny negative
  delays produced by floating-point round-off (``schedule_at(now + x)``
  after many accumulated additions) are clamped to zero instead of
  raising.
* A callback that blows up is wrapped in :class:`~repro.errors.
  CallbackError` carrying the clock and the offending event;
  repro-native exceptions (invariant violations, protocol errors)
  propagate unchanged but get a ``sim_context`` attribute attached.
* Cooperative interruption: :meth:`Simulator.request_stop` makes a
  running :meth:`Simulator.run` return before the next event — the
  mechanism the watchdog uses to abort gracefully instead of hanging.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.0, lambda: fired.append("a"))
>>> _ = sim.schedule(0.5, lambda: fired.append("b"))
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import CallbackError, ReproError, SchedulingError, SimulationError

#: Negative delays no larger than this are treated as floating-point
#: round-off from repeated ``now + delay`` arithmetic and clamped to 0.
NEGATIVE_DELAY_EPSILON = 1e-9

#: Below this heap size, compaction is never triggered: rebuilding a
#: tiny heap every few cancels would cost more than the lazy entries.
HEAP_COMPACT_MIN = 64


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    needs :meth:`cancel` and the read-only properties.
    """

    __slots__ = ("time", "serial", "fn", "args", "_cancelled", "_fired", "_sim")

    def __init__(
        self,
        time: float,
        serial: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.serial = serial
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for user-code sorting convenience; the engine's heap
        # orders (time, serial, event) key tuples instead, so this is
        # no longer on the hot path.
        return (self.time, self.serial) < (other.time, other.serial)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"Event(t={self.time:.6f}, serial={self.serial}, {state})"


class Simulator:
    """A discrete-event simulator with deterministic ordering.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        # Heap entries are (time, serial, event): comparisons during
        # sift run entirely in C on the leading floats/ints and only
        # ever reach the first two slots (serials are unique), so
        # Event.__lt__ and its tuple allocations stay off the hot loop.
        self._heap: List[Tuple[float, int, Event]] = []
        self._serial = itertools.count()
        self._running = False
        self._events_processed = 0
        self._pending = 0
        self._cancelled_in_heap = 0
        self._stop_requested = False
        self._stop_reason: Optional[str] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire.

        Maintained incrementally on schedule/cancel/fire, so reading it
        is O(1) — safe to poll from per-tick monitors.
        """
        return self._pending

    @property
    def stop_requested(self) -> bool:
        """True after :meth:`request_stop` until the next :meth:`run`."""
        return self._stop_requested

    @property
    def stop_reason(self) -> Optional[str]:
        """The reason passed to the most recent :meth:`request_stop`."""
        return self._stop_reason

    def request_stop(self, reason: str = "") -> None:
        """Ask a running :meth:`run` loop to return before firing the
        next event.  Callable from inside event callbacks (that is the
        point); a no-op outside ``run`` beyond recording the reason."""
        self._stop_requested = True
        self._stop_reason = reason or None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it
        fires.  Raises :class:`SchedulingError` for negative delays;
        delays within ``NEGATIVE_DELAY_EPSILON`` of zero are treated as
        floating-point round-off and clamped to 0.
        """
        if delay < 0:
            if delay >= -NEGATIVE_DELAY_EPSILON:
                delay = 0.0
            else:
                raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        serial = next(self._serial)
        event = Event(self._now + delay, serial, fn, args, sim=self)
        heapq.heappush(self._heap, (event.time, serial, event))
        self._pending += 1
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self._now, fn, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def _note_cancelled(self) -> None:
        """Bookkeeping for a lazily-deleted heap entry (called by
        :meth:`Event.cancel`): keep the pending count exact, and compact
        the heap once cancelled entries outnumber live ones."""
        self._pending -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > HEAP_COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Filtering preserves relative order of the survivors well enough
        for :func:`heapq.heapify` to restore the invariant; pop order is
        unchanged because (time, serial) keys are unique.
        """
        self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2]._cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap -= 1

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue was empty.
        A callback that raises a non-repro exception is wrapped in
        :class:`CallbackError` (original chained as ``__cause__``);
        repro-native errors propagate as-is with a ``sim_context``
        attribute describing the clock and event.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)[2]
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = event.time
        event._fired = True
        self._pending -= 1
        self._events_processed += 1
        try:
            event.fn(*event.args)
        except ReproError as exc:
            if getattr(exc, "sim_context", None) is None:
                exc.sim_context = {
                    "sim_time": self._now,
                    "event": repr(event),
                    "events_processed": self._events_processed,
                }
            raise
        except Exception as exc:
            raise CallbackError(
                f"event callback failed at t={self._now:.6f}: "
                f"{type(exc).__name__}: {exc} (event={event!r})",
                sim_time=self._now,
                event=event,
            ) from exc
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains, ``until`` is reached,
        ``max_events`` have fired, or a stop is requested.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event lands on it, so back-to-back ``run``
        calls resume cleanly.  The advance also happens when
        ``max_events`` (or a stop request) ended the run *after* the
        queue drained below ``until``; it is skipped only while events
        remain at or before ``until``, which would otherwise be jumped
        over.  Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        self._stop_reason = None
        fired = 0
        interrupted = False  # stopped with events possibly still due
        try:
            while True:
                if self._stop_requested or (
                    max_events is not None and fired >= max_events
                ):
                    interrupted = True
                    break
                self._drop_cancelled()
                if not self._heap:
                    break
                if until is not None and self._heap[0][0] > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._drop_cancelled()
            if not (interrupted and self._heap and self._heap[0][0] <= until):
                self._now = until
        return fired

    def clear(self) -> None:
        """Drop all pending events (they are marked cancelled)."""
        # Detach the heap first: Event.cancel may trigger a compaction
        # that would rebuild the list being iterated.
        heap, self._heap = self._heap, []
        self._cancelled_in_heap = 0
        for _, _, event in heap:
            event.cancel()
        # The cancels above counted against the (empty) new heap; the
        # entries they refer to are already gone.
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # checkpoint / restore (pickle protocol)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Canonical, restorable engine state.

        Cancelled entries are dropped and the pending heap is stored
        fully sorted, so two engines whose observable behavior is
        identical pickle identically regardless of incidental heap
        array layout (compaction history, pop order).  A sorted list is
        itself a valid min-heap, so ``__setstate__`` can use it as-is.
        """
        if self._running:
            raise SimulationError("cannot pickle a Simulator while it is running")
        pending = sorted(
            (entry for entry in self._heap if not entry[2]._cancelled),
            key=lambda entry: (entry[0], entry[1]),
        )
        return {
            "now": self._now,
            "serial_next": self._serial.__reduce__()[1][0],
            "heap": pending,
            "events_processed": self._events_processed,
            "stop_requested": self._stop_requested,
            "stop_reason": self._stop_reason,
        }

    def __setstate__(self, state) -> None:
        self._now = state["now"]
        self._heap = list(state["heap"])  # sorted => valid min-heap
        self._serial = itertools.count(state["serial_next"])
        self._running = False
        self._events_processed = state["events_processed"]
        self._pending = len(self._heap)
        self._cancelled_in_heap = 0
        self._stop_requested = state["stop_requested"]
        self._stop_reason = state["stop_reason"]
        # Unpickled events carry their own _sim reference via the heap
        # entries; nothing else to rewire.
