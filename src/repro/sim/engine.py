"""Heap-based discrete-event simulation engine.

The engine is deliberately minimal and deterministic:

* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO tie-break via a monotonically increasing serial number).
* Events are cancellable; cancellation is O(1) (lazy deletion), and the
  pending-event count is maintained incrementally so callers can poll it
  cheaply (watchdogs do, every tick).  Lazily-deleted entries cannot
  accumulate without bound: once cancelled entries outnumber live ones
  (past a small floor) the heap is compacted in place, so cancel-heavy
  workloads — a TCP timer restarted on every ACK — keep ``len(heap)``
  proportional to the *live* event count.
* The engine is checkpointable: ``__getstate__``/``__setstate__``
  serialize the clock, serial counter and the *pending* events only
  (cancelled entries are dropped, the heap is stored in sorted order),
  so pickling a simulator mid-scenario and unpickling it elsewhere
  continues bit-identically.  See :mod:`repro.snapshot`.
* The engine never advances time backwards and refuses to schedule into
  the past, so component code can rely on causality.  Tiny negative
  delays produced by floating-point round-off (``schedule_at(now + x)``
  after many accumulated additions) are clamped to zero instead of
  raising.
* A callback that blows up is wrapped in :class:`~repro.errors.
  CallbackError` carrying the clock and the offending event;
  repro-native exceptions (invariant violations, protocol errors)
  propagate unchanged but get a ``sim_context`` attribute attached.
* Cooperative interruption: :meth:`Simulator.request_stop` makes a
  running :meth:`Simulator.run` return before the next event — the
  mechanism the watchdog uses to abort gracefully instead of hanging.

Performance architecture
------------------------
Two interchangeable dispatch backends sit behind the one ``Simulator``
class:

* the **pure-python** backend (always available) keeps the heap as a
  list of ``(time, serial, event)`` tuples and runs an inlined dispatch
  loop in :meth:`Simulator.run`;
* the optional **compiled** backend (``repro.sim._engine_core``, a C
  extension built via ``pip install .[compiled]`` or ``python setup.py
  build_ext --inplace``) keeps the heap as a C array and runs the
  dispatch loop in C.  Events stay ordinary Python :class:`Event`
  objects in both backends, so pickles, golden digests and snapshots
  are bit-identical across backends and an extension-less host falls
  back cleanly.  Set ``REPRO_PURE_PYTHON=1`` to force the fallback even
  when the extension is importable; ``CORE_BACKEND`` reports the choice.

Fired and cancelled events are recycled through a per-simulator free
list when (and only when) an exact reference-count check proves nothing
outside the engine still holds them, so steady-state event churn
allocates nothing.  The free list is engine-internal derived state: it
is never pickled and :meth:`Simulator.drain_event_pool` empties it
before snapshot capture.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.0, lambda: fired.append("a"))
>>> _ = sim.schedule(0.5, lambda: fired.append("b"))
>>> sim.run()
>>> fired
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
import os
import sys
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import CallbackError, ReproError, SchedulingError, SimulationError

#: Negative delays no larger than this are treated as floating-point
#: round-off from repeated ``now + delay`` arithmetic and clamped to 0.
NEGATIVE_DELAY_EPSILON = 1e-9

#: Below this heap size, compaction is never triggered: rebuilding a
#: tiny heap every few cancels would cost more than the lazy entries.
HEAP_COMPACT_MIN = 64

# ----------------------------------------------------------------------
# compiled-core selection (import time, per process)
# ----------------------------------------------------------------------
_CoreType = None
if os.environ.get("REPRO_PURE_PYTHON", "").strip() in ("", "0"):
    try:  # pragma: no cover - exercised by the compiled-core CI leg
        from repro.sim import _engine_core as _engine_core_module

        _CoreType = _engine_core_module.Core
    except ImportError:
        _CoreType = None

#: Which dispatch backend new simulators use: ``"compiled"`` when the
#: optional C extension imported, else ``"python"``.
CORE_BACKEND = "python" if _CoreType is None else "compiled"


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    needs :meth:`cancel` and the read-only properties.
    """

    __slots__ = ("time", "serial", "fn", "args", "_cancelled", "_fired", "_sim")

    def __init__(
        self,
        time: float,
        serial: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.serial = serial
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for user-code sorting convenience; the engine's heap
        # orders (time, serial, event) key tuples instead, so this is
        # no longer on the hot path.
        return (self.time, self.serial) < (other.time, other.serial)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"Event(t={self.time:.6f}, serial={self.serial}, {state})"


if _CoreType is not None:
    # Hand the compiled core the Event class and its slot offsets so the
    # C dispatch loop reads/writes event fields with direct memory
    # access.  Any surprise in the class layout demotes us to the pure
    # backend instead of risking memory-unsafe offsets.
    try:  # pragma: no cover - exercised by the compiled-core CI leg
        _engine_core_module.register_event_type(Event)
    except Exception:
        _CoreType = None
        CORE_BACKEND = "python"


class Simulator:
    """A discrete-event simulator with deterministic ordering.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0):
        # Free list of recycled Event objects, shared with the compiled
        # core when active.  Derived state: never pickled (the custom
        # __getstate__ below simply omits it).
        self._event_free: List[Event] = []
        self._running = False
        self._stop_reason: Optional[str] = None
        if _CoreType is not None:
            core = _CoreType(float(start_time))
            core.set_free_list(self._event_free)
            self._core = core
            # The core doubles as the heap view: len() counts entries
            # (cancelled included) and iteration yields the same
            # (time, serial, event) tuples the pure heap stores, so
            # introspection code works unchanged across backends.
            self._heap = core
        else:
            self._core = None
            self._now = float(start_time)
            # Heap entries are (time, serial, event): comparisons during
            # sift run entirely in C on the leading floats/ints and only
            # ever reach the first two slots (serials are unique), so
            # Event.__lt__ and its tuple allocations stay off the hot loop.
            self._heap: List[Tuple[float, int, Event]] = []
            self._serial = itertools.count()
            self._events_processed = 0
            self._pending = 0
            self._cancelled_count = 0
            self._stop_requested = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        core = self._core
        return self._now if core is None else core.now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        core = self._core
        return self._events_processed if core is None else core.events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire.

        Maintained incrementally on schedule/cancel/fire, so reading it
        is O(1) — safe to poll from per-tick monitors.
        """
        core = self._core
        return self._pending if core is None else core.pending

    @property
    def cancelled_in_heap(self) -> int:
        """Number of lazily-deleted (cancelled) entries still in the
        heap — observability for compaction behaviour."""
        core = self._core
        return self._cancelled_count if core is None else core.cancelled

    # Backwards-compatible private alias (tests and older tooling).
    _cancelled_in_heap = cancelled_in_heap

    @property
    def stop_requested(self) -> bool:
        """True after :meth:`request_stop` until the next :meth:`run`."""
        core = self._core
        return self._stop_requested if core is None else bool(core.stop_requested)

    @property
    def stop_reason(self) -> Optional[str]:
        """The reason passed to the most recent :meth:`request_stop`."""
        return self._stop_reason

    def request_stop(self, reason: str = "") -> None:
        """Ask a running :meth:`run` loop to return before firing the
        next event.  Callable from inside event callbacks (that is the
        point); a no-op outside ``run`` beyond recording the reason."""
        self._stop_reason = reason or None
        core = self._core
        if core is None:
            self._stop_requested = True
        else:
            core.request_stop()

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it
        fires.  Raises :class:`SchedulingError` for negative delays;
        delays within ``NEGATIVE_DELAY_EPSILON`` of zero are treated as
        floating-point round-off and clamped to 0.
        """
        if delay < 0:
            if delay >= -NEGATIVE_DELAY_EPSILON:
                delay = 0.0
            else:
                raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        core = self._core
        if core is not None:
            # The entire fast path — serial, event reuse/allocation,
            # slot fill, heap push — happens inside the core.
            return core.schedule(delay, fn, args, self)
        time = self._now + delay
        serial = next(self._serial)
        free = self._event_free
        if free:
            event = free.pop()
            event.time = time
            event.serial = serial
            event.fn = fn
            event.args = args
            event._cancelled = False
            event._fired = False
            event._sim = self
        else:
            event = Event(time, serial, fn, args, sim=self)
        heapq.heappush(self._heap, (time, serial, event))
        self._pending += 1
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self.now, fn, *args)

    def schedule_abs(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule at an *exact* absolute timestamp.

        Unlike :meth:`schedule_at` (which round-trips through a delay
        and re-adds it to ``now``), the event fires at float-identical
        ``time`` — what callers amortizing several hops into one event
        need to reproduce a chained schedule's timestamps bit-exactly.
        """
        now = self.now
        if time < now:
            if time >= now - NEGATIVE_DELAY_EPSILON:
                time = now
            else:
                raise SchedulingError(
                    f"cannot schedule into the past (time={time}, now={now})"
                )
        core = self._core
        if core is not None:
            return core.schedule_abs(time, fn, args, self)
        serial = next(self._serial)
        free = self._event_free
        if free:
            event = free.pop()
            event.time = time
            event.serial = serial
            event.fn = fn
            event.args = args
            event._cancelled = False
            event._fired = False
            event._sim = self
        else:
            event = Event(time, serial, fn, args, sim=self)
        heapq.heappush(self._heap, (time, serial, event))
        self._pending += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        core = self._core
        if core is not None:
            return core.peek_time()
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def drain_event_pool(self) -> int:
        """Empty the event free list (snapshot-capture hygiene hook).
        Returns the number of pooled events discarded."""
        drained = len(self._event_free)
        self._event_free.clear()
        return drained

    def _note_cancelled(self) -> None:
        """Bookkeeping for a lazily-deleted heap entry (called by
        :meth:`Event.cancel`): keep the pending count exact, and compact
        the heap once cancelled entries outnumber live ones."""
        core = self._core
        if core is not None:
            core.note_cancelled()
            return
        self._pending -= 1
        self._cancelled_count += 1
        if (
            self._cancelled_count > HEAP_COMPACT_MIN
            and self._cancelled_count * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Filtering preserves relative order of the survivors well enough
        for :func:`heapq.heapify` to restore the invariant; pop order is
        unchanged because (time, serial) keys are unique.  Dead events
        that nothing else holds are recycled into the free list.
        """
        old = self._heap
        self._heap = live = []
        free = self._event_free
        getrefcount = sys.getrefcount
        for entry in old:
            event = entry[2]
            if event._cancelled:
                # Clean chain here: the old heap's entry tuple + our
                # local + getrefcount's temporary.
                if getrefcount(event) == 3:
                    event.fn = None
                    event.args = None
                    free.append(event)
            else:
                live.append(entry)
        heapq.heapify(live)
        self._cancelled_count = 0

    def _drop_cancelled(self) -> None:
        heap = self._heap
        free = self._event_free
        getrefcount = sys.getrefcount
        while heap and heap[0][2]._cancelled:
            event = heapq.heappop(heap)[2]
            self._cancelled_count -= 1
            # Clean chain: our local + getrefcount's temporary (the
            # popped heap tuple is already gone).
            if getrefcount(event) == 2:
                event.fn = None
                event.args = None
                free.append(event)

    def _sim_context(self, event: Event) -> dict:
        return {
            "sim_time": self.now,
            "event": repr(event),
            "events_processed": self.events_processed,
        }

    def _callback_error(self, exc: BaseException, event: Event) -> CallbackError:
        return CallbackError(
            f"event callback failed at t={self.now:.6f}: "
            f"{type(exc).__name__}: {exc} (event={event!r})",
            sim_time=self.now,
            event=event,
        )

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue was empty.
        A callback that raises a non-repro exception is wrapped in
        :class:`CallbackError` (original chained as ``__cause__``);
        repro-native errors propagate as-is with a ``sim_context``
        attribute describing the clock and event.
        """
        core = self._core
        if core is not None:
            try:
                return bool(core.step1())
            except ReproError as exc:
                if getattr(exc, "sim_context", None) is None:
                    exc.sim_context = self._sim_context(core.take_current_event())
                raise
            except Exception as exc:
                raise self._callback_error(exc, core.take_current_event()) from exc
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)[2]
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = event.time
        event._fired = True
        self._pending -= 1
        self._events_processed += 1
        try:
            event.fn(*event.args)
        except ReproError as exc:
            if getattr(exc, "sim_context", None) is None:
                exc.sim_context = self._sim_context(event)
            raise
        except Exception as exc:
            raise self._callback_error(exc, event) from exc
        # Recycle unless someone outside the engine still holds the
        # event (clean chain: our local + getrefcount's temporary).
        if sys.getrefcount(event) == 2:
            event.fn = None
            event.args = None
            self._event_free.append(event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains, ``until`` is reached,
        ``max_events`` have fired, or a stop is requested.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event lands on it, so back-to-back ``run``
        calls resume cleanly.  The advance also happens when
        ``max_events`` (or a stop request) ended the run *after* the
        queue drained below ``until``; it is skipped only while events
        remain at or before ``until``, which would otherwise be jumped
        over.  Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stop_reason = None
        core = self._core
        fired = 0
        interrupted = False  # stopped with events possibly still due
        try:
            if core is not None:
                core.clear_stop()
                try:
                    fired, interrupted = core.run(until, max_events)
                except ReproError as exc:
                    if getattr(exc, "sim_context", None) is None:
                        exc.sim_context = self._sim_context(core.take_current_event())
                    raise
                except Exception as exc:
                    raise self._callback_error(exc, core.take_current_event()) from exc
            else:
                self._stop_requested = False
                # Inlined dispatch loop: one bytecode loop per event
                # instead of a run->step call pair, with hoisted
                # builtins.  Semantics (stop/max_events/until ordering,
                # exception wrapping, end-clock advance) are identical
                # to step() — the engine test suite pins them.
                heappop = heapq.heappop
                getrefcount = sys.getrefcount
                free = self._event_free
                while True:
                    if self._stop_requested or (
                        max_events is not None and fired >= max_events
                    ):
                        interrupted = True
                        break
                    heap = self._heap  # re-read: compaction/clear rebind it
                    while heap and heap[0][2]._cancelled:
                        event = heappop(heap)[2]
                        self._cancelled_count -= 1
                        if getrefcount(event) == 2:
                            event.fn = None
                            event.args = None
                            free.append(event)
                    if not heap:
                        break
                    etime = heap[0][0]
                    if until is not None and etime > until:
                        break
                    event = heappop(heap)[2]
                    self._now = etime
                    event._fired = True
                    self._pending -= 1
                    self._events_processed += 1
                    try:
                        event.fn(*event.args)
                    except ReproError as exc:
                        if getattr(exc, "sim_context", None) is None:
                            exc.sim_context = self._sim_context(event)
                        raise
                    except Exception as exc:
                        raise self._callback_error(exc, event) from exc
                    if getrefcount(event) == 2:
                        event.fn = None
                        event.args = None
                        free.append(event)
                    fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            if core is not None:
                head = core.peek_time()
                if not (interrupted and head is not None and head <= until):
                    core.set_now(until)
            else:
                self._drop_cancelled()
                if not (interrupted and self._heap and self._heap[0][0] <= until):
                    self._now = until
        return fired

    def clear(self) -> None:
        """Drop all pending events (they are marked cancelled)."""
        core = self._core
        if core is not None:
            entries = core.entries()
            core.reset_heap()
            for _, _, event in entries:
                if not (event._cancelled or event._fired):
                    event._cancelled = True
            return
        # Detach the heap first: Event.cancel may trigger a compaction
        # that would rebuild the list being iterated.
        heap, self._heap = self._heap, []
        self._cancelled_count = 0
        for _, _, event in heap:
            event.cancel()
        # The cancels above counted against the (empty) new heap; the
        # entries they refer to are already gone.
        self._cancelled_count = 0

    # ------------------------------------------------------------------
    # checkpoint / restore (pickle protocol)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Canonical, restorable engine state.

        Cancelled entries are dropped and the pending heap is stored
        fully sorted, so two engines whose observable behavior is
        identical pickle identically regardless of incidental heap
        array layout (compaction history, pop order) — and regardless
        of dispatch backend: the compiled core reconstructs the same
        (time, serial, event) tuples the pure heap stores.  A sorted
        list is itself a valid min-heap, so ``__setstate__`` can use it
        as-is.
        """
        if self._running:
            raise SimulationError("cannot pickle a Simulator while it is running")
        core = self._core
        if core is not None:
            pending = [
                entry for entry in core.entries() if not entry[2]._cancelled
            ]
            pending.sort(key=lambda entry: (entry[0], entry[1]))
            return {
                "now": core.now,
                "serial_next": core.serial_next,
                "heap": pending,
                "events_processed": core.events_processed,
                "stop_requested": bool(core.stop_requested),
                "stop_reason": self._stop_reason,
            }
        pending = sorted(
            (entry for entry in self._heap if not entry[2]._cancelled),
            key=lambda entry: (entry[0], entry[1]),
        )
        return {
            "now": self._now,
            "serial_next": self._serial.__reduce__()[1][0],
            "heap": pending,
            "events_processed": self._events_processed,
            "stop_requested": self._stop_requested,
            "stop_reason": self._stop_reason,
        }

    def __setstate__(self, state) -> None:
        self._event_free = []
        self._running = False
        self._stop_reason = state["stop_reason"]
        if _CoreType is not None:
            core = _CoreType(state["now"])
            core.set_free_list(self._event_free)
            core.set_serial(state["serial_next"])
            core.set_events_processed(state["events_processed"])
            if state["stop_requested"]:
                core.request_stop()
            for time, serial, event in state["heap"]:
                core.push(time, serial, event)
            self._core = core
            self._heap = core
        else:
            self._core = None
            self._now = state["now"]
            self._heap = list(state["heap"])  # sorted => valid min-heap
            self._serial = itertools.count(state["serial_next"])
            self._events_processed = state["events_processed"]
            self._pending = len(self._heap)
            self._cancelled_count = 0
            self._stop_requested = state["stop_requested"]
        # Unpickled events carry their own _sim reference via the heap
        # entries; nothing else to rewire.
