"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency detected by the discrete-event engine."""


class SchedulingError(SimulationError):
    """An event was scheduled into the past or re-used after firing."""


class CallbackError(SimulationError):
    """An event callback raised a non-repro exception.

    The engine wraps such exceptions so the failure carries simulation
    context (the clock and the offending event) instead of surfacing as
    a bare traceback from deep inside the event loop.  The original
    exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, sim_time: float = 0.0, event: object = None):
        super().__init__(message)
        self.sim_time = sim_time
        self.event = event


class InvariantViolation(ReproError):
    """An online invariant checker caught the simulator lying to itself.

    Raised by :mod:`repro.sim.invariants` subscribers while the run is
    in progress, with the offending trace record and the recent trace
    tail attached for post-mortem inspection.
    """

    def __init__(
        self,
        message: str,
        invariant: str = "",
        record: object = None,
        tail: object = (),
    ):
        super().__init__(message)
        self.invariant = invariant
        self.record = record
        self.tail = list(tail)

    def format_tail(self) -> str:
        """Render the attached trace tail, one record per line."""
        lines = [f"trace tail ({len(self.tail)} records, oldest first):"]
        for rec in self.tail:
            lines.append(
                f"  t={rec.time:.6f} {rec.category:<20} {rec.source:<16} {rec.fields}"
            )
        return "\n".join(lines)


class ConfigurationError(ReproError):
    """Invalid configuration passed to a component."""


class TaskTimeoutError(ReproError):
    """A sweep task overran its wall-clock deadline and was killed.

    Raised (as the task's failure) by the
    :class:`~repro.runner.pool.SweepRunner` dispatch loop when a cell
    runs past ``task_timeout``: the worker is killed, the pool is
    respawned, and the cell is retried under the runner's
    :class:`~repro.runner.resilience.RetryPolicy` until its budget is
    exhausted — at which point it is quarantined and this error
    surfaces as the sweep failure.
    """

    def __init__(self, message: str, digest: str = "", attempts: int = 0):
        super().__init__(message)
        self.digest = digest
        self.attempts = attempts


class WorkerCrashError(ReproError):
    """A worker process died (SIGKILL, ``os._exit``, OOM-kill) while
    tasks were in flight.

    The dispatch loop cannot attribute a spontaneous pool break to one
    specific cell, so every in-flight cell is charged one attempt and
    retried on a fresh pool; the repeat offender exhausts its budget
    and is quarantined while innocent bystanders complete normally.
    """


class TopologyError(ReproError):
    """A topology/routing problem: unknown node, unreachable destination."""


class ProtocolError(ReproError):
    """A TCP state-machine invariant was violated (indicates a bug)."""


class SnapshotError(ReproError):
    """A simulation checkpoint could not be captured or restored.

    Raised by :mod:`repro.snapshot` — e.g. capturing while the engine
    is inside :meth:`~repro.sim.engine.Simulator.run`, loading a file
    with a mismatched format version, or a payload whose recomputed
    state digest disagrees with the recorded one.
    """


class SnapshotFormatError(SnapshotError):
    """A snapshot/delta file carries a format this build cannot read.

    Distinguished from plain :class:`SnapshotError` so store-level
    policy can tell *foreign* (written by a build with a different
    ``SNAPSHOT_FORMAT``/``DELTA_FORMAT`` — valid, just not for us;
    degrade to recompute and leave the file alone) from *corrupt*
    (truncated/bit-flipped — quarantine it).  See
    :meth:`repro.runner.warmstart.SnapshotStore.intact` and the
    ``fsck`` command.
    """
