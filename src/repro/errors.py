"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency detected by the discrete-event engine."""


class SchedulingError(SimulationError):
    """An event was scheduled into the past or re-used after firing."""


class ConfigurationError(ReproError):
    """Invalid configuration passed to a component."""


class TopologyError(ReproError):
    """A topology/routing problem: unknown node, unreachable destination."""


class ProtocolError(ReproError):
    """A TCP state-machine invariant was violated (indicates a bug)."""
