"""JSONL heartbeat log: every sweep event, timestamped, append-only.

One line per :class:`~repro.runner.pool.SweepObserver` event::

    {"t": 1754489000.123, "event": "task_finished", "sweep": 0,
     "index": 3, "label": "fig5 rr/6-drop", "digest": "ab12…",
     "seconds": 1.84}

``t`` is wall-clock epoch seconds (the run's provenance is wall time,
not sim time); ``sweep`` counts ``map`` calls within the run, so
multi-sweep harnesses (warm-start prefix captures, then cells) stay
distinguishable.  Lines are flushed per event — a heartbeat that only
reaches the disk at process exit is no heartbeat — so a killed run's
log still shows exactly how far it got, and post-hoc timing analysis
(`read_events`) needs no special crash handling beyond skipping a
possibly-torn final line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.pool import SweepObserver, SweepStats, TaskRecord  # noqa: F401
from repro.runner.spec import TaskSpec


class HeartbeatLog(SweepObserver):
    """Appends one JSON line per sweep event to ``path``."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self.sweep = -1
        self._fh = None

    def _emit(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        record = {"t": round(time.time(), 3), "event": event, "sweep": self.sweep}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    @staticmethod
    def _task_fields(index: int, spec: TaskSpec) -> Dict[str, Any]:
        return {"index": index, "label": spec.describe(), "digest": spec.digest()}

    # ------------------------------------------------------------------
    # SweepObserver
    # ------------------------------------------------------------------
    def sweep_started(self, total: int, jobs: int) -> None:
        self.sweep += 1
        self._emit("sweep_started", total=total, jobs=jobs)

    def task_queued(self, index: int, spec: TaskSpec) -> None:
        self._emit("task_queued", **self._task_fields(index, spec))

    def task_cached(self, index: int, spec: TaskSpec) -> None:
        self._emit("task_cached", **self._task_fields(index, spec))

    def task_started(self, index: int, spec: TaskSpec) -> None:
        self._emit("task_started", **self._task_fields(index, spec))

    def task_finished(self, index: int, spec: TaskSpec, seconds: float) -> None:
        self._emit(
            "task_finished",
            seconds=round(seconds, 6),
            **self._task_fields(index, spec),
        )

    def task_failed(self, index: int, spec: TaskSpec, error: BaseException) -> None:
        self._emit("task_failed", error=repr(error), **self._task_fields(index, spec))

    def task_retried(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        self._emit(
            "task_retried",
            attempt=attempt,
            delay=round(delay, 6),
            error=repr(error),
            **self._task_fields(index, spec),
        )

    def task_quarantined(self, index: int, spec: TaskSpec, record) -> None:
        self._emit(
            "task_quarantined",
            attempts=record.attempts,
            reason=record.reason,
            **self._task_fields(index, spec),
        )

    def cache_store_failed(self, index: int, spec: TaskSpec, reason: str) -> None:
        self._emit(
            "cache_store_failed", reason=reason, **self._task_fields(index, spec)
        )

    def sweep_finished(self, stats: SweepStats) -> None:
        self._emit(
            "sweep_finished",
            total=stats.total,
            cache_hits=stats.cache_hits,
            executed=stats.executed,
            salvaged=stats.salvaged,
            failed=stats.failed,
            retried=stats.retried,
            quarantined=stats.quarantined,
            cache_store_failures=stats.cache_store_failures,
            wall_seconds=round(stats.wall_seconds, 6),
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse a heartbeat log back into event dicts.

    A torn final line (the writer was killed mid-write) is skipped —
    every complete line is still valid JSON on its own.
    """
    events: List[Dict[str, Any]] = []
    text: Optional[str] = None
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
