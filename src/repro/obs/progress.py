"""Live TTY progress line for sweep runs.

Renders a single carriage-return-overwritten status line::

    [fig5] 37/120 done · 12 cached · 3 workers · ETA 41s

The line is only drawn when the stream is an interactive terminal
(``isatty``) — piping a run into a file or CI log must not fill it
with control characters — and the CLI's ``--quiet`` forces it off /
``--progress`` forces it on regardless.  The ETA divides the mean
worker-measured task time over the remaining cells by the worker
count; until the first task completes there is nothing honest to
extrapolate from, so the slot shows ``…``.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.runner.pool import SweepObserver, SweepStats
from repro.runner.spec import TaskSpec


class ProgressLine(SweepObserver):
    """A one-line, self-overwriting sweep progress display.

    ``enabled=None`` (the default) auto-detects: draw only when the
    stream reports ``isatty()``.  ``True``/``False`` force it.
    """

    def __init__(
        self,
        label: str,
        stream: Optional[TextIO] = None,
        enabled: Optional[bool] = None,
        min_interval: float = 0.1,
    ):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.min_interval = min_interval
        self._last_draw = 0.0
        self._width = 0
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.retried = 0
        self.quarantined = 0
        self._exec_seconds = 0.0
        self._exec_done = 0

    # ------------------------------------------------------------------
    # SweepObserver
    # ------------------------------------------------------------------
    def sweep_started(self, total: int, jobs: int) -> None:
        self.total += total
        self.jobs = jobs
        self._draw(force=True)

    def task_cached(self, index: int, spec: TaskSpec) -> None:
        self.done += 1
        self.cached += 1
        self._draw()

    def task_finished(self, index: int, spec: TaskSpec, seconds: float) -> None:
        self.done += 1
        self._exec_done += 1
        self._exec_seconds += seconds
        self._draw()

    def task_failed(self, index: int, spec: TaskSpec, error: BaseException) -> None:
        self.done += 1
        self.failed += 1
        self._draw()

    def task_retried(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        self.retried += 1
        self._draw()

    def task_quarantined(self, index: int, spec: TaskSpec, record) -> None:
        self.quarantined += 1
        self._draw()

    def sweep_finished(self, stats: SweepStats) -> None:
        self._draw(force=True)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall time, extrapolated from completed tasks."""
        remaining = self.total - self.done
        if remaining <= 0 or self._exec_done == 0:
            return None
        mean = self._exec_seconds / self._exec_done
        return mean * remaining / max(1, self.jobs)

    def render(self) -> str:
        eta = self.eta_seconds()
        eta_text = f"{eta:.0f}s" if eta is not None else "…"
        parts = [
            f"[{self.label}] {self.done}/{self.total} done",
            f"{self.cached} cached",
            f"{self.jobs} workers",
            f"ETA {eta_text}",
        ]
        if self.quarantined:
            parts.insert(1, f"{self.quarantined} QUARANTINED")
        if self.failed:
            parts.insert(1, f"{self.failed} FAILED")
        if self.retried:
            parts.insert(1, f"{self.retried} retried")
        return " · ".join(parts)

    def _draw(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        line = self.render()
        pad = " " * max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + pad)
        self.stream.flush()

    def close(self) -> None:
        """Finish the line (newline) so the next print starts clean."""
        if self.enabled and self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0
