"""Run manifests: one JSON provenance record per experiment run.

A :class:`RunManifest` answers, months later, "what exactly produced
this table?": the harness and its canonicalized configuration, the
code fingerprint the run executed under, every task's spec digest and
wall time, the cache/warm-start hit rates, and the outcome.  Manifests
are written to ``<artifact root>/runs/<run_id>/manifest.json`` where
the artifact root is ``$REPRO_ARTIFACT_DIR`` (falling back to
``.repro-artifacts/``) — the same tree CI uploads on failure, so a red
run always carries its own provenance.

The schema is flat JSON (no pickles) and versioned by
``MANIFEST_FORMAT``; :meth:`RunManifest.load` refuses unknown formats
rather than misreading them.  See docs/OBSERVABILITY.md for the full
field table.
"""

from __future__ import annotations

import dataclasses
import json
import os
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

#: Manifest schema version (bump on incompatible field changes).
MANIFEST_FORMAT = 1

#: Environment variable naming the artifact root (shared with the
#: chaos failure dumps and the golden-digest drift reports).
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Artifact root used when :data:`ARTIFACT_DIR_ENV` is unset.
DEFAULT_ARTIFACT_DIR = ".repro-artifacts"

#: Subdirectory of the artifact root holding one directory per run.
RUNS_SUBDIR = "runs"

MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"
PROFILES_SUBDIR = "profiles"


def artifact_root() -> Path:
    """The artifact root: ``$REPRO_ARTIFACT_DIR`` or the default."""
    return Path(os.environ.get(ARTIFACT_DIR_ENV, DEFAULT_ARTIFACT_DIR))


def runs_root(root: Optional[os.PathLike] = None) -> Path:
    """The ``runs/`` directory under ``root`` (default artifact root)."""
    return (Path(root) if root is not None else artifact_root()) / RUNS_SUBDIR


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def new_run_id(harness: str) -> str:
    """A unique, sortable run id: ``<harness>-<utc stamp>-<suffix>``."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S")
    return f"{harness}-{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunManifest:
    """Provenance of one experiment run (see module docstring).

    ``tasks`` holds one entry per sweep task the run executed or
    replayed: ``{"sweep": n, "index": i, "label": ..., "digest": ...,
    "cached": bool, "seconds": float|None, "error": str|None}``; failed
    entries additionally carry ``"quarantined": bool``.
    """

    run_id: str
    harness: str
    started_at: str
    code_fingerprint: str
    format: int = MANIFEST_FORMAT
    args: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    finished_at: Optional[str] = None
    outcome: str = "running"
    total: int = 0
    cached: int = 0
    executed: int = 0
    salvaged: int = 0
    failed: int = 0
    #: Retry executions performed across the run's sweeps (see
    #: docs/RESILIENCE.md; 0 on a clean run and in pre-resilience
    #: manifests, which load fine via this default).
    retried: int = 0
    #: Tasks quarantined as poison (budget exhausted on
    #: timeouts/crashes); their QuarantineRecords live under
    #: ``runs/<run_id>/quarantine/``.
    quarantined: int = 0
    #: Completed results the cache failed to persist.
    cache_store_failures: int = 0
    wall_seconds: float = 0.0
    warm_prefix_hits: Optional[int] = None
    warm_prefix_captures: Optional[int] = None
    #: Set when a requested warm start was auto-skipped by the
    #: :func:`~repro.runner.warmstart.warm_start_decision` cost model;
    #: holds the human-readable reason.  None = warm start not skipped.
    warm_start_skipped: Optional[str] = None
    #: Mean-field oracle verdict for harnesses that check measurements
    #: against an analytic model (``manyflow``): one flat dict per
    #: checked cell — ``{"label": ..., "passed": bool, "regime": ...,
    #: "measured_queue": ..., "predicted_queue": ..., "measured_loss":
    #: ..., "predicted_loss": ...}``.  None = the run had no oracle.
    oracle: Optional[List[Dict[str, Any]]] = None
    #: Behavior-class identification verdicts for harnesses that run
    #: the trace-based variant oracle (``identify``, chaos campaigns
    #: with ``identify=True``): one flat dict per checked flow —
    #: ``{"label": ..., "identified": ..., "declared": ...,
    #: "distance": ..., "margin": ..., "conclusive": bool,
    #: "ok": bool|None}``.  None = the run had no identity check.
    identity: Optional[List[Dict[str, Any]]] = None
    tasks: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def begin(
        cls,
        harness: str,
        args: Optional[Dict[str, Any]] = None,
        fingerprint: Optional[str] = None,
    ) -> "RunManifest":
        if fingerprint is None:
            from repro.runner.fingerprint import code_fingerprint

            fingerprint = code_fingerprint()
        return cls(
            run_id=new_run_id(harness),
            harness=harness,
            started_at=_utc_now(),
            code_fingerprint=fingerprint,
            args=dict(args or {}),
        )

    def describe_harness(
        self, harness: str, config: Any = None, seed: Optional[int] = None, **extra: Any
    ) -> None:
        """Record harness identity and canonicalized arguments.

        Called by each ``run_*`` harness when handed a manifest:
        ``config`` (usually the harness config dataclass) is reduced
        through :func:`repro.runner.spec.canonicalize`, so the manifest
        carries the exact argument content the task digests hashed.
        """
        from repro.runner.spec import canonicalize

        self.harness = harness
        if seed is not None:
            self.seed = seed
        if config is not None:
            self.args["config"] = canonicalize(config)
        for key, value in extra.items():
            self.args[key] = canonicalize(value)

    def note_warm_start(self, store: Any) -> None:
        """Record prefix reuse counters from a
        :class:`~repro.runner.warmstart.SnapshotStore`."""
        self.warm_prefix_hits = store.prefix_hits
        self.warm_prefix_captures = store.prefix_captures

    def note_oracle(self, label: str, verdict: Any) -> None:
        """Append one cell's analytic-oracle verdict (an
        :class:`~repro.models.meanfield.OracleVerdict`) so the manifest
        records whether the run matched the model, not just that it
        finished."""
        entry = {"label": label}
        entry.update(dataclasses.asdict(verdict))
        if self.oracle is None:
            self.oracle = []
        self.oracle.append(entry)

    def note_identity(self, label: str, verdict: Any) -> None:
        """Append one flow's behavior-class verdict (an
        :class:`~repro.ident.oracle.IdentityVerdict`), mirroring
        :meth:`note_oracle`: the manifest records what the run *behaved
        like*, not just which variant it declared."""
        entry = {"label": label}
        entry.update(verdict.as_dict())
        if self.identity is None:
            self.identity = []
        self.identity.append(entry)

    def note_warm_start_skipped(self, reason: str) -> None:
        """Record that a requested warm start was auto-skipped (the
        cost model predicted no win) and why."""
        self.warm_start_skipped = reason

    def finish(self, outcome: str = "ok") -> None:
        self.finished_at = _utc_now()
        self.outcome = outcome

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.total if self.total else 0.0

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        if payload.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"unsupported manifest format {payload.get('format')!r}"
                f" (this build reads format {MANIFEST_FORMAT})"
            )
        payload.pop("cache_hit_rate", None)
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ConfigurationError(
                f"manifest carries unknown fields {sorted(unknown)}"
            )
        return cls(**payload)

    def run_dir(self, root: Optional[os.PathLike] = None) -> Path:
        return runs_root(root) / self.run_id

    def write(self, root: Optional[os.PathLike] = None) -> Path:
        """Write ``manifest.json`` under ``runs/<run_id>/``; atomic so
        watchers never read a torn manifest."""
        run_dir = self.run_dir(root)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / MANIFEST_FILENAME
        tmp = run_dir / f".{MANIFEST_FILENAME}.tmp"
        tmp.write_text(self.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
