"""Merge and report per-task cProfile captures.

A sweep run with profiling enabled (``SweepRunner.profile_dir``, or
the CLI's ``--profile``) leaves one ``task-<index>-<digest>.pstats``
file per executed cell.  Each is a standard :mod:`pstats` dump — load
one into ``pstats.Stats`` or snakeviz for a single-cell deep dive —
and this module provides the cross-task view: merge every capture and
rank the hot functions, so "where does the whole grid spend its time"
is one function call (`hot_functions_report`).
"""

from __future__ import annotations

import os
import pstats
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.viz.ascii import format_table

PSTATS_SUFFIX = ".pstats"


@dataclass
class HotFunction:
    """One row of the merged profile ranking."""

    location: str        # "module.py:42(function)"
    calls: int
    internal_seconds: float   # time in the function itself (tottime)
    cumulative_seconds: float  # time including callees (cumtime)


def profile_paths(profile_dir: os.PathLike) -> List[Path]:
    """Every per-task capture under ``profile_dir``, sorted by name
    (i.e. by task index)."""
    root = Path(profile_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{PSTATS_SUFFIX}"))


def merged_stats(profile_dir: os.PathLike) -> Optional[pstats.Stats]:
    """All captures in ``profile_dir`` added into one ``pstats.Stats``
    (None when there are no captures)."""
    paths = profile_paths(profile_dir)
    if not paths:
        return None
    stats = pstats.Stats(str(paths[0]))
    for path in paths[1:]:
        stats.add(str(path))
    return stats


def _location(key) -> str:
    filename, lineno, function = key
    if filename == "~":          # built-ins have no file
        return function
    return f"{os.path.basename(filename)}:{lineno}({function})"


def hot_functions(profile_dir: os.PathLike, top: int = 15) -> List[HotFunction]:
    """The merged top-``top`` functions by internal (self) time."""
    stats = merged_stats(profile_dir)
    if stats is None:
        return []
    rows = []
    for key, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            HotFunction(
                location=_location(key),
                calls=nc,
                internal_seconds=tt,
                cumulative_seconds=ct,
            )
        )
    rows.sort(key=lambda row: row.internal_seconds, reverse=True)
    return rows[:top]


def hot_functions_report(profile_dir: os.PathLike, top: int = 15) -> str:
    """The merged hot-function table the CLI prints under ``--profile``."""
    captures = profile_paths(profile_dir)
    rows = hot_functions(profile_dir, top=top)
    if not rows:
        return f"no profile captures under {profile_dir}"
    table = format_table(
        ["hot function (merged)", "calls", "self s", "cum s"],
        [
            [
                row.location,
                row.calls,
                f"{row.internal_seconds:.3f}",
                f"{row.cumulative_seconds:.3f}",
            ]
            for row in rows
        ],
    )
    return (
        f"merged profile over {len(captures)} task capture(s)"
        f" ({profile_dir}):\n{table}"
    )
