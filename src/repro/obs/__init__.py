"""Run telemetry: manifests, heartbeats, live progress, profiling.

Every experiment run (CLI harness, bench campaign) is observable and
auditable through this package:

* :class:`RunManifest` — the JSON provenance record written to
  ``$REPRO_ARTIFACT_DIR/runs/<run_id>/manifest.json`` at the end of a
  run (harness, canonical args, code fingerprint, spec digests,
  per-task wall times, cache/warm-start hit rates, outcome);
* :class:`HeartbeatLog` — a flushed-per-event JSONL log of every task
  lifecycle event, for post-hoc timing analysis and liveness checks;
* :class:`ProgressLine` — the auto-suppressing TTY progress line;
* :mod:`repro.obs.profiling` — merge per-task cProfile captures into a
  hot-function ranking;
* :class:`RunTelemetry` — the per-run orchestrator tying all of the
  above to a :class:`~repro.runner.SweepRunner` via its observer hook.

See docs/OBSERVABILITY.md for schemas and workflows.
"""

from repro.obs.heartbeat import HeartbeatLog, read_events
from repro.obs.manifest import (
    ARTIFACT_DIR_ENV,
    DEFAULT_ARTIFACT_DIR,
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    MANIFEST_FORMAT,
    PROFILES_SUBDIR,
    RUNS_SUBDIR,
    RunManifest,
    artifact_root,
    new_run_id,
    runs_root,
)
from repro.obs.profiling import (
    HotFunction,
    hot_functions,
    hot_functions_report,
    merged_stats,
    profile_paths,
)
from repro.obs.progress import ProgressLine
from repro.obs.telemetry import RunTelemetry

__all__ = [
    "ARTIFACT_DIR_ENV",
    "DEFAULT_ARTIFACT_DIR",
    "EVENTS_FILENAME",
    "HeartbeatLog",
    "HotFunction",
    "MANIFEST_FILENAME",
    "MANIFEST_FORMAT",
    "PROFILES_SUBDIR",
    "ProgressLine",
    "RUNS_SUBDIR",
    "RunManifest",
    "RunTelemetry",
    "artifact_root",
    "hot_functions",
    "hot_functions_report",
    "merged_stats",
    "new_run_id",
    "profile_paths",
    "read_events",
    "runs_root",
]
