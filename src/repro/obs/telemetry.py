"""The run-level telemetry harness: one object per experiment run.

:class:`RunTelemetry` is the glue the CLI (and ``scripts/bench.py``)
use: it is itself a :class:`~repro.runner.pool.SweepObserver` that

* accumulates every task event into a :class:`~repro.obs.manifest.
  RunManifest` (across *all* ``map`` calls the run makes — warm-start
  prefix captures included);
* fans the same events out to a :class:`~repro.obs.heartbeat.
  HeartbeatLog` (``runs/<run_id>/events.jsonl``) and, when wanted, a
  :class:`~repro.obs.progress.ProgressLine`;
* owns the run directory, the optional profile capture directory, and
  the final manifest write.

Typical shape::

    telemetry = RunTelemetry("fig5", args={"jobs": 4}, profile=True)
    telemetry.attach(runner)
    try:
        result = run_figure5(config, runner=runner, manifest=telemetry.manifest)
    except BaseException as error:
        telemetry.abort(error)
        raise
    finally:
        telemetry.detach(runner)
    manifest_path = telemetry.finish()
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.heartbeat import HeartbeatLog
from repro.obs.manifest import EVENTS_FILENAME, PROFILES_SUBDIR, RunManifest
from repro.obs.profiling import hot_functions_report
from repro.obs.progress import ProgressLine
from repro.runner.pool import SweepObserver, SweepStats
from repro.runner.spec import TaskSpec


class RunTelemetry(SweepObserver):
    """Accumulates one run's telemetry and writes it out at the end.

    Parameters
    ----------
    harness:
        Run label: manifest ``harness`` field, progress-line prefix,
        run-id prefix.
    args:
        Invocation summary recorded verbatim in the manifest (CLI flag
        values, bench sizing, …) — JSON-encodable values only.
    progress:
        ``None`` auto-detects a TTY on ``stream``; ``True``/``False``
        force the progress line on/off (the CLI's ``--progress`` /
        ``--quiet``).
    profile:
        When true, tasks attached via :meth:`attach` dump per-task
        cProfile captures under ``runs/<run_id>/profiles/``.
    root:
        Artifact root override (default ``$REPRO_ARTIFACT_DIR`` or
        ``.repro-artifacts``).
    """

    def __init__(
        self,
        harness: str,
        args: Optional[Dict[str, Any]] = None,
        progress: Optional[bool] = None,
        profile: bool = False,
        stream: Optional[TextIO] = None,
        root: Optional[Any] = None,
        fingerprint: Optional[str] = None,
    ):
        self.manifest = RunManifest.begin(harness, args=args, fingerprint=fingerprint)
        self._root = root
        self.run_dir: Path = self.manifest.run_dir(root)
        self.stream = stream if stream is not None else sys.stderr
        self.heartbeat = HeartbeatLog(self.run_dir / EVENTS_FILENAME)
        self.progress = ProgressLine(harness, stream=self.stream, enabled=progress)
        self.profile_dir: Optional[Path] = (
            self.run_dir / PROFILES_SUBDIR if profile else None
        )
        self._children: List[SweepObserver] = [self.heartbeat, self.progress]
        self._sweep = -1
        self._finished = False
        self._quarantined_digests: set = set()

    @property
    def quarantine_dir(self) -> Path:
        """Where this run's poison-task records are written."""
        from repro.runner.resilience import QUARANTINE_SUBDIR

        return self.run_dir / QUARANTINE_SUBDIR

    # ------------------------------------------------------------------
    # runner wiring
    # ------------------------------------------------------------------
    def attach(self, runner) -> "RunTelemetry":
        """Point ``runner`` at this telemetry (observer + profile dir +
        quarantine dir, so poison-task records land in the run's own
        artifact directory)."""
        runner.observer = self
        if self.profile_dir is not None:
            runner.profile_dir = self.profile_dir
        if getattr(runner, "quarantine_dir", None) is None:
            runner.quarantine_dir = self.quarantine_dir
        return self

    def detach(self, runner) -> None:
        """Undo :meth:`attach` (the runner may outlive the run)."""
        if runner.observer is self:
            runner.observer = None
        if self.profile_dir is not None and runner.profile_dir == self.profile_dir:
            runner.profile_dir = None
        if getattr(runner, "quarantine_dir", None) == self.quarantine_dir:
            runner.quarantine_dir = None

    # ------------------------------------------------------------------
    # SweepObserver: accumulate into the manifest, fan out to children
    # ------------------------------------------------------------------
    def _fan_out(self, event: str, *args: Any) -> None:
        for child in self._children:
            getattr(child, event)(*args)

    def _task_entry(self, index: int, spec: TaskSpec, **extra: Any) -> Dict[str, Any]:
        entry = {
            "sweep": self._sweep,
            "index": index,
            "label": spec.describe(),
            "digest": spec.digest(),
            "cached": False,
            "seconds": None,
            "error": None,
        }
        entry.update(extra)
        return entry

    def sweep_started(self, total: int, jobs: int) -> None:
        self._sweep += 1
        self.manifest.total += total
        self._fan_out("sweep_started", total, jobs)

    def task_queued(self, index: int, spec: TaskSpec) -> None:
        self._fan_out("task_queued", index, spec)

    def task_cached(self, index: int, spec: TaskSpec) -> None:
        self.manifest.cached += 1
        self.manifest.tasks.append(self._task_entry(index, spec, cached=True))
        self._fan_out("task_cached", index, spec)

    def task_started(self, index: int, spec: TaskSpec) -> None:
        self._fan_out("task_started", index, spec)

    def task_finished(self, index: int, spec: TaskSpec, seconds: float) -> None:
        self.manifest.executed += 1
        self.manifest.tasks.append(
            self._task_entry(index, spec, seconds=round(seconds, 6))
        )
        self._fan_out("task_finished", index, spec, seconds)

    def task_failed(self, index: int, spec: TaskSpec, error: BaseException) -> None:
        self.manifest.executed += 1
        self.manifest.failed += 1
        quarantined = spec.digest() in self._quarantined_digests
        self.manifest.tasks.append(
            self._task_entry(index, spec, error=repr(error), quarantined=quarantined)
        )
        self._fan_out("task_failed", index, spec, error)

    def task_retried(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        self.manifest.retried += 1
        self._fan_out("task_retried", index, spec, attempt, delay, error)

    def task_quarantined(self, index: int, spec: TaskSpec, record) -> None:
        self.manifest.quarantined += 1
        self._quarantined_digests.add(spec.digest())
        self._fan_out("task_quarantined", index, spec, record)

    def cache_store_failed(self, index: int, spec: TaskSpec, reason: str) -> None:
        self.manifest.cache_store_failures += 1
        self._fan_out("cache_store_failed", index, spec, reason)

    def sweep_finished(self, stats: SweepStats) -> None:
        self.manifest.wall_seconds += stats.wall_seconds
        self.manifest.salvaged += stats.salvaged
        self._fan_out("sweep_finished", stats)

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------
    def finish(self, outcome: str = "ok") -> Path:
        """Finalize and write the manifest; returns its path.

        Idempotent: a second call (e.g. ``abort`` already ran in an
        except block) rewrites the same file.
        """
        self.progress.close()
        self.manifest.finish(outcome)
        path = self.manifest.write(self._root)
        self.heartbeat.close()
        self._finished = True
        return path

    def abort(self, error: BaseException) -> Path:
        """Record a failed run (manifest outcome ``failed: …``)."""
        return self.finish(outcome=f"failed: {error!r}")

    def profile_report(self, top: int = 15) -> Optional[str]:
        """The merged hot-function table, or None when not profiling."""
        if self.profile_dir is None:
            return None
        return hot_functions_report(self.profile_dir, top=top)
