"""``python -m repro`` — package info and a micro self-check.

Prints the version, the registered TCP variants, and runs a two-second
loss-free smoke simulation to confirm the install works end to end.
"""

from __future__ import annotations

import sys

import repro
from repro.net.topology import Dumbbell, DumbbellParams
from repro.app.ftp import FtpSource
from repro.sim.engine import Simulator
from repro.tcp.factory import VARIANTS, make_connection


def main() -> int:
    print(f"repro {repro.__version__} — 'Robust TCP Congestion Recovery'"
          " (Wang & Shin, ICDCS 2001) reproduction")
    print(f"TCP variants: {', '.join(sorted(VARIANTS))}")
    sim = Simulator()
    bell = Dumbbell(sim, DumbbellParams(n_pairs=1, buffer_packets=100))
    sender, _ = make_connection(sim, "rr", 1, bell.sender(1), bell.receiver(1))
    FtpSource(sim, sender, amount_packets=50)
    sim.run(until=10.0)
    if not sender.completed:
        print("self-check FAILED: smoke transfer did not complete", file=sys.stderr)
        return 1
    print(
        f"self-check OK: 50-packet RR transfer completed in"
        f" {sender.complete_time:.2f}s simulated"
        f" ({sim.events_processed} events)"
    )
    print("next: python -m repro.experiments all --quick")
    return 0


if __name__ == "__main__":
    sys.exit(main())
