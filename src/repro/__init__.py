"""repro — a reproduction of "Robust TCP Congestion Recovery"
(Haining Wang & Kang G. Shin, ICDCS 2001).

The package bundles:

* :mod:`repro.core` — the paper's contribution, the Robust Recovery
  (RR) congestion-recovery algorithm;
* :mod:`repro.tcp` — the baselines it is evaluated against (Tahoe,
  Reno, New-Reno, SACK) on shared sender machinery;
* :mod:`repro.sim` / :mod:`repro.net` — a packet-level discrete-event
  network simulator (the ns-2 substitute): links, drop-tail and RED
  gateways, loss injection, the paper's dumbbell topology;
* :mod:`repro.models` — the Mathis square-root and Padhye throughput
  models (Section 4);
* :mod:`repro.metrics` / :mod:`repro.experiments` — measurement and
  the harnesses regenerating every table and figure in the paper.

Quickstart
----------
>>> from repro import Simulator, Dumbbell, DumbbellParams, make_connection, FtpSource
>>> sim = Simulator()
>>> bell = Dumbbell(sim, DumbbellParams(n_pairs=1))
>>> sender, _ = make_connection(sim, "rr", 1, bell.sender(1), bell.receiver(1))
>>> ftp = FtpSource(sim, sender, amount_packets=200)
>>> sim.run(until=30.0)
>>> sender.completed
True
"""

from repro.app.ftp import FtpSource
from repro.config import TcpConfig
from repro.core.robust_recovery import RobustRecoverySender, RrPhase
from repro.errors import (
    CallbackError,
    ConfigurationError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyError,
)
from repro.faults import CampaignRunner, CampaignSpec, FaultPlan
from repro.metrics.flowstats import FlowStats
from repro.net.loss import AckLoss, DeterministicLoss, UniformLoss
from repro.net.red import RedParams, RedQueue
from repro.net.queues import DropTailQueue
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.tcp.factory import VARIANTS, make_connection

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "TcpConfig",
    "Dumbbell",
    "DumbbellParams",
    "DropTailQueue",
    "RedParams",
    "RedQueue",
    "UniformLoss",
    "DeterministicLoss",
    "AckLoss",
    "RobustRecoverySender",
    "RrPhase",
    "FlowStats",
    "FtpSource",
    "VARIANTS",
    "make_connection",
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "CallbackError",
    "InvariantViolation",
    "ConfigurationError",
    "TopologyError",
    "ProtocolError",
    "FaultPlan",
    "CampaignSpec",
    "CampaignRunner",
]
