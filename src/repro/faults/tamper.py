"""Packet tampering: duplication and corruption-drop.

A :class:`PacketTamperer` attaches to a link (``link.tamper``) and is
consulted for every packet entering the link, before loss injection and
queueing.  Two behaviours, both seeded:

* **duplication** — the packet is admitted twice (the copy gets a fresh
  uid), modelling a duplicating middlebox or a retransmitting L2.  The
  receiver must still deliver the data exactly once;
* **corruption** — the packet is destroyed before the queue (the model
  for a corrupted packet is a failed checksum at the far end, which is
  indistinguishable from a drop at this abstraction level).

Both can be confined to a time window, so a campaign can schedule a
bounded "flaky middlebox" episode rather than a permanent condition.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet, clone_packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


class PacketTamperer:
    """Seeded duplication / corruption decisions for one link.

    Parameters
    ----------
    sim:
        Clock provider (for the activity window).
    rng:
        Random stream driving both coin flips.
    duplicate_rate / corrupt_rate:
        Per-packet probabilities.  Corruption is evaluated first; a
        packet is never both corrupted and duplicated.
    start / end:
        Activity window in simulation time (``end=None`` = forever).
    data_only:
        When True (default) ACKs pass untouched — reverse-path faults
        are modelled explicitly with :class:`~repro.net.loss.AckLoss`.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngStream,
        duplicate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        start: float = 0.0,
        end: Optional[float] = None,
        data_only: bool = True,
    ):
        for name, rate in [("duplicate_rate", duplicate_rate), ("corrupt_rate", corrupt_rate)]:
            if not 0 <= rate <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if end is not None and end <= start:
            raise ConfigurationError(f"empty tamper window [{start}, {end})")
        self._sim = sim
        self._rng = rng
        self.duplicate_rate = duplicate_rate
        self.corrupt_rate = corrupt_rate
        self.start = start
        self.end = end
        self.data_only = data_only
        self.duplicated = 0
        self.corrupted = 0

    @property
    def active(self) -> bool:
        now = self._sim.now
        return now >= self.start and (self.end is None or now < self.end)

    def verdict(self, packet: Packet) -> Optional[str]:
        """``"corrupt"``, ``"duplicate"`` or None for this packet."""
        if not self.active:
            return None
        if self.data_only and not packet.is_data:
            return None
        if self.corrupt_rate and self._rng.bernoulli(self.corrupt_rate):
            self.corrupted += 1
            return "corrupt"
        if self.duplicate_rate and self._rng.bernoulli(self.duplicate_rate):
            self.duplicated += 1
            return "duplicate"
        return None

    @staticmethod
    def clone(packet: Packet) -> Packet:
        """The wire copy the link admits next to the original."""
        return clone_packet(packet)
