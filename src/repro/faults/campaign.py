"""Randomized fault campaigns.

A :class:`CampaignRunner` samples :class:`~repro.faults.plan.FaultPlan`
instances from a seeded RNG stream, within the survivability bounds of
a :class:`CampaignSpec`.  Determinism contract: the same
``(seed, spec)`` pair yields bit-identical plans, and plan *i* is
independent of how many plans were drawn before it (each plan gets its
own derived stream), so campaigns can be resumed, parallelised or
re-run one seed at a time.

The spec's bounds are deliberately conservative by default: a campaign
exists to stress recovery, not to make delivery impossible.  Outages
stay shorter than the maximum RTO back-off, stochastic loss rates stay
in the regime the paper studies (§2.3 runs ACK loss up to ~90%, but a
*survivable* campaign keeps data-path rates modest), and every episode
closes before the fault horizon so the run can drain cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import (
    AckLossEpisode,
    BurstLossEpisode,
    FaultAction,
    FaultPlan,
    LinkFlap,
    LinkOutage,
    PacketCorruption,
    PacketDuplication,
    PeriodicDropEpisode,
    RouterBlackout,
    TimerSkew,
)
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class CampaignSpec:
    """Bounds within which a campaign samples faults.

    ``horizon`` is the fault horizon: every sampled episode starts and
    ends inside ``[warmup, horizon)``, leaving the rest of the run to
    drain.  Link-name defaults match the single-flow dumbbell
    (S1 -> R1 -> R2 -> K1); widen them for multi-flow scenarios.
    """

    horizon: float = 200.0
    warmup: float = 2.0
    min_actions: int = 1
    max_actions: int = 3
    # episode bounds
    outage_max: float = 1.5          # < min RTO back-off stays survivable
    flap_max_count: int = 3
    ack_loss_max: float = 0.10
    duplicate_max: float = 0.05
    corrupt_max: float = 0.05
    episode_max: float = 30.0        # longest stochastic-loss window
    periodic_min: int = 30           # gentlest periodic drop is 1/30
    timer_skew_max: float = 3.0
    # where faults may land
    data_links: Tuple[str, ...] = ("S1->R1", "R1->R2")
    ack_links: Tuple[str, ...] = ("K1->R2", "R2->R1")
    routers: Tuple[str, ...] = ("R1", "R2")

    def validate(self) -> None:
        if self.horizon <= self.warmup:
            raise ConfigurationError("campaign horizon must exceed warmup")
        if not 1 <= self.min_actions <= self.max_actions:
            raise ConfigurationError(
                "need 1 <= min_actions <= max_actions, got "
                f"[{self.min_actions}, {self.max_actions}]"
            )
        if self.outage_max <= 0 or self.episode_max <= 0:
            raise ConfigurationError("episode bounds must be positive")
        for name, rate in [
            ("ack_loss_max", self.ack_loss_max),
            ("duplicate_max", self.duplicate_max),
            ("corrupt_max", self.corrupt_max),
        ]:
            if not 0 <= rate <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")


class CampaignRunner:
    """Draws seeded fault plans from a spec.

    >>> runner = CampaignRunner(seed=7)
    >>> plan = runner.plan_for(0)           # deterministic in (seed, 0)
    >>> plan.seed, len(plan) >= 1
    (7, True)
    """

    #: the sampleable fault kinds, in a fixed order (part of the
    #: determinism contract — reordering changes every sampled plan).
    KINDS = (
        "outage",
        "flap",
        "blackout",
        "ack-loss",
        "duplicate",
        "corrupt",
        "burst",
        "periodic",
        "timer-skew",
    )

    def __init__(self, seed: int, spec: CampaignSpec = CampaignSpec()):
        spec.validate()
        self.seed = seed
        self.spec = spec

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def plan_for(self, index: int) -> FaultPlan:
        """The ``index``-th plan of this campaign (pure in seed+index)."""
        spec = self.spec
        rng = RngStream(self.seed, f"campaign/{index}")
        count = rng.randint(spec.min_actions, spec.max_actions)
        plan = FaultPlan(seed=self.seed, name=f"campaign-{self.seed}-{index}")
        for _ in range(count):
            plan.add(self._sample_action(rng))
        return plan

    def plans(self, count: int) -> List[FaultPlan]:
        return [self.plan_for(i) for i in range(count)]

    def cell_specs(self, fn: str, count: int, args: Sequence = ()) -> List["TaskSpec"]:
        """Describe ``count`` campaign cells as runner task specs.

        Cell *i* calls ``fn(*args, i)`` — the plan index is the last
        positional argument, and the worker rebuilds plan *i* itself
        (``plan_for`` is pure in ``(seed, spec, index)``), so fanning a
        campaign out over a :class:`~repro.runner.SweepRunner` ships no
        plan objects across the process boundary and is bit-identical
        to drawing the plans serially.
        """
        from repro.runner import TaskSpec

        return [
            TaskSpec(fn=fn, args=(*args, i), label=f"campaign-{self.seed}-{i}")
            for i in range(count)
        ]

    def _window(self, rng: RngStream, max_len: float) -> Tuple[float, float]:
        """A [start, end) episode fully inside [warmup, horizon)."""
        spec = self.spec
        span = spec.horizon - spec.warmup
        length = rng.uniform(min(1.0, max_len), min(max_len, span))
        start = rng.uniform(spec.warmup, spec.horizon - length)
        return start, start + length

    def _sample_action(self, rng: RngStream) -> FaultAction:
        spec = self.spec
        kind = rng.choice(self.KINDS)
        if kind == "outage":
            start, _ = self._window(rng, spec.outage_max)
            return LinkOutage(
                link=rng.choice(spec.data_links),
                start=start,
                duration=rng.uniform(0.1, spec.outage_max),
            )
        if kind == "flap":
            start, _ = self._window(rng, spec.outage_max)
            return LinkFlap(
                link=rng.choice(spec.data_links),
                start=start,
                count=rng.randint(2, spec.flap_max_count),
                down=rng.uniform(0.05, spec.outage_max / spec.flap_max_count),
                up=rng.uniform(0.5, 2.0),
            )
        if kind == "blackout":
            start, _ = self._window(rng, spec.outage_max)
            return RouterBlackout(
                router=rng.choice(spec.routers),
                start=start,
                duration=rng.uniform(0.1, spec.outage_max),
            )
        if kind == "ack-loss":
            start, end = self._window(rng, spec.episode_max)
            return AckLossEpisode(
                link=rng.choice(spec.ack_links),
                rate=rng.uniform(0.01, spec.ack_loss_max),
                start=start,
                end=end,
            )
        if kind == "duplicate":
            start, end = self._window(rng, spec.episode_max)
            return PacketDuplication(
                link=rng.choice(spec.data_links),
                rate=rng.uniform(0.005, spec.duplicate_max),
                start=start,
                end=end,
            )
        if kind == "corrupt":
            start, end = self._window(rng, spec.episode_max)
            return PacketCorruption(
                link=rng.choice(spec.data_links),
                rate=rng.uniform(0.005, spec.corrupt_max),
                start=start,
                end=end,
            )
        if kind == "burst":
            start, end = self._window(rng, spec.episode_max)
            return BurstLossEpisode(
                link=rng.choice(spec.data_links),
                start=start,
                end=end,
                p_good_to_bad=rng.uniform(0.005, 0.03),
                p_bad_to_good=rng.uniform(0.2, 0.5),
                p_bad=rng.uniform(0.3, 0.6),
            )
        if kind == "periodic":
            start, end = self._window(rng, spec.episode_max)
            return PeriodicDropEpisode(
                link=rng.choice(spec.data_links),
                period=rng.randint(spec.periodic_min, spec.periodic_min * 3),
                start=start,
                end=end,
            )
        # timer-skew
        return TimerSkew(factor=rng.uniform(1.0, spec.timer_skew_max))
