"""Fault injection: declarative plans, seeded campaigns, tampering.

The chaos harness's offense half (see docs/FAULTS.md).  A
:class:`FaultPlan` is a data-only schedule of fault actions installable
onto any built topology; a :class:`CampaignRunner` samples plans from a
seeded stream within :class:`CampaignSpec` bounds.  The defense half —
invariant checking and the watchdog — lives in :mod:`repro.sim`.
"""

from repro.faults.campaign import CampaignRunner, CampaignSpec
from repro.faults.plan import (
    AckLossEpisode,
    BurstLossEpisode,
    FaultAction,
    FaultContext,
    FaultPlan,
    LinkFlap,
    LinkOutage,
    PacketCorruption,
    PacketDuplication,
    PeriodicDropEpisode,
    RouterBlackout,
    TimerSkew,
)
from repro.faults.tamper import PacketTamperer
from repro.faults.triage import TriageResult, neutralize_faults, triage_crash

__all__ = [
    "AckLossEpisode",
    "BurstLossEpisode",
    "CampaignRunner",
    "CampaignSpec",
    "FaultAction",
    "FaultContext",
    "FaultPlan",
    "LinkFlap",
    "LinkOutage",
    "PacketCorruption",
    "PacketDuplication",
    "PacketTamperer",
    "PeriodicDropEpisode",
    "RouterBlackout",
    "TimerSkew",
    "TriageResult",
    "neutralize_faults",
    "triage_crash",
]
