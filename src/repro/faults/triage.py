"""Snapshot-based crash triage: bisect "the fault did it" from "the
protocol did it".

When a chaos run trips the watchdog (or an invariant), the interesting
question is attribution: did the injected fault merely *provoke* a
latent protocol bug, or is the stall simply the fault still being
active?  The triage answers it by forking the crash point:

* the world is frozen exactly where the guard tripped
  (:class:`~repro.snapshot.Snapshot` at the crash point);
* fork **with** the fault: restore and run ``grace`` more seconds with
  every installed fault left in place — the control arm, expected to
  keep stalling while the fault persists;
* fork **without** the fault: restore, :func:`neutralize_faults` (loss
  modules cleared, tampering removed, downed links raised, pending
  outage events cancelled, timer skew reset), run the same grace.

If the neutralized fork recovers while the faulted fork stays stuck,
the fault is *implicated* — remove the fault and the protocol heals.
If neither fork recovers, the crash outlives its cause: the sender's
state machine wedged itself, which is exactly the class of bug the
paper's robust-recovery design is about.  Both fork endpoints are
digest-addressed (and, given a store, persisted as delta snapshots
against the crash point) so a failing cell can be replayed and stepped
interactively — see docs/WARMSTART.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.link import Link
from repro.net.loss import NoLoss
from repro.snapshot import Snapshot


def neutralize_faults(scenario) -> List[str]:
    """Strip every installed fault from a restored chaos world, in
    place; returns human-readable notes of what was removed.

    Covers the whole :mod:`repro.faults.plan` action vocabulary: loss
    modules (ACK loss, burst/periodic episodes) are replaced with
    :class:`~repro.net.loss.NoLoss`, tamper chains and reorder
    injectors are detached, downed links are raised and their pending
    ``set_down`` / ``set_up`` outage events cancelled, and every
    sender's RTO timer granularity is reset to its configured value
    (undoing :class:`~repro.faults.plan.TimerSkew`).
    """
    notes: List[str] = []
    sim = scenario.sim
    for name, link in scenario.dumbbell.net.links.items():
        if not isinstance(link.loss, NoLoss):
            notes.append(f"cleared loss on {name}")
            link.loss = NoLoss()
        if link.tamper is not None:
            notes.append(f"removed tamperer on {name}")
            link.tamper = None
        if link.reorder is not None:
            notes.append(f"removed reorderer on {name}")
            link.reorder = None
        if link.is_down:
            notes.append(f"raised downed link {name}")
            link.set_up()
    # Outage actions schedule bare ``Link.set_down`` / ``set_up``
    # callbacks; any still pending would re-fault the neutralized world.
    for _, _, event in list(sim._heap):
        fn = event.fn
        owner = getattr(fn, "__self__", None)
        if not (event.pending and isinstance(owner, Link)):
            continue
        if getattr(fn, "__func__", None) in (Link.set_down, Link.set_up):
            notes.append(f"cancelled scheduled {fn.__name__} on {owner.name}")
            event.cancel()
    for flow_id, sender in scenario.senders.items():
        configured = sender.config.timer_granularity
        if sender.timer_granularity != configured:
            notes.append(f"reset timer granularity on flow {flow_id}")
            sender.set_timer_granularity(configured)
    return notes


@dataclass
class TriageResult:
    """Outcome of one crash bisection."""

    crash_digest: str
    grace: float
    with_fault_digest: str
    without_fault_digest: str
    with_fault_recovered: bool
    without_fault_recovered: bool
    neutralized: List[str]

    @property
    def fault_implicated(self) -> bool:
        """True when removing the fault is what lets the run heal."""
        return self.without_fault_recovered and not self.with_fault_recovered

    def verdict(self) -> str:
        if self.fault_implicated:
            return "fault implicated: the run heals once the fault is removed"
        if not self.without_fault_recovered:
            return (
                "fault NOT implicated: the stall outlives the fault — "
                "protocol state machine is wedged"
            )
        return "inconclusive: the run heals even with the fault active"

    def format(self) -> str:
        lines = [
            f"triage ({self.grace:.1f}s grace forks from {self.crash_digest[:12]}…):",
            f"  with fault:    recovered={self.with_fault_recovered} "
            f"-> {self.with_fault_digest[:12]}…",
            f"  without fault: recovered={self.without_fault_recovered} "
            f"-> {self.without_fault_digest[:12]}… "
            f"({len(self.neutralized)} faults neutralized)",
            f"  {self.verdict()}",
        ]
        return "\n".join(lines)


def _run_fork(
    snapshot: Snapshot,
    grace: float,
    neutralize: bool,
    store=None,
):
    """Restore one arm, optionally neutralize, run ``grace`` seconds,
    and return (end snapshot digest, recovered, notes)."""
    scenario = snapshot.restore(verify=False)
    notes: List[str] = []
    if neutralize:
        notes = neutralize_faults(scenario)
    baseline = {
        flow_id: (sender.snd_una, sender.completed)
        for flow_id, sender in scenario.senders.items()
    }
    sim = scenario.sim
    sim.run(until=sim.now + grace)
    recovered = any(
        sender.completed or sender.snd_una > baseline[flow_id][0]
        for flow_id, sender in scenario.senders.items()
        if not baseline[flow_id][1]
    )
    label = "triage no-fault fork" if neutralize else "triage fault fork"
    end = Snapshot.capture(scenario, label=f"{label} of {snapshot.digest[:12]}")
    if store is not None:
        store.put_delta(end, base_digest=snapshot.digest)
    return end.digest, recovered, notes


def triage_crash(
    snapshot: Snapshot,
    grace: float = 30.0,
    store=None,
) -> TriageResult:
    """Bisect one crash: fork ``snapshot`` with and without the active
    faults, run each ``grace`` seconds, and report which arm recovered.

    ``store`` (a :class:`~repro.runner.warmstart.SnapshotStore`) is
    optional; when given, the crash point is persisted in full and both
    fork endpoints as delta snapshots against it, so the bisection is
    replayable after the fact.
    """
    if store is not None:
        store.put(snapshot)
    with_digest, with_recovered, _ = _run_fork(
        snapshot, grace, neutralize=False, store=store
    )
    without_digest, without_recovered, notes = _run_fork(
        snapshot, grace, neutralize=True, store=store
    )
    return TriageResult(
        crash_digest=snapshot.digest,
        grace=grace,
        with_fault_digest=with_digest,
        without_fault_digest=without_digest,
        with_fault_recovered=with_recovered,
        without_fault_recovered=without_recovered,
        neutralized=notes,
    )
