"""Declarative fault plans.

A :class:`FaultPlan` is a seeded, composable schedule of fault actions
that installs itself onto any built topology.  Actions are plain
dataclasses — a plan is data until :meth:`FaultPlan.install` wires it
into a concrete :class:`~repro.net.network.Network` — so the same plan
can be replayed against every TCP variant, printed into a report, or
merged with another plan (``plan_a + plan_b``).

The action vocabulary covers the paper's adversarial conditions and
the classic chaos repertoire:

* :class:`LinkOutage` / :class:`LinkFlap` — raw loss bursts on one link
  (the "channel blackouts" of mobile-network recovery studies);
* :class:`RouterBlackout` — every link touching a router goes dark;
* :class:`AckLossEpisode` — reverse-path ACK loss (paper §2.3);
* :class:`PacketDuplication` / :class:`PacketCorruption` — a flaky
  middlebox duplicating or mangling data packets;
* :class:`BurstLossEpisode` — a Gilbert-Elliott bad-state channel for a
  bounded window;
* :class:`PeriodicDropEpisode` — the Mathis model's literal loss
  process, time-bounded;
* :class:`TimerSkew` — RTO clock-granularity skew between hosts
  (pathological timing regimes, cf. Jain's divergence analysis).

Randomness is derived per-action from the plan's seed, never shared:
installing the same plan twice yields bit-identical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, TopologyError
from repro.faults.tamper import PacketTamperer
from repro.net.link import Link
from repro.net.loss import (
    AckLoss,
    Composite,
    GilbertElliott,
    LossModule,
    NoLoss,
    PeriodicLoss,
    WindowedLoss,
)
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream


class _TamperChain:
    """Consult several tamperers in order (first non-None verdict wins)."""

    def __init__(self, *tamperers: PacketTamperer):
        self.tamperers = list(tamperers)

    def verdict(self, packet):
        for tamperer in self.tamperers:
            verdict = tamperer.verdict(packet)
            if verdict is not None:
                return verdict
        return None

    @staticmethod
    def clone(packet):
        return PacketTamperer.clone(packet)


@dataclass
class FaultContext:
    """Everything an action needs to install itself: the engine, the
    built network, and (for host-side faults) the senders by flow id."""

    sim: Simulator
    net: Network
    senders: Dict[int, object] = field(default_factory=dict)

    @classmethod
    def from_scenario(cls, scenario) -> "FaultContext":
        """Build from an :class:`~repro.experiments.common.ScenarioResult`."""
        return cls(
            sim=scenario.sim,
            net=scenario.dumbbell.net,
            senders=dict(scenario.senders),
        )

    def link(self, name: str) -> Link:
        try:
            return self.net.links[name]
        except KeyError:
            raise TopologyError(f"fault plan targets unknown link {name!r}") from None

    def links_of(self, node: str) -> List[Link]:
        """Every link into or out of ``node``."""
        if node not in self.net.nodes:
            raise TopologyError(f"fault plan targets unknown node {node!r}")
        prefix, suffix = f"{node}->", f"->{node}"
        return [
            link
            for name, link in self.net.links.items()
            if name.startswith(prefix) or name.endswith(suffix)
        ]

    def add_loss(self, link: Link, module: LossModule) -> None:
        """Compose ``module`` with whatever loss the link already has."""
        if isinstance(link.loss, NoLoss):
            link.loss = module
        elif isinstance(link.loss, Composite):
            link.loss.modules.append(module)
        else:
            link.loss = Composite(link.loss, module)

    def add_tamper(self, link: Link, tamperer: PacketTamperer) -> None:
        if link.tamper is None:
            link.tamper = tamperer
        elif isinstance(link.tamper, _TamperChain):
            link.tamper.tamperers.append(tamperer)
        else:
            link.tamper = _TamperChain(link.tamper, tamperer)


class FaultAction:
    """One declarative fault.  Subclasses are frozen dataclasses with
    an :meth:`install` wiring the fault into a built topology; ``rng``
    is this action's private stream, derived from the plan seed."""

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class LinkOutage(FaultAction):
    """The link goes dark for ``duration`` seconds at ``start``."""

    link: str
    start: float
    duration: float

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        ctx.link(self.link).schedule_outage(self.start, self.duration)

    def describe(self) -> str:
        return f"outage {self.link} [{self.start:.2f}s, +{self.duration:.2f}s]"


@dataclass(frozen=True)
class LinkFlap(FaultAction):
    """``count`` short outages of ``down`` seconds, ``up`` seconds
    apart — an unstable interface renegotiating."""

    link: str
    start: float
    count: int
    down: float
    up: float

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        if self.count < 1:
            raise ConfigurationError("flap count must be >= 1")
        link = ctx.link(self.link)
        t = self.start
        for _ in range(self.count):
            link.schedule_outage(t, self.down)
            t += self.down + self.up

    def describe(self) -> str:
        return (
            f"flap {self.link} x{self.count} from {self.start:.2f}s "
            f"({self.down:.2f}s down / {self.up:.2f}s up)"
        )


@dataclass(frozen=True)
class RouterBlackout(FaultAction):
    """Every link touching ``router`` goes dark — a rebooting gateway."""

    router: str
    start: float
    duration: float

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        links = ctx.links_of(self.router)
        if not links:
            raise TopologyError(f"router {self.router!r} has no links to black out")
        for link in links:
            link.schedule_outage(self.start, self.duration)

    def describe(self) -> str:
        return f"blackout {self.router} [{self.start:.2f}s, +{self.duration:.2f}s]"


@dataclass(frozen=True)
class AckLossEpisode(FaultAction):
    """i.i.d. ACK loss on a (reverse-path) link within a window."""

    link: str
    rate: float
    start: float = 0.0
    end: Optional[float] = None

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        module = WindowedLoss(
            ctx.sim, AckLoss(rate=self.rate, rng=rng), start=self.start, end=self.end
        )
        ctx.add_loss(ctx.link(self.link), module)

    def describe(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.2f}s"
        return f"ack-loss {self.link} p={self.rate:.3f} [{self.start:.2f}s, {end})"


@dataclass(frozen=True)
class PacketDuplication(FaultAction):
    """Duplicate data packets on a link within a window."""

    link: str
    rate: float
    start: float = 0.0
    end: Optional[float] = None

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        ctx.add_tamper(
            ctx.link(self.link),
            PacketTamperer(
                ctx.sim, rng, duplicate_rate=self.rate, start=self.start, end=self.end
            ),
        )

    def describe(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.2f}s"
        return f"duplicate {self.link} p={self.rate:.3f} [{self.start:.2f}s, {end})"


@dataclass(frozen=True)
class PacketCorruption(FaultAction):
    """Corrupt (checksum-drop) data packets on a link within a window."""

    link: str
    rate: float
    start: float = 0.0
    end: Optional[float] = None

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        ctx.add_tamper(
            ctx.link(self.link),
            PacketTamperer(
                ctx.sim, rng, corrupt_rate=self.rate, start=self.start, end=self.end
            ),
        )

    def describe(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.2f}s"
        return f"corrupt {self.link} p={self.rate:.3f} [{self.start:.2f}s, {end})"


@dataclass(frozen=True)
class BurstLossEpisode(FaultAction):
    """A Gilbert-Elliott bursty channel on a link for a bounded window."""

    link: str
    start: float
    end: float
    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.3
    p_bad: float = 0.5

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        inner = GilbertElliott(
            rng,
            p_good_to_bad=self.p_good_to_bad,
            p_bad_to_good=self.p_bad_to_good,
            p_bad=self.p_bad,
        )
        ctx.add_loss(
            ctx.link(self.link),
            WindowedLoss(ctx.sim, inner, start=self.start, end=self.end),
        )

    def describe(self) -> str:
        return (
            f"burst-loss {self.link} [{self.start:.2f}s, {self.end:.2f}s) "
            f"g→b={self.p_good_to_bad:.3f} b→g={self.p_bad_to_good:.3f} "
            f"p_bad={self.p_bad:.2f}"
        )


@dataclass(frozen=True)
class PeriodicDropEpisode(FaultAction):
    """Every ``period``-th first-transmission data packet dropped,
    within a window."""

    link: str
    period: int
    start: float = 0.0
    end: Optional[float] = None

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        ctx.add_loss(
            ctx.link(self.link),
            WindowedLoss(ctx.sim, PeriodicLoss(self.period), start=self.start, end=self.end),
        )

    def describe(self) -> str:
        end = "∞" if self.end is None else f"{self.end:.2f}s"
        return f"periodic-drop {self.link} 1/{self.period} [{self.start:.2f}s, {end})"


@dataclass(frozen=True)
class TimerSkew(FaultAction):
    """Scale the RTO timer granularity of every sender (or one flow):
    coarse, skewed retransmission clocks."""

    factor: float
    flow_id: Optional[int] = None

    def install(self, ctx: FaultContext, rng: RngStream) -> None:
        if self.factor <= 0:
            raise ConfigurationError("timer skew factor must be > 0")
        for flow_id, sender in ctx.senders.items():
            if self.flow_id is not None and flow_id != self.flow_id:
                continue
            sender.set_timer_granularity(sender.timer_granularity * self.factor)

    def describe(self) -> str:
        scope = "all flows" if self.flow_id is None else f"flow {self.flow_id}"
        return f"timer-skew x{self.factor:.2f} ({scope})"


@dataclass
class FaultPlan:
    """A seeded, composable schedule of fault actions.

    ``seed`` drives every stochastic action through per-action derived
    streams; two installs of the same plan are bit-identical, and
    actions never share randomness (adding one cannot perturb another).
    """

    seed: int
    actions: List[FaultAction] = field(default_factory=list)
    name: str = "plan"

    def add(self, action: FaultAction) -> "FaultPlan":
        """Append an action (fluent)."""
        self.actions.append(action)
        return self

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans; the left plan's seed and name win."""
        return FaultPlan(
            seed=self.seed,
            actions=list(self.actions) + list(other.actions),
            name=self.name,
        )

    def __len__(self) -> int:
        return len(self.actions)

    def install(self, ctx: FaultContext) -> None:
        """Wire every action into the built topology."""
        for index, action in enumerate(self.actions):
            rng = RngStream(
                self.seed, f"{self.name}/{index}/{type(action).__name__}"
            )
            action.install(ctx, rng)

    def install_on(self, scenario) -> None:
        """Convenience: install onto a ScenarioResult."""
        self.install(FaultContext.from_scenario(scenario))

    def describe(self) -> str:
        lines = [f"fault plan {self.name!r} (seed {self.seed}, {len(self.actions)} actions)"]
        for action in self.actions:
            lines.append(f"  - {action.describe()}")
        return "\n".join(lines)
