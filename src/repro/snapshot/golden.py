"""Golden-state regression scenarios.

One fixed scenario per TCP variant — the paper's Figure-5 world with a
deterministic 3-drop burst — checkpointed at fixed simulation times
that bracket the recovery episode: before the loss (slow-start), during
recovery, and after the transfer settles back into congestion
avoidance.  The canonical state digests at those instants are committed
in ``tests/golden/state_digests.json``; any behavioral drift in a
variant (a changed cwnd trajectory, a different retransmit order, an
RR ``actnum`` bookkeeping tweak) flips a digest and fails the test
with a per-section state diff, not just a throughput delta.

Regenerate the committed file after an *intentional* behavior change
with ``python scripts/update_golden.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import TcpConfig
from repro.net.loss import DeterministicLoss
from repro.net.packet import set_uid_state
from repro.net.topology import DumbbellParams
from repro.snapshot.digest import state_digest

#: Every variant the factory knows, in canonical order.
GOLDEN_VARIANTS: Tuple[str, ...] = ("tahoe", "reno", "newreno", "sack", "rr")

#: Simulation times (seconds) the digests are taken at: slow-start,
#: mid/late recovery, and post-recovery congestion avoidance.
CHECKPOINT_TIMES: Tuple[float, ...] = (2.0, 6.0, 12.0)

#: Scenario constants (a small Figure-5 cell: one flow, 3-drop burst).
TRANSFER_PACKETS = 300
FIRST_DROP_SEQ = 100
N_DROPS = 3


def build_golden_scenario(variant: str):
    """The fixed world the golden digests are taken from (a
    :class:`~repro.experiments.common.ScenarioResult`).

    Resets the global packet-uid counter first, so the scenario is
    reproducible regardless of what the calling process simulated
    before.
    """
    # Imported lazily: repro.runner -> SnapshotStore -> repro.snapshot
    # must not drag the experiment harnesses (which import repro.runner)
    # into every runner import.
    from repro.experiments.common import FlowSpec, build_dumbbell_scenario

    set_uid_state(1)
    drops = [(1, FIRST_DROP_SEQ + i) for i in range(N_DROPS)]
    return build_dumbbell_scenario(
        flows=[FlowSpec(variant=variant, amount_packets=TRANSFER_PACKETS)],
        params=DumbbellParams(n_pairs=1, buffer_packets=25),
        default_config=TcpConfig(receiver_window=64, initial_ssthresh=20.0),
        forward_loss=DeterministicLoss(drops),
    )


def golden_digests(variant: str) -> Dict[str, str]:
    """Run the golden scenario, digesting at each checkpoint time."""
    scenario = build_golden_scenario(variant)
    digests: Dict[str, str] = {}
    for t in CHECKPOINT_TIMES:
        scenario.sim.run(until=t)
        digests[f"t={t:g}"] = state_digest(scenario)
    return digests


def all_golden_digests() -> Dict[str, Dict[str, str]]:
    """``{variant: {checkpoint: digest}}`` for every golden variant."""
    return {variant: golden_digests(variant) for variant in GOLDEN_VARIANTS}
