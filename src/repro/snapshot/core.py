"""Capture / restore / fork of live simulation worlds.

A :class:`Snapshot` freezes everything a continuation needs:

* the pickled object graph reachable from the *world* (the simulator —
  clock, serial counter, pending events — plus whatever the world
  object references: network, TCP agents, apps, observers, RNG
  streams);
* the module-global packet-uid counter (:func:`repro.net.packet.
  uid_state`), which lives outside any one world but feeds every
  packet the continuation will mint;
* a canonical state digest (:func:`repro.snapshot.digest.state_digest`)
  recorded at capture time, re-checked on restore so a corrupted or
  drifted payload fails loudly instead of silently diverging.

The correctness contract is **bit-identical continuation**: for any
world ``w`` at time T, ``Snapshot.capture(w).restore()`` run to the end
produces the same trace, FlowStats series and final state digest as
``w`` run to the end uninterrupted.  Capture itself never perturbs the
world (it only reads).

Since format 2 the payload is *sectioned*: one :class:`pickle.Pickler`
(so the memo — and therefore cross-section object identity — is
shared) emits a sequence of named dumps, and the header records each
section's byte length.  Unpickling the concatenation through a single
:class:`pickle.Unpickler` reconstructs the identical graph, so
sectioning changes the byte layout but never the semantics.  The point
of the exercise is :mod:`repro.snapshot.delta`: two snapshots of
near-identical worlds (a warm prefix and a reprogrammed per-cell fork,
a crash point and its triage forks) share most sections byte for byte,
and a delta stores only what changed.

One sharp edge follows from the packet-uid counter being process
global: *restoring rewinds it.*  After a restore, the original world
object — if you kept it — would mint uids the continuation is also
minting.  Treat restore as a fork point: run the original to wherever
you need **before** restoring, or use :meth:`Snapshot.fork` which makes
the pattern explicit.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SnapshotError, SnapshotFormatError
from repro.net.packet import drain_packet_pool, set_uid_state, uid_state
from repro.sim.engine import Simulator
from repro.snapshot.digest import state_digest


def payload_checksum(payload: bytes) -> str:
    """Cheap integrity checksum over the raw payload bytes (recorded in
    the header, verified on load — catches truncation and bit flips
    without paying for an unpickle or a state-digest recompute)."""
    return hashlib.blake2b(payload, digest_size=32).hexdigest()

#: On-disk format version (bump on incompatible layout changes).
#: 1 — single ``{"world", "uid_next"}`` pickle; 2 — sectioned payload
#: (shared-memo multi-dump stream + section table in the header).
SNAPSHOT_FORMAT = 2

_MAGIC = "repro-snapshot"

#: Section holding the packet-uid counter (always first).
UID_SECTION = "__uid__"

#: Section holding the world object itself (always last).  Pickled
#: after the attribute sections, it resolves almost entirely to memo
#: references — the attribute sections carry the actual object graph.
WORLD_SECTION = "__world__"

#: Preferred order of world attributes in the section stream: stable,
#: data-heavy attributes first so a per-cell fork's delta (which
#: mutates link/loss state) shares the longest possible byte prefix
#: with its base snapshot.  Attributes not listed follow in the
#: world's own ``__dict__`` order.
_SECTION_ORDER = ("stats", "receivers", "sources", "senders", "dumbbell", "sim")


@dataclass(frozen=True)
class SnapshotInfo:
    """Cheap-to-read metadata, stored as a JSON header line on disk."""

    digest: str
    sim_time: float
    events_processed: int
    label: str
    format: int = SNAPSHOT_FORMAT
    #: ``(name, nbytes)`` per payload section, in stream order.
    sections: Tuple[Tuple[str, int], ...] = ()
    #: blake2b over the payload bytes; empty on files written before
    #: the integrity layer (then only the state-digest check applies).
    checksum: str = ""


def _default_getstate(cls: type):
    """The inherited-from-object ``__getstate__`` (absent before 3.11)."""
    return getattr(cls, "__getstate__", None)


_OBJECT_GETSTATE = getattr(object, "__getstate__", None)


def _sectionable(world: Any) -> bool:
    """True when ``world``'s attributes can be pickled as individual
    sections: a plain ``__dict__`` carrier with no custom pickling
    protocol (a dataclass like ``ScenarioResult``).  Anything with a
    custom ``__getstate__``/``__reduce__`` (e.g. a bare
    :class:`Simulator`) is stored as a single world section instead —
    its canonicalization must run exactly once, at first reach."""
    cls = type(world)
    if getattr(cls, "__reduce__", None) is not object.__reduce__:
        return False
    if getattr(cls, "__reduce_ex__", None) is not object.__reduce_ex__:
        return False
    if _default_getstate(cls) is not _OBJECT_GETSTATE:
        return False
    if getattr(cls, "__setstate__", None) is not None:
        return False
    state = getattr(world, "__dict__", None)
    return isinstance(state, dict) and bool(state)


def _section_items(world: Any) -> List[Tuple[str, Any]]:
    """The ``(name, value)`` attribute sections for ``world`` (may be
    empty), ordered stable-first per ``_SECTION_ORDER``."""
    if not _sectionable(world):
        return []
    state: Dict[str, Any] = world.__dict__
    ordered = [name for name in _SECTION_ORDER if name in state]
    ordered += [name for name in state if name not in _SECTION_ORDER]
    return [(f"attr:{name}", state[name]) for name in ordered]


class Snapshot:
    """One frozen world.  Build with :meth:`capture` or :meth:`load`."""

    def __init__(self, payload: bytes, info: SnapshotInfo):
        self._payload = payload
        self.info = info

    # -- convenience accessors -----------------------------------------
    @property
    def digest(self) -> str:
        return self.info.digest

    @property
    def sim_time(self) -> float:
        return self.info.sim_time

    @property
    def nbytes(self) -> int:
        return len(self._payload)

    @property
    def payload(self) -> bytes:
        """The raw sectioned pickle stream (the delta layer diffs it)."""
        return self._payload

    def section_bytes(self) -> Dict[str, bytes]:
        """Per-section payload slices, in stream order."""
        out: Dict[str, bytes] = {}
        offset = 0
        for name, nbytes in self.info.sections:
            out[name] = self._payload[offset : offset + nbytes]
            offset += nbytes
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot(t={self.info.sim_time:.3f}, "
            f"digest={self.info.digest[:12]}…, {self.nbytes} bytes)"
        )

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, world: Any, label: str = "") -> "Snapshot":
        """Freeze ``world`` (anything holding a ``sim`` attribute, or a
        bare :class:`Simulator`).

        Raises :class:`SnapshotError` when the engine is inside
        :meth:`~repro.sim.engine.Simulator.run` (capture between
        events, e.g. after ``run(until=T)`` returns) or when part of
        the world is unpicklable (a closure in a scheduled event — use
        named callables).
        """
        sim = cls._find_sim(world)
        if sim._running:
            raise SnapshotError(
                "cannot capture while the engine is running; capture between "
                "run() calls (e.g. after sim.run(until=T) returns)"
            )
        # Drain the object pools first.  Pooled packets/events are dead
        # by construction (refcount-gated recycling), but emptying the
        # free lists guarantees the pickled graph can never reach one
        # and that a restored world resumes from the same (empty-pool)
        # allocator state as the uninterrupted original.
        drain_packet_pool()
        sim.drain_event_pool()
        digest = state_digest(world)
        stream = io.BytesIO()
        pickler = pickle.Pickler(stream, protocol=pickle.HIGHEST_PROTOCOL)
        sections: List[Tuple[str, int]] = []

        def dump(name: str, value: Any) -> None:
            start = stream.tell()
            pickler.dump(value)
            sections.append((name, stream.tell() - start))

        try:
            dump(UID_SECTION, uid_state())
            for name, value in _section_items(world):
                dump(name, value)
            dump(WORLD_SECTION, world)
        except Exception as exc:
            raise SnapshotError(
                f"world is not picklable: {type(exc).__name__}: {exc} "
                "(closures in scheduled events or callbacks are the usual "
                "culprit — use named callables)"
            ) from exc
        payload = stream.getvalue()
        info = SnapshotInfo(
            digest=digest,
            sim_time=sim.now,
            events_processed=sim.events_processed,
            label=label,
            sections=tuple(sections),
            checksum=payload_checksum(payload),
        )
        return cls(payload, info)

    @staticmethod
    def _find_sim(world: Any) -> Simulator:
        if isinstance(world, Simulator):
            return world
        sim = getattr(world, "sim", None)
        if isinstance(sim, Simulator):
            return sim
        raise SnapshotError(
            f"cannot locate a Simulator on {type(world).__name__!r}: pass the "
            "simulator itself or an object exposing it as `.sim`"
        )

    # ------------------------------------------------------------------
    # restore / fork
    # ------------------------------------------------------------------
    def _unpickle(self) -> Dict[str, Any]:
        """Load every section through one unpickler (shared memo)."""
        stream = io.BytesIO(self._payload)
        unpickler = pickle.Unpickler(stream)
        values: Dict[str, Any] = {}
        try:
            for name, _ in self.info.sections:
                values[name] = unpickler.load()
        except Exception as exc:
            raise SnapshotError(f"snapshot payload does not unpickle: {exc}") from exc
        if UID_SECTION not in values or WORLD_SECTION not in values:
            raise SnapshotError(
                "snapshot payload is missing its uid/world sections — "
                "truncated file or header drift"
            )
        return values

    def restore(self, verify: bool = True) -> Any:
        """Materialize an independent copy of the captured world.

        Also rewinds the process-global packet-uid counter to its
        captured position, so the continuation mints the same uids the
        uninterrupted run would (see the module docstring for the
        consequence: don't keep running the *original* world after a
        restore).

        With ``verify`` (the default) the restored world's state digest
        is recomputed and checked against the captured one.
        """
        if self.info.format != SNAPSHOT_FORMAT:
            raise SnapshotFormatError(
                f"snapshot format {self.info.format} is not supported "
                f"(this build reads format {SNAPSHOT_FORMAT})"
            )
        values = self._unpickle()
        world = values[WORLD_SECTION]
        if verify:
            digest = state_digest(world)
            if digest != self.info.digest:
                raise SnapshotError(
                    f"restored state digest {digest[:12]}… does not match "
                    f"captured {self.info.digest[:12]}… — payload corrupted "
                    "or digest encoding drifted"
                )
        set_uid_state(values[UID_SECTION])
        return world

    @property
    def uid_next(self) -> int:
        """The captured packet-uid position (what :meth:`restore` rewinds
        to).  Exposed so in-process forks can re-rewind between runs."""
        # The uid section is always first, so one load suffices.
        return pickle.Unpickler(io.BytesIO(self._payload)).load()

    def fork(
        self,
        n: int,
        mutate: Optional[Callable[[Any, int], Any]] = None,
        verify: bool = False,
    ) -> List[Any]:
        """Branch the frozen world into ``n`` independent continuations.

        Each fork is a separate :meth:`restore`; ``mutate(world, i)``
        (when given) edits fork ``i`` in place before it is returned —
        reprogram a loss module, swap a fault plan, change a variant
        knob.  Runs that must be bit-identical to each other should call
        :func:`repro.net.packet.set_uid_state(snapshot.uid_next)
        <repro.net.packet.set_uid_state>` before running each fork in
        the same process (restore leaves the counter positioned for the
        *last* fork restored; worker processes each restore exactly one
        fork, so the fan-out path needs no such care).
        """
        if n < 1:
            raise SnapshotError(f"fork count must be >= 1, got {n}")
        worlds = []
        for index in range(n):
            world = self.restore(verify=verify)
            if mutate is not None:
                mutated = mutate(world, index)
                if mutated is not None:
                    world = mutated
            worlds.append(world)
        return worlds

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write ``<JSON header line>\\n<pickle payload>`` to ``path``."""
        path = Path(path)
        header = {"magic": _MAGIC, **asdict(self.info)}
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            fh.write(b"\n")
            fh.write(self._payload)
        return path

    @classmethod
    def load(cls, path, verify_checksum: bool = True) -> "Snapshot":
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        info = cls._parse_header(path, header_line)
        if verify_checksum and info.checksum:
            actual = payload_checksum(payload)
            if actual != info.checksum:
                raise SnapshotError(
                    f"{path} payload checksum mismatch "
                    f"({actual[:12]}… != recorded {info.checksum[:12]}…) — "
                    "truncated or bit-flipped snapshot"
                )
        return cls(payload, info)

    @staticmethod
    def verify_file(path) -> SnapshotInfo:
        """Integrity-check a snapshot file without unpickling anything.

        Parses the header (raising :class:`~repro.errors.
        SnapshotFormatError` on a foreign format), re-hashes the
        payload against the recorded checksum, and cross-checks the
        section table against the payload length.  Returns the header
        info on success; raises :class:`~repro.errors.SnapshotError`
        on corruption.  This is the ``fsck`` primitive.
        """
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        info = Snapshot._parse_header(path, header_line)
        if info.checksum:
            actual = payload_checksum(payload)
            if actual != info.checksum:
                raise SnapshotError(
                    f"{path} payload checksum mismatch — truncated or "
                    "bit-flipped snapshot"
                )
        expected = sum(nbytes for _, nbytes in info.sections)
        if info.sections and expected != len(payload):
            raise SnapshotError(
                f"{path} payload is {len(payload)} bytes but the section "
                f"table sums to {expected} — truncated snapshot"
            )
        return info

    @staticmethod
    def read_info(path) -> SnapshotInfo:
        """Header metadata without loading the payload."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        return Snapshot._parse_header(path, header_line)

    @staticmethod
    def _parse_header(path: Path, header_line: bytes) -> SnapshotInfo:
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path} is not a snapshot file") from exc
        if header.get("magic") != _MAGIC:
            raise SnapshotError(f"{path} is not a snapshot file (bad magic)")
        fmt = header.get("format", -1)
        if fmt != SNAPSHOT_FORMAT:
            raise SnapshotFormatError(
                f"{path} has snapshot format {fmt}; this build reads "
                f"format {SNAPSHOT_FORMAT}"
            )
        try:
            return SnapshotInfo(
                digest=header["digest"],
                sim_time=header["sim_time"],
                events_processed=header["events_processed"],
                label=header.get("label", ""),
                format=fmt,
                sections=tuple(
                    (str(name), int(nbytes))
                    for name, nbytes in header.get("sections", [])
                ),
                checksum=header.get("checksum", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} has a malformed snapshot header: {exc!r}"
            ) from exc
