"""Delta snapshots: store a fork as a diff against its base.

A warm-started sweep forks one captured prefix into many per-cell
worlds, and chaos triage forks one crash point twice; serializing each
fork in full repeats megabytes the base snapshot already stores.  A
:class:`DeltaSnapshot` records, per payload section (see
:mod:`repro.snapshot.core`), either

* ``"="`` — byte-identical to the base's section of the same name,
* ``"~"`` — a block-level diff against the base section (rsync-style
  rolling weak hash + strong hash, copy/literal opcodes), or
* ``"+"`` — literal bytes (new section, or a diff that saved nothing).

:meth:`DeltaSnapshot.rebuild` reconstructs the target payload **bit
identically** — the restored world passes the same state-digest check
a full snapshot does, and the target's own digest is stored so rebuild
verifies itself structurally before any unpickling happens.

Per-cell forks mutate late-stream state (a loss module, a sender's
timer), so with the stable-first section ordering of format 2 the
early sections are byte-identical and the changed tail mostly consists
of shifted memo references that the block diff re-anchors.  When the
worlds genuinely diverge the delta grows past the full payload and the
caller — see :meth:`repro.runner.warmstart.SnapshotStore.put_delta` —
falls back to storing the full snapshot instead; :func:`should_fall_back`
is the single place that policy lives.
"""

from __future__ import annotations

import hashlib
import io
import json
import zlib
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import SnapshotError, SnapshotFormatError
from repro.snapshot.core import Snapshot, SnapshotInfo, payload_checksum

#: On-disk delta format version (bump on incompatible layout changes).
DELTA_FORMAT = 1

_MAGIC = "repro-snapshot-delta"

#: Block size of the rolling diff.  Small enough that one mutated
#: object invalidates little context, large enough that the opcode
#: table stays a sliver of the payload.
BLOCK_SIZE = 1024

_MOD = 65521  # largest prime < 2**16 (adler-style weak hash)


def _weak_hash(block: bytes) -> int:
    return zlib.adler32(block) & 0xFFFFFFFF


def _strong_hash(block: bytes) -> bytes:
    return hashlib.blake2b(block, digest_size=16).digest()


def _block_diff(base: bytes, target: bytes) -> List[Tuple]:
    """rsync in miniature: copy/literal opcodes turning ``base`` into
    ``target``.

    ``base`` is split into non-overlapping :data:`BLOCK_SIZE` blocks
    and indexed by (weak, strong) hash; ``target`` is scanned with a
    rolling weak hash so matches survive arbitrary byte shifts (pickle
    memo renumbering shifts every later reference).  Adjacent copies of
    adjacent base blocks coalesce.

    Returns ``[("c", base_offset, length), ("l", bytes), ...]``.
    """
    n = len(target)
    if not base or n < BLOCK_SIZE:
        return [("l", target)] if target else []
    index: Dict[int, List[Tuple[bytes, int]]] = {}
    for offset in range(0, len(base) - BLOCK_SIZE + 1, BLOCK_SIZE):
        block = base[offset : offset + BLOCK_SIZE]
        index.setdefault(_weak_hash(block), []).append((_strong_hash(block), offset))

    ops: List[Tuple] = []
    literal_start = 0

    def flush_literal(end: int) -> None:
        if end > literal_start:
            ops.append(("l", target[literal_start:end]))

    pos = 0
    weak: Optional[int] = None  # rolling adler over target[pos:pos+BLOCK_SIZE]
    a = b = 0
    while pos + BLOCK_SIZE <= n:
        if weak is None:
            window = target[pos : pos + BLOCK_SIZE]
            weak = zlib.adler32(window) & 0xFFFFFFFF
            a = weak & 0xFFFF
            b = (weak >> 16) & 0xFFFF
        candidates = index.get(weak)
        matched = None
        if candidates:
            strong = _strong_hash(target[pos : pos + BLOCK_SIZE])
            for cand_strong, cand_offset in candidates:
                if cand_strong == strong:
                    matched = cand_offset
                    break
        if matched is not None:
            flush_literal(pos)
            if (
                ops
                and ops[-1][0] == "c"
                and ops[-1][1] + ops[-1][2] == matched
            ):
                ops[-1] = ("c", ops[-1][1], ops[-1][2] + BLOCK_SIZE)
            else:
                ops.append(("c", matched, BLOCK_SIZE))
            pos += BLOCK_SIZE
            literal_start = pos
            weak = None
        else:
            # Roll the weak hash one byte forward.
            out_byte = target[pos]
            a = (a - out_byte) % _MOD
            b = (b - BLOCK_SIZE * out_byte - 1) % _MOD
            if pos + BLOCK_SIZE < n:
                in_byte = target[pos + BLOCK_SIZE]
                a = (a + in_byte) % _MOD
                b = (b + a) % _MOD
                weak = (b << 16) | a
            else:
                weak = None
            pos += 1
    flush_literal(n)
    return ops


def _apply_ops(base: bytes, ops: List[Tuple]) -> bytes:
    out = io.BytesIO()
    for op in ops:
        if op[0] == "c":
            _, offset, length = op
            if offset < 0 or offset + length > len(base):
                raise SnapshotError(
                    "delta copy op reaches outside the base section — "
                    "wrong base snapshot for this delta"
                )
            out.write(base[offset : offset + length])
        elif op[0] == "l":
            out.write(op[1])
        else:  # pragma: no cover - format guard
            raise SnapshotError(f"unknown delta opcode {op[0]!r}")
    return out.getvalue()


def _ops_size(ops: List[Tuple]) -> int:
    """Stored size: literal bytes plus a small fixed cost per opcode."""
    size = 0
    for op in ops:
        size += 16 if op[0] == "c" else len(op[1]) + 8
    return size


@dataclass(frozen=True)
class DeltaInfo:
    """Header of a delta file: enough to resolve and verify a rebuild."""

    digest: str            # target snapshot's state digest
    base_digest: str       # base snapshot's state digest
    sim_time: float
    events_processed: int
    label: str
    format: int = DELTA_FORMAT
    sections: Tuple[Tuple[str, int], ...] = ()  # target section table
    #: blake2b over the stored body (the concatenated literal bytes);
    #: empty on files written before the integrity layer.
    checksum: str = ""


class DeltaSnapshot:
    """A snapshot encoded as a per-section diff against a base.

    ``plan`` maps section name -> ``("=",)`` | ``("~", ops)`` |
    ``("+", bytes)``; the target's section table (in :attr:`info`)
    fixes reassembly order and lengths.
    """

    def __init__(self, info: DeltaInfo, plan: Dict[str, Tuple]):
        self.info = info
        self.plan = plan

    # ------------------------------------------------------------------
    # diff / rebuild
    # ------------------------------------------------------------------
    @classmethod
    def diff(cls, snapshot: Snapshot, base: Snapshot) -> "DeltaSnapshot":
        """Encode ``snapshot`` as a delta against ``base``."""
        if snapshot.info.format != base.info.format:
            raise SnapshotError(
                "cannot diff snapshots of different formats "
                f"({snapshot.info.format} vs {base.info.format})"
            )
        base_sections = base.section_bytes()
        plan: Dict[str, Tuple] = {}
        for name, data in snapshot.section_bytes().items():
            base_data = base_sections.get(name)
            if base_data == data:
                plan[name] = ("=",)
            elif base_data:
                ops = _block_diff(base_data, data)
                if _ops_size(ops) < len(data):
                    plan[name] = ("~", ops)
                else:
                    plan[name] = ("+", data)
            else:
                plan[name] = ("+", data)
        info = DeltaInfo(
            digest=snapshot.info.digest,
            base_digest=base.info.digest,
            sim_time=snapshot.info.sim_time,
            events_processed=snapshot.info.events_processed,
            label=snapshot.info.label,
            sections=snapshot.info.sections,
        )
        return cls(info, plan)

    def rebuild(self, base: Snapshot) -> Snapshot:
        """Reconstruct the full target snapshot, bit-identically."""
        if base.info.digest != self.info.base_digest:
            raise SnapshotError(
                f"delta expects base {self.info.base_digest[:12]}…, got "
                f"{base.info.digest[:12]}…"
            )
        base_sections = base.section_bytes()
        payload = io.BytesIO()
        for name, nbytes in self.info.sections:
            entry = self.plan.get(name)
            if entry is None:
                raise SnapshotError(f"delta is missing section {name!r}")
            if entry[0] == "=":
                data = base_sections.get(name)
                if data is None:
                    raise SnapshotError(
                        f"delta references base section {name!r} which the "
                        "base snapshot does not have"
                    )
            elif entry[0] == "~":
                data = _apply_ops(base_sections.get(name, b""), entry[1])
            else:
                data = entry[1]
            if len(data) != nbytes:
                raise SnapshotError(
                    f"rebuilt section {name!r} is {len(data)} bytes, header "
                    f"says {nbytes} — wrong base snapshot for this delta"
                )
            payload.write(data)
        data = payload.getvalue()
        info = SnapshotInfo(
            digest=self.info.digest,
            sim_time=self.info.sim_time,
            events_processed=self.info.events_processed,
            label=self.info.label,
            sections=self.info.sections,
            checksum=payload_checksum(data),
        )
        return Snapshot(data, info)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Approximate stored size (the fallback comparison input)."""
        size = 0
        for entry in self.plan.values():
            if entry[0] == "~":
                size += _ops_size(entry[1])
            elif entry[0] == "+":
                size += len(entry[1])
        return size

    @property
    def changed_sections(self) -> List[str]:
        return [name for name, entry in self.plan.items() if entry[0] != "="]

    # ------------------------------------------------------------------
    # persistence: <JSON header>\n<concatenated literal bytes>
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        path = Path(path)
        body = io.BytesIO()
        sections_meta = []
        for name, entry in self.plan.items():
            if entry[0] == "=":
                sections_meta.append([name, "=", 0, None])
            elif entry[0] == "~":
                ops_meta = []
                for op in entry[1]:
                    if op[0] == "c":
                        ops_meta.append(["c", op[1], op[2]])
                    else:
                        ops_meta.append(["l", len(op[1])])
                        body.write(op[1])
                sections_meta.append([name, "~", 0, ops_meta])
            else:
                sections_meta.append([name, "+", len(entry[1]), None])
                body.write(entry[1])
        body_bytes = body.getvalue()
        # Stamp the body checksum on the in-memory info too, so a saved
        # delta's info equals its re-loaded info.
        self.info = replace(self.info, checksum=payload_checksum(body_bytes))
        header = {
            "magic": _MAGIC,
            **asdict(self.info),
            "plan": sections_meta,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            fh.write(b"\n")
            fh.write(body_bytes)
        return path

    @classmethod
    def load(cls, path, verify_checksum: bool = True) -> "DeltaSnapshot":
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                body = fh.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read delta snapshot {path}: {exc}") from exc
        header = cls._parse_header(path, header_line)
        info = cls._info_from_header(path, header)
        if verify_checksum and info.checksum:
            actual = payload_checksum(body)
            if actual != info.checksum:
                raise SnapshotError(
                    f"{path} delta body checksum mismatch — truncated or "
                    "bit-flipped delta"
                )
        plan: Dict[str, Tuple] = {}
        offset = 0
        try:
            for name, kind, nbytes, ops_meta in header["plan"]:
                if kind == "=":
                    plan[name] = ("=",)
                elif kind == "~":
                    ops: List[Tuple] = []
                    for op in ops_meta:
                        if op[0] == "c":
                            ops.append(("c", int(op[1]), int(op[2])))
                        else:
                            length = int(op[1])
                            if offset + length > len(body):
                                raise SnapshotError(
                                    f"{path} delta body is shorter than its "
                                    "opcode table claims — truncated delta"
                                )
                            ops.append(("l", body[offset : offset + length]))
                            offset += length
                    plan[name] = ("~", ops)
                else:
                    if offset + int(nbytes) > len(body):
                        raise SnapshotError(
                            f"{path} delta body is shorter than its section "
                            "table claims — truncated delta"
                        )
                    plan[name] = ("+", body[offset : offset + int(nbytes)])
                    offset += int(nbytes)
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} has a malformed delta plan: {exc!r}"
            ) from exc
        return cls(info, plan)

    @staticmethod
    def _info_from_header(path: Path, header: dict) -> DeltaInfo:
        try:
            return DeltaInfo(
                digest=header["digest"],
                base_digest=header["base_digest"],
                sim_time=header["sim_time"],
                events_processed=header["events_processed"],
                label=header.get("label", ""),
                format=header["format"],
                sections=tuple(
                    (str(name), int(nbytes))
                    for name, nbytes in header.get("sections", [])
                ),
                checksum=header.get("checksum", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} has a malformed delta header: {exc!r}"
            ) from exc

    @staticmethod
    def verify_file(path) -> DeltaInfo:
        """Integrity-check a delta file: header parse (raising
        :class:`~repro.errors.SnapshotFormatError` on a foreign
        format), body checksum, and full plan decode.  Returns the
        header info; raises :class:`~repro.errors.SnapshotError` on
        corruption.  Base-chain resolvability is the store's concern
        (:meth:`repro.runner.warmstart.SnapshotStore.intact`)."""
        delta = DeltaSnapshot.load(path)
        return delta.info

    @staticmethod
    def read_info(path) -> DeltaInfo:
        """Header metadata without loading the body."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
        except OSError as exc:
            raise SnapshotError(f"cannot read delta snapshot {path}: {exc}") from exc
        header = DeltaSnapshot._parse_header(path, header_line)
        return DeltaSnapshot._info_from_header(path, header)

    @staticmethod
    def _parse_header(path: Path, header_line: bytes) -> dict:
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path} is not a delta snapshot file") from exc
        if header.get("magic") != _MAGIC:
            raise SnapshotError(f"{path} is not a delta snapshot file (bad magic)")
        fmt = header.get("format", -1)
        if fmt != DELTA_FORMAT:
            raise SnapshotFormatError(
                f"{path} has delta format {fmt}; this build reads "
                f"format {DELTA_FORMAT}"
            )
        return header


def should_fall_back(delta: DeltaSnapshot, snapshot: Snapshot) -> bool:
    """True when storing ``delta`` would not beat storing ``snapshot``
    in full (the store then writes a plain ``.snap`` instead)."""
    return delta.nbytes >= snapshot.nbytes
