"""Canonical state digests: a process-stable SHA-256 over a live world.

The digest is the snapshot subsystem's equality oracle.  Two worlds get
the same digest exactly when their *observable* simulation state is the
same — so "restore then continue" can be checked against "never
interrupted" with one string comparison, and a golden digest committed
to the repo detects any behavioral drift in a TCP variant.

Why not ``hashlib.sha256(pickle.dumps(world))``?  Pickle output is not
canonical: memo numbering depends on traversal incidentals, and
container layouts that are behaviorally irrelevant (heap array order
after a compaction, a lazily-built cache, set iteration order under a
different ``PYTHONHASHSEED``) would all perturb the hash.  Instead we
walk the object graph ourselves and feed a type-tagged canonical
encoding into the hash incrementally:

* dict entries are sorted when every key is primitive (insertion order
  otherwise — pickle preserves it, so it round-trips);
* set/frozenset elements are sorted by their own encoded bytes, which
  makes the digest independent of ``PYTHONHASHSEED``;
* floats are encoded via ``repr`` (shortest round-trip form, exact);
* shared objects and cycles are handled with an identity memo — the
  second visit encodes as a back-reference index, which is stable
  because the traversal order is itself canonical;
* objects encode as their type name plus ``__getstate__()``, so classes
  can canonicalize themselves (the engine stores its heap sorted and
  drops cancelled entries; the trace bus drops its merged-subscriber
  cache);
* ``random.Random`` encodes via ``getstate()``; bound methods encode as
  the function's qualified name plus a reference to ``__self__``;
  module-level functions and classes encode by qualified name.

The encoding is versioned (`DIGEST_VERSION`) — bump it whenever the
framing changes so stale golden digests fail loudly.
"""

from __future__ import annotations

import hashlib
import random
import types
from collections import defaultdict, deque
from enum import Enum
from typing import Any, Dict, List

from repro.errors import SnapshotError

#: Mixed into every digest; bump on any change to the framing below.
DIGEST_VERSION = 1


def state_digest(obj: Any) -> str:
    """Canonical SHA-256 hex digest of ``obj``'s state."""
    hasher = hashlib.sha256()
    hasher.update(f"repro-state-digest.v{DIGEST_VERSION}\x00".encode("ascii"))
    _Encoder(hasher).encode(obj)
    return hasher.hexdigest()


def state_fingerprints(obj: Any) -> Dict[str, str]:
    """Per-attribute digests of ``obj`` — the unit of a state *diff*.

    When a golden digest mismatches, diffing these against the golden
    run's fingerprints names the sections (sender, queue, stats, ...)
    that actually drifted instead of leaving one opaque hash.
    """
    state = getattr(obj, "__dict__", None)
    if state is None:
        try:
            state = obj.__getstate__()
        except Exception as exc:  # pragma: no cover - defensive
            raise SnapshotError(f"cannot fingerprint {type(obj).__name__}") from exc
        if isinstance(state, tuple):  # slots form: (dict_state, slots_state)
            merged: Dict[str, Any] = {}
            for part in state:
                if isinstance(part, dict):
                    merged.update(part)
            state = merged
    return {name: state_digest(value) for name, value in sorted(state.items())}


class _Encoder:
    """Streams a canonical encoding of an object graph into a hasher."""

    def __init__(self, sink) -> None:
        self._sink = sink
        self._memo: Dict[int, int] = {}
        # Encoded objects must stay alive for the whole walk or their
        # ids could be recycled and alias a later object in the memo.
        self._keepalive: List[Any] = []

    def _u(self, data: bytes) -> None:
        self._sink.update(data)

    def _tag(self, tag: str, payload: str = "") -> None:
        self._u(f"{tag}:{payload}\x00".encode("utf-8", "surrogatepass"))

    # ------------------------------------------------------------------
    def encode(self, obj: Any) -> None:
        # --- primitives: encoded by value, never memoized -------------
        if obj is None:
            self._tag("N")
        elif obj is True:
            self._tag("T")
        elif obj is False:
            self._tag("F")
        elif isinstance(obj, int):
            self._tag("I", repr(obj))
        elif isinstance(obj, float):
            self._tag("D", repr(obj))
        elif isinstance(obj, str):
            self._tag("S", f"{len(obj)}")
            self._u(obj.encode("utf-8", "surrogatepass"))
        elif isinstance(obj, (bytes, bytearray)):
            self._tag("B", f"{len(obj)}")
            self._u(bytes(obj))
        elif isinstance(obj, tuple):
            self._tag("U", f"{len(obj)}")
            for item in obj:
                self.encode(item)
        # --- shared/cyclic structures: memoized by identity -----------
        elif id(obj) in self._memo:
            self._tag("@", f"{self._memo[id(obj)]}")
        else:
            self._memo[id(obj)] = len(self._memo)
            self._keepalive.append(obj)
            self._encode_compound(obj)

    def _encode_compound(self, obj: Any) -> None:
        if isinstance(obj, list):
            self._tag("L", f"{len(obj)}")
            for item in obj:
                self.encode(item)
        elif isinstance(obj, deque):
            self._tag("Q", f"{len(obj)}/{obj.maxlen}")
            for item in obj:
                self.encode(item)
        elif isinstance(obj, defaultdict):
            self._tag("MD")
            self.encode(obj.default_factory)
            self._encode_dict(obj)
        elif isinstance(obj, dict):
            self._encode_dict(obj)
        elif isinstance(obj, (set, frozenset)):
            # Sort by each element's own canonical bytes: stable across
            # processes regardless of PYTHONHASHSEED.  Elements are
            # encoded with a fresh memo (their bytes must not depend on
            # what the outer walk has already seen).
            encoded = []
            for item in obj:
                accum = _Accumulator()
                _Encoder(accum).encode(item)
                encoded.append(bytes(accum.data))
            self._tag("E", f"{len(obj)}")
            for blob in sorted(encoded):
                self._u(blob)
        elif isinstance(obj, Enum):
            self._tag("G", f"{_qualname(type(obj))}.{obj.name}")
        elif isinstance(obj, random.Random):
            self._tag("R")
            self.encode(obj.getstate())
        elif isinstance(obj, types.MethodType):
            self._tag("BM", _qualname(obj.__func__))
            self.encode(obj.__self__)
        elif isinstance(obj, (types.FunctionType, types.BuiltinFunctionType)):
            self._tag("FN", _qualname(obj))
        elif isinstance(obj, type):
            self._tag("C", _qualname(obj))
        else:
            self._encode_object(obj)

    def _encode_dict(self, obj: dict) -> None:
        self._tag("M", f"{len(obj)}")
        items = list(obj.items())
        if all(_primitive_key(key) for key, _ in items):
            items.sort(key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))
        for key, value in items:
            self.encode(key)
            self.encode(value)

    def _encode_object(self, obj: Any) -> None:
        self._tag("O", _qualname(type(obj)))
        try:
            state = obj.__getstate__()
        except Exception as exc:
            raise SnapshotError(
                f"cannot digest {type(obj).__name__}: __getstate__ failed ({exc})"
            ) from exc
        self.encode(state)


class _Accumulator:
    """A hashlib-shaped sink that collects bytes (for set elements)."""

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = bytearray()

    def update(self, chunk: bytes) -> None:
        self.data.extend(chunk)


def _qualname(obj: Any) -> str:
    module = getattr(obj, "__module__", "?")
    name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}.{name}"


def _primitive_key(key: Any) -> bool:
    if isinstance(key, (str, int, float, bool, bytes)) or key is None:
        return True
    if isinstance(key, tuple):
        return all(_primitive_key(item) for item in key)
    return False
