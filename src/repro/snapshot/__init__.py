"""Deterministic checkpoint / restore / fork of live simulations.

``Snapshot.capture(world)`` freezes a world between engine events;
``restore()`` materializes an independent copy that continues
bit-identically to the uninterrupted run; ``fork(n, mutate=...)``
branches one warmed-up simulation into N divergent continuations.
:func:`state_digest` is the canonical SHA-256 equality oracle behind
both the restore integrity check and the golden-state regression layer
(:mod:`repro.snapshot.golden`).  See docs/SNAPSHOT.md.
"""

from repro.snapshot.core import SNAPSHOT_FORMAT, Snapshot, SnapshotInfo
from repro.snapshot.delta import DELTA_FORMAT, DeltaInfo, DeltaSnapshot
from repro.snapshot.digest import DIGEST_VERSION, state_digest, state_fingerprints
from repro.snapshot.golden import (
    CHECKPOINT_TIMES,
    GOLDEN_VARIANTS,
    all_golden_digests,
    build_golden_scenario,
    golden_digests,
)

__all__ = [
    "CHECKPOINT_TIMES",
    "DELTA_FORMAT",
    "DIGEST_VERSION",
    "DeltaInfo",
    "DeltaSnapshot",
    "GOLDEN_VARIANTS",
    "SNAPSHOT_FORMAT",
    "Snapshot",
    "SnapshotInfo",
    "all_golden_digests",
    "build_golden_scenario",
    "golden_digests",
    "state_digest",
    "state_fingerprints",
]
