"""Extension experiment: where does Vegas' gain come from?

The paper's introduction leans on Hengartner et al. [8]: "the
performance gain of TCP Vegas over TCP Reno is due mainly to TCP Vegas'
new techniques for slow-start and congestion recovery ... not the
innovative congestion-avoidance mechanism" — which is the motivation
for attacking the *recovery* path rather than inventing another CA.

This harness replays that decomposition with our Vegas implementation's
per-mechanism switches.  Each configuration transfers the same bounded
file through the paper's dumbbell with an engineered loss burst plus
emergent queue losses, so both the avoidance and the recovery machinery
matter:

* ``reno``           — the baseline;
* ``vegas``          — everything on;
* ``vegas-ca-only``  — delay-based CA, classic slow start, no
  expedited retransmit (the "innovative CA" in isolation);
* ``vegas-rec-only`` — expedited retransmit + Vegas slow start, Reno
  CA (the loss-avoidance/recovery techniques in isolation).

Expected shape ([8] via the paper): ``vegas-rec-only`` captures most of
Vegas' improvement over Reno; ``vegas-ca-only`` alone contributes the
rest mainly by *avoiding* self-induced losses on an uncontended path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.config import TcpConfig
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.net.loss import DeterministicLoss
from repro.net.topology import DumbbellParams
from repro.runner import SweepRunner, TaskSpec
from repro.tcp.reno import RenoSender
from repro.tcp.vegas import VegasSender
from repro.viz.ascii import format_table


class VegasCaOnly(VegasSender):
    """Delay-based CA only; recovery-side tricks disabled."""

    variant = "vegas-ca-only"
    enable_vegas_ca = True
    enable_vegas_ss = False
    enable_expedited_rtx = False


class VegasRecoveryOnly(VegasSender):
    """Vegas' slow-start + expedited retransmit; Reno-style CA."""

    variant = "vegas-rec-only"
    enable_vegas_ca = False
    enable_vegas_ss = True
    enable_expedited_rtx = True


CONFIGURATIONS: Dict[str, Type[RenoSender]] = {
    "reno": RenoSender,
    "vegas": VegasSender,
    "vegas-ca-only": VegasCaOnly,
    "vegas-rec-only": VegasRecoveryOnly,
}


@dataclass
class VegasDecompositionConfig:
    configurations: Sequence[str] = tuple(CONFIGURATIONS)
    transfer_packets: int = 400
    burst_drops: int = 3
    first_drop_seq: int = 120
    buffer_packets: int = 10     # small buffer: slow-start overshoot bites
    sim_duration: float = 120.0


@dataclass
class VegasDecompositionRow:
    name: str
    complete_time: Optional[float]
    retransmits: int
    timeouts: int
    drops_observed: int


@dataclass
class VegasDecompositionResult:
    config: VegasDecompositionConfig
    rows: List[VegasDecompositionRow] = field(default_factory=list)

    def row(self, name: str) -> VegasDecompositionRow:
        return next(r for r in self.rows if r.name == name)


def run_one(name: str, config: VegasDecompositionConfig) -> VegasDecompositionRow:
    sender_cls = CONFIGURATIONS[name]
    loss = DeterministicLoss(
        [(1, config.first_drop_seq + i) for i in range(config.burst_drops)]
    )
    scenario = build_dumbbell_scenario(
        flows=[FlowSpec(variant="reno", amount_packets=config.transfer_packets)],
        params=DumbbellParams(n_pairs=1, buffer_packets=config.buffer_packets),
        default_config=TcpConfig(receiver_window=64),
        forward_loss=loss,
        sender_overrides={1: sender_cls},
    )
    scenario.sim.run(until=config.sim_duration)
    sender, stats = scenario.flow(1)
    return VegasDecompositionRow(
        name=name,
        complete_time=sender.complete_time,
        retransmits=sender.retransmits,
        timeouts=sender.timeouts,
        drops_observed=stats.drops_observed,
    )


def run_vegas_decomposition(
    config: Optional[VegasDecompositionConfig] = None,
    runner: Optional[SweepRunner] = None,
    manifest: Optional["RunManifest"] = None,
) -> VegasDecompositionResult:
    config = config or VegasDecompositionConfig()
    runner = runner or SweepRunner()
    result = VegasDecompositionResult(config=config)
    if manifest is not None:
        manifest.describe_harness("vegas", config=config)
    specs = [
        TaskSpec(
            fn="repro.experiments.vegas_decomposition:run_one",
            args=(name, config),
            label=f"vegas {name}",
        )
        for name in config.configurations
    ]
    result.rows.extend(runner.map(specs))
    return result


def format_report(result: VegasDecompositionResult) -> str:
    config = result.config
    lines = [
        "Vegas decomposition — which mechanism buys the gain? (paper §1 / ref [8])",
        f"({config.transfer_packets}-packet transfer, {config.burst_drops}-drop burst,"
        f" {config.buffer_packets}-packet buffer)",
        "",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.name,
                f"{row.complete_time:.2f}" if row.complete_time else "DNF",
                row.drops_observed,
                row.retransmits,
                row.timeouts,
            ]
        )
    lines.append(
        format_table(["configuration", "done at s", "drops", "rtx", "RTOs"], rows)
    )
    lines.append("")
    lines.append(
        "expected ([8]): the recovery/slow-start techniques, not the delay-based"
        " CA alone, account for most of Vegas' edge over Reno."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_vegas_decomposition()))


if __name__ == "__main__":  # pragma: no cover
    main()
