"""Shared scenario plumbing for the experiment harnesses.

:func:`build_dumbbell_scenario` assembles the paper's Figure-4 world in
one call: the dumbbell, one TCP connection per host pair (each with a
:class:`~repro.metrics.flowstats.FlowStats` observer and an FTP
source), and drop watching on the trace bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.app.ftp import FtpSource
from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.metrics.flowstats import FlowStats
from repro.net.loss import LossModule
from repro.net.queues import PacketQueue
from repro.net.topology import Dumbbell, DumbbellParams
from repro.sim.engine import Simulator
from repro.tcp.base import TcpSender
from repro.tcp.factory import VARIANTS, make_connection
from repro.tcp.receiver import TcpReceiver


@dataclass
class FlowSpec:
    """One connection in a scenario."""

    variant: str
    start_time: float = 0.0
    amount_packets: Optional[int] = None  # None = infinite backlog
    config: Optional[TcpConfig] = None


@dataclass
class ScenarioResult:
    """Everything a scenario run leaves behind, keyed by flow id."""

    sim: Simulator
    dumbbell: Dumbbell
    senders: Dict[int, TcpSender] = field(default_factory=dict)
    receivers: Dict[int, TcpReceiver] = field(default_factory=dict)
    stats: Dict[int, FlowStats] = field(default_factory=dict)
    sources: Dict[int, FtpSource] = field(default_factory=dict)

    def flow(self, flow_id: int) -> Tuple[TcpSender, FlowStats]:
        return self.senders[flow_id], self.stats[flow_id]


def build_dumbbell_scenario(
    flows: Sequence[FlowSpec],
    params: Optional[DumbbellParams] = None,
    default_config: Optional[TcpConfig] = None,
    bottleneck_queue_factory: Optional[Callable[[str], PacketQueue]] = None,
    forward_loss: Optional[LossModule] = None,
    reverse_loss: Optional[LossModule] = None,
    sender_overrides: Optional[Dict[int, Type[TcpSender]]] = None,
    sim: Optional[Simulator] = None,
) -> ScenarioResult:
    """Build a ready-to-run dumbbell scenario.

    Flow ids are 1-based and map to host pairs (flow i runs S_i -> K_i),
    mirroring the paper's notation.  ``sender_overrides`` substitutes a
    custom sender class for specific flow ids (used by the ablation
    harness to plug in modified RR variants).  Pass ``sim`` when a
    component built before the scenario (e.g. a RED queue factory)
    needs to share the simulator.
    """
    if not flows:
        raise ConfigurationError("scenario needs at least one flow")
    if sim is None:
        sim = Simulator()
    topo_params = params or DumbbellParams()
    if topo_params.n_pairs < len(flows):
        topo_params = replace(topo_params, n_pairs=len(flows))
    bell = Dumbbell(
        sim,
        topo_params,
        bottleneck_queue_factory=bottleneck_queue_factory,
        forward_loss=forward_loss,
        reverse_loss=reverse_loss,
    )
    result = ScenarioResult(sim=sim, dumbbell=bell)
    overrides = sender_overrides or {}
    for index, spec in enumerate(flows, start=1):
        flow_id = index
        config = spec.config or default_config
        stats = FlowStats(flow_id=flow_id)
        stats.watch_drops(bell.net.trace)
        if flow_id in overrides:
            sender_cls = overrides[flow_id]
            receiver_cls = VARIANTS[spec.variant][1]
            sender = sender_cls(
                sim,
                flow_id,
                bell.receiver(flow_id).name,
                config=config,
                observer=stats,
                trace=bell.net.trace,
            )
            receiver = receiver_cls(sim, flow_id, config=config)
            bell.sender(flow_id).register(sender)
            bell.receiver(flow_id).register(receiver)
        else:
            sender, receiver = make_connection(
                sim,
                spec.variant,
                flow_id,
                bell.sender(flow_id),
                bell.receiver(flow_id),
                config=config,
                observer=stats,
                trace=bell.net.trace,
            )
        source = FtpSource(
            sim, sender, amount_packets=spec.amount_packets, start_time=spec.start_time
        )
        result.senders[flow_id] = sender
        result.receivers[flow_id] = receiver
        result.stats[flow_id] = stats
        result.sources[flow_id] = source
    return result


#: The four schemes the paper's evaluation compares (Section 3).
PAPER_VARIANTS: List[str] = ["tahoe", "newreno", "sack", "rr"]
