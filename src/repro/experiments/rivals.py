"""The ``rivals`` harness: RR vs. the post-paper competition.

The paper's fairness and friendliness tables (Section 5) assume every
competitor halves on loss.  Modern rivals do not: CUBIC backs off by
0.3 and regrows along a cubic, Relentless sheds only what the path
destroyed.  This harness re-runs the fairness/friendliness questions
with RR sharing a bottleneck against {Reno, NewReno, CUBIC,
Relentless} under four regimes:

* ``wired``    — the paper's drop-tail dumbbell, scaled up;
* ``delack``   — RFC 1122 delayed ACKs at every receiver;
* ``ecn-red``  — an ECN-marking RED bottleneck with ECN-capable
  senders (RFC 3168);
* ``mobile``   — a time-varying wireless bottleneck: a seeded
  :class:`~repro.net.varlink.RateSchedule` with deep handover outages
  over a bufferbloat-sized buffer.  Every mobile cell rides the *same*
  channel trace, so variants are compared over identical conditions.

Each (mix, regime) cell measures post-warmup per-group goodput, the
Jain index across all flows, per-group timeout/recovery counts and
bottleneck-queue behaviour.  Pure single-variant baselines per regime
turn mixed-cell goodputs into *friendliness ratios* (share kept in the
mix relative to the variant's own company).

Dedicated ``relentless-model`` cells run one Relentless flow over a
uniform-loss link and gate the measurement against the Diana & Lochin
``W* = 1/p`` model (:mod:`repro.models.relentless`); the pass/fail
verdict lands in the run manifest via ``note_oracle``, exactly like
the PR-8 mean-field verdicts.  The model assumes an ACK per packet, so
these cells deliberately ignore ``--delayed-ack``/``--ecn``.

Warm starts mirror manyflow: a cell's prefix is its own first
``warmup`` seconds (measurement starts at the capture point), shared
across repeated sweeps through the snapshot store.  Every cell is an
independent :class:`TaskSpec`, so rows are bit-identical at any
``--jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import TcpConfig
from repro.errors import ConfigurationError
from repro.experiments.common import FlowSpec, build_dumbbell_scenario
from repro.metrics.fairness import jain_index
from repro.metrics.queuemon import QueueMonitor
from repro.models.relentless import (
    RelentlessModelParams,
    RelentlessVerdict,
    relentless_verdict,
)
from repro.net.loss import PeriodicLoss
from repro.net.packet import set_uid_state
from repro.net.red import RedParams, RedQueue
from repro.net.topology import DumbbellParams
from repro.net.varlink import RateSchedule, bufferbloat_limit
from repro.runner import (
    PrefixSpec,
    SnapshotStore,
    SweepRunner,
    TaskSpec,
    load_prefix,
    warm_specs,
    warm_start_decision,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.viz.ascii import format_table

#: Regimes the grid understands (docs/SCENARIOS.md, mobile-link family).
REGIMES = ("wired", "delack", "ecn-red", "mobile")

#: Fraction of a cell's duration simulated before measurement starts.
WARMUP_FRACTION = 0.25


@dataclass
class RivalsConfig:
    """Knobs for the rivals grid.

    The wired bottleneck is sized so four flows each hold an ~8-packet
    fair-share window (big enough for fast recovery, small enough to
    congest); the mobile channel averages half that rate and swings
    ``+-spread`` around it with periodic handover blackouts.
    """

    rivals: Sequence[str] = ("reno", "newreno", "cubic", "relentless")
    regimes: Sequence[str] = REGIMES
    flows_per_side: int = 2
    duration: float = 60.0
    #: Measurement starts here; also the warm-start capture point.
    #: Pinned to ``duration * WARMUP_FRACTION`` by :func:`run_rivals`.
    warmup: float = 15.0
    start_stagger: float = 0.25
    bottleneck_bandwidth_bps: float = 4_000_000.0
    bottleneck_delay: float = 0.030
    buffer_packets: int = 32
    # ecn-red regime (thresholds on the early-drop ramp, ECN marking on)
    red_min_th: float = 8.0
    red_max_th: float = 24.0
    red_max_p: float = 0.05
    red_weight: float = 0.002
    red_limit: int = 64
    # mobile regime (shared seeded channel trace, bufferbloat buffer)
    mobile_mean_bps: float = 2_000_000.0
    mobile_spread: float = 0.6
    mobile_interval: float = 1.0
    mobile_handover_period: float = 20.0
    mobile_handover_duration: float = 0.4
    bufferbloat_multiple: float = 10.0
    # relentless-model oracle cells (solo flow, uniform loss)
    model_loss_rates: Sequence[float] = (0.01, 0.03)
    model_duration: float = 120.0
    model_bandwidth_bps: float = 10_000_000.0
    model_delay: float = 0.097
    model_receiver_window: int = 200
    # CLI --delayed-ack / --ecn: force the knobs across every grid cell
    # (recorded in the manifest through describe_harness).
    force_delayed_ack: bool = False
    force_ecn: bool = False
    queue_sample_period: float = 0.01
    seed: int = 31


@dataclass
class RivalsCellResult:
    """One executed cell (match, pure baseline, or model oracle)."""

    label: str
    kind: str      # "match" | "pure" | "model"
    variant: str   # the rival (match), the sole variant (pure/model)
    regime: str
    rr_goodput_bps: float = 0.0      # mean per-flow goodput, RR group
    rival_goodput_bps: float = 0.0   # mean per-flow goodput, rival group
    jain: float = 0.0
    rr_timeouts: int = 0
    rival_timeouts: int = 0
    rr_recoveries: int = 0
    rival_recoveries: int = 0
    drops: int = 0
    mean_queue: float = 0.0
    utilization: float = 0.0
    events: int = 0
    verdict: Optional[RelentlessVerdict] = None


@dataclass
class RivalsRow:
    """One reduced friendliness row: a match cell + its baselines."""

    regime: str
    rival: str
    rr_goodput_bps: float
    rival_goodput_bps: float
    rival_share: float        # rival group's fraction of the mixed total
    jain: float
    friendliness: float       # rival per-flow goodput vs. pure-rival run
    rr_retained: float        # RR per-flow goodput vs. pure-RR run
    rr_timeouts: int
    rival_timeouts: int
    drops: int
    utilization: float


@dataclass
class RivalsResult:
    config: RivalsConfig
    cells: List[RivalsCellResult] = field(default_factory=list)
    rows: List[RivalsRow] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Every model-oracle cell within tolerance."""
        return all(c.verdict.passed for c in self.cells if c.verdict is not None)


# ----------------------------------------------------------------------
# cell construction
# ----------------------------------------------------------------------


def _regime_tcp_config(regime: str, config: RivalsConfig) -> TcpConfig:
    return TcpConfig(
        delayed_ack=config.force_delayed_ack or regime == "delack",
        ecn_enabled=config.force_ecn or regime == "ecn-red",
    )


def _base_rtt(config: RivalsConfig) -> float:
    # Two side links at the DumbbellParams default 1 ms each way.
    return 2 * (0.001 + config.bottleneck_delay + 0.001)


def _regime_params(regime: str, config: RivalsConfig, n_pairs: int) -> DumbbellParams:
    if regime == "mobile":
        return DumbbellParams(
            n_pairs=n_pairs,
            bottleneck_bandwidth_bps=config.mobile_mean_bps,
            bottleneck_delay=config.bottleneck_delay,
            buffer_packets=bufferbloat_limit(
                config.mobile_mean_bps, _base_rtt(config), config.bufferbloat_multiple
            ),
        )
    return DumbbellParams(
        n_pairs=n_pairs,
        bottleneck_bandwidth_bps=config.bottleneck_bandwidth_bps,
        bottleneck_delay=config.bottleneck_delay,
        buffer_packets=(
            config.red_limit if regime == "ecn-red" else config.buffer_packets
        ),
    )


def _red_params(config: RivalsConfig) -> RedParams:
    return RedParams(
        min_th=config.red_min_th,
        max_th=config.red_max_th,
        max_p=config.red_max_p,
        weight=config.red_weight,
        limit=config.red_limit,
        ecn=True,
    )


def mobile_schedule(config: RivalsConfig) -> RateSchedule:
    """The shared mobile-channel trace every mobile cell replays."""
    return RateSchedule.mobile(
        config.seed,
        duration=config.duration,
        mean_bps=config.mobile_mean_bps,
        interval=config.mobile_interval,
        spread=config.mobile_spread,
        handover_period=config.mobile_handover_period,
        handover_duration=config.mobile_handover_duration,
        name="rivals-mobile",
    )


def build_cell_world(kind: str, variant: str, regime: str, config: RivalsConfig):
    """Build one grid cell's world (deterministic in its arguments)."""
    if regime not in REGIMES:
        raise ConfigurationError(
            f"unknown rivals regime {regime!r}; choose from {REGIMES}"
        )
    set_uid_state(1)
    total = 2 * config.flows_per_side
    if kind == "match":
        # Interleave the groups (rr on odd flow ids, the rival on even)
        # so the staggered starts don't hand either side a head start —
        # behind a bufferbloat standing queue, start order alone can
        # decide who owns the pipe.
        variants = ["rr", variant] * config.flows_per_side
    else:
        variants = [variant] * total
    tcp = _regime_tcp_config(regime, config)
    flows = [
        FlowSpec(variant=v, start_time=i * config.start_stagger, config=tcp)
        for i, v in enumerate(variants)
    ]
    sim = Simulator()
    factory = None
    if regime == "ecn-red":
        red = _red_params(config)
        rng = RngStream(config.seed, f"rivals/red/{kind}/{variant}/{regime}")
        factory = lambda name: RedQueue(sim, red, rng.substream(name), name=name)
    world = build_dumbbell_scenario(
        flows,
        params=_regime_params(regime, config, total),
        bottleneck_queue_factory=factory,
        sim=sim,
    )
    if regime == "mobile":
        mobile_schedule(config).apply(world.dumbbell.forward_link)
    return world


def prefix_world(kind: str, variant: str, regime: str, config: RivalsConfig):
    """Build a cell and advance it to the warm-start capture point."""
    world = build_cell_world(kind, variant, regime, config)
    world.sim.run(until=min(config.duration * WARMUP_FRACTION, config.duration))
    return world


def prefix_spec(cell: Tuple[str, str, str], config: RivalsConfig) -> PrefixSpec:
    kind, variant, regime = cell
    return PrefixSpec(
        fn="repro.experiments.rivals:prefix_world",
        args=(kind, variant, regime, config),
        label=f"rivals prefix {kind} {variant} {regime}",
    )


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------


def _group_ids(kind: str, variant: str, config: RivalsConfig):
    total = 2 * config.flows_per_side
    if kind == "match":
        rr = list(range(1, total + 1, 2))
        rival = list(range(2, total + 1, 2))
    elif variant == "rr":
        rr, rival = list(range(1, total + 1)), []
    else:
        rr, rival = [], list(range(1, total + 1))
    return rr, rival


def _cell_bandwidth(regime: str, config: RivalsConfig) -> float:
    return (
        config.mobile_mean_bps
        if regime == "mobile"
        else config.bottleneck_bandwidth_bps
    )


def _finish(
    world, label: str, kind: str, variant: str, regime: str, config: RivalsConfig
) -> RivalsCellResult:
    """Measure the post-warmup window of a (possibly warm-started) cell."""
    mss = TcpConfig().mss_bytes
    queue = world.dumbbell.bottleneck_queue
    base_drops = queue.drops
    base_acks = {fid: s.final_ack for fid, s in world.stats.items()}
    base_rtos = {fid: s.timeouts for fid, s in world.stats.items()}
    base_recov = {fid: len(s.episodes) for fid, s in world.stats.items()}
    window_start = world.sim.now
    monitor = QueueMonitor(
        world.sim, queue, period=config.queue_sample_period, start_time=window_start
    )
    world.sim.run(until=config.duration)

    window = max(config.duration - window_start, 1e-9)
    goodputs = {
        fid: (s.final_ack - base_acks[fid]) * mss * 8.0 / window
        for fid, s in world.stats.items()
    }
    rr_ids, rival_ids = _group_ids(kind, variant, config)

    def group_mean(ids):
        return sum(goodputs[fid] for fid in ids) / len(ids) if ids else 0.0

    def group_sum(base, ids, current):
        return sum(current(fid) - base[fid] for fid in ids)

    bandwidth = _cell_bandwidth(regime, config)
    return RivalsCellResult(
        label=label,
        kind=kind,
        variant=variant,
        regime=regime,
        rr_goodput_bps=group_mean(rr_ids),
        rival_goodput_bps=group_mean(rival_ids),
        jain=jain_index(list(goodputs.values())),
        rr_timeouts=group_sum(base_rtos, rr_ids, lambda f: world.stats[f].timeouts),
        rival_timeouts=group_sum(
            base_rtos, rival_ids, lambda f: world.stats[f].timeouts
        ),
        rr_recoveries=group_sum(
            base_recov, rr_ids, lambda f: len(world.stats[f].episodes)
        ),
        rival_recoveries=group_sum(
            base_recov, rival_ids, lambda f: len(world.stats[f].episodes)
        ),
        drops=queue.drops - base_drops,
        mean_queue=monitor.mean_occupancy(),
        utilization=sum(goodputs.values()) / bandwidth if bandwidth else 0.0,
        events=world.sim.events_processed,
    )


def run_cell(
    kind: str, variant: str, regime: str, label: str, config: RivalsConfig
) -> RivalsCellResult:
    """Cold path: build, warm up and measure one grid cell."""
    return _finish(
        prefix_world(kind, variant, regime, config), label, kind, variant, regime, config
    )


def run_cell_from_snapshot(
    digest: str,
    kind: str,
    variant: str,
    regime: str,
    label: str,
    config: RivalsConfig,
    store_root: Optional[str] = None,
) -> RivalsCellResult:
    """Warm path: continue one cell from its stored prefix snapshot."""
    return _finish(
        load_prefix(digest, store_root, verify=False),
        label,
        kind,
        variant,
        regime,
        config,
    )


def run_model_cell(loss_rate: float, config: RivalsConfig) -> RivalsCellResult:
    """One Diana & Lochin oracle cell: a solo Relentless flow over a
    uniform-loss link, measured against ``W* = 1/p``.

    The model assumes an ACK per packet and loss-only feedback, so
    these cells keep the default TcpConfig (no delayed ACKs, no ECN)
    regardless of the forced grid knobs.
    """
    set_uid_state(1)
    mss = TcpConfig().mss_bytes
    tcp = TcpConfig(receiver_window=config.model_receiver_window)
    params = DumbbellParams(
        n_pairs=1,
        bottleneck_bandwidth_bps=config.model_bandwidth_bps,
        bottleneck_delay=config.model_delay,
        # A BDP of headroom: the flow must be loss-limited, not
        # buffer-limited, for the fluid model to apply.
        buffer_packets=int(
            config.model_bandwidth_bps * 2 * config.model_delay / (8 * mss)
        )
        + config.model_receiver_window,
    )
    world = build_dumbbell_scenario(
        [FlowSpec(variant="relentless", config=tcp)],
        params=params,
        # The loss process the fluid derivation actually assumes: one
        # loss every 1/p first transmissions, perfectly regular.  An
        # i.i.d. process at the same rate clusters losses into RTO
        # stalls the model has no term for (measured ~40% below the
        # fluid line); the periodic process isolates the question the
        # oracle asks — does the *window arithmetic* follow W* = 1/p?
        forward_loss=PeriodicLoss(
            period=max(int(round(1.0 / loss_rate)), 1),
            offset=max(int(round(1.0 / loss_rate)), 1) // 2,
        ),
    )
    warmup = config.model_duration * WARMUP_FRACTION
    world.sim.run(until=warmup)
    base_ack = world.stats[1].final_ack
    world.sim.run(until=config.model_duration)
    window = config.model_duration - warmup
    goodput = (world.stats[1].final_ack - base_ack) * mss * 8.0 / window
    base_rtt = world.dumbbell.base_rtt()
    measured_window = goodput * base_rtt / (mss * 8.0)
    verdict = relentless_verdict(
        RelentlessModelParams(
            loss_rate=loss_rate,
            base_rtt=base_rtt,
            bandwidth_bps=config.model_bandwidth_bps,
            mss_bytes=mss,
            max_window=float(config.model_receiver_window),
        ),
        measured_bps=goodput,
        measured_window=measured_window,
    )
    return RivalsCellResult(
        label=f"relentless-model p={loss_rate:g}",
        kind="model",
        variant="relentless",
        regime="uniform-loss",
        rival_goodput_bps=goodput,
        rival_timeouts=world.stats[1].timeouts,
        utilization=goodput / config.model_bandwidth_bps,
        events=world.sim.events_processed,
        verdict=verdict,
    )


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def _reduce(result: RivalsResult) -> None:
    """Turn match cells + pure baselines into friendliness rows."""
    pure: Dict[Tuple[str, str], float] = {}
    for cell in result.cells:
        if cell.kind == "pure":
            mean = cell.rr_goodput_bps if cell.variant == "rr" else cell.rival_goodput_bps
            pure[(cell.variant, cell.regime)] = mean
    for cell in result.cells:
        if cell.kind != "match":
            continue
        total = cell.rr_goodput_bps + cell.rival_goodput_bps
        pure_rival = pure.get((cell.variant, cell.regime), 0.0)
        pure_rr = pure.get(("rr", cell.regime), 0.0)
        result.rows.append(
            RivalsRow(
                regime=cell.regime,
                rival=cell.variant,
                rr_goodput_bps=cell.rr_goodput_bps,
                rival_goodput_bps=cell.rival_goodput_bps,
                rival_share=cell.rival_goodput_bps / total if total else 0.0,
                jain=cell.jain,
                friendliness=(
                    cell.rival_goodput_bps / pure_rival if pure_rival else 0.0
                ),
                rr_retained=cell.rr_goodput_bps / pure_rr if pure_rr else 0.0,
                rr_timeouts=cell.rr_timeouts,
                rival_timeouts=cell.rival_timeouts,
                drops=cell.drops,
                utilization=cell.utilization,
            )
        )


def run_rivals(
    config: Optional[RivalsConfig] = None,
    runner: Optional[SweepRunner] = None,
    warm_start: bool = False,
    store: Optional[SnapshotStore] = None,
    manifest: Optional["RunManifest"] = None,
) -> RivalsResult:
    """Run the mix x regime grid plus the model-oracle cells.

    Every cell is an independent :class:`TaskSpec` fanned out through
    ``runner.map`` (bit-identical at any job count); Diana & Lochin
    verdicts land in the manifest via :meth:`RunManifest.note_oracle`.
    """
    config = config or RivalsConfig()
    if abs(config.warmup - config.duration * WARMUP_FRACTION) > 1e-9:
        config.warmup = config.duration * WARMUP_FRACTION
    runner = runner or SweepRunner()
    result = RivalsResult(config=config)
    if manifest is not None:
        manifest.describe_harness(
            "rivals", config=config, seed=config.seed, warm_start=warm_start
        )
    # Grid cells: per regime, each RR-vs-rival match plus the pure
    # baselines that anchor the friendliness ratios.
    grid: List[Tuple[str, Tuple[str, str, str]]] = []
    for regime in config.regimes:
        for rival in config.rivals:
            grid.append((f"{regime} rr+{rival}", ("match", rival, regime)))
        for variant in ("rr",) + tuple(config.rivals):
            grid.append((f"{regime} pure {variant}", ("pure", variant, regime)))

    if warm_start:
        store = store or SnapshotStore()
        if warm_start != "force":
            decision = warm_start_decision(
                [cell for _, cell in grid],
                lambda cell: prefix_spec(cell, config),
                WARMUP_FRACTION,
                store,
            )
            if not decision.use_warm:
                if manifest is not None:
                    manifest.note_warm_start_skipped(decision.reason)
                warm_start = False
    if warm_start:
        store_arg = str(store.root)
        labels = {id(cell): label for label, cell in grid}
        specs = warm_specs(
            [cell for _, cell in grid],
            prefix_for=lambda cell: prefix_spec(cell, config),
            spec_for=lambda cell, digest: TaskSpec(
                fn="repro.experiments.rivals:run_cell_from_snapshot",
                args=(digest, *cell, labels[id(cell)], config, store_arg),
                label=f"rivals {labels[id(cell)]} (warm)",
            ),
            store=store,
            runner=runner,
        )
        if manifest is not None:
            manifest.note_warm_start(store)
    else:
        specs = [
            TaskSpec(
                fn="repro.experiments.rivals:run_cell",
                args=(*cell, label, config),
                label=f"rivals {label}",
            )
            for label, cell in grid
        ]
    # Model-oracle cells are short solo runs; always cold.
    specs = list(specs) + [
        TaskSpec(
            fn="repro.experiments.rivals:run_model_cell",
            args=(loss_rate, config),
            label=f"rivals relentless-model p={loss_rate:g}",
        )
        for loss_rate in config.model_loss_rates
    ]
    for cell in runner.map(specs):
        result.cells.append(cell)
        if manifest is not None and cell.verdict is not None:
            manifest.note_oracle(cell.label, cell.verdict)
    _reduce(result)
    return result


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def format_report(result: RivalsResult) -> str:
    config = result.config
    knobs = []
    if config.force_delayed_ack:
        knobs.append("delayed ACKs forced on")
    if config.force_ecn:
        knobs.append("ECN forced on")
    lines = [
        "rivals — RR vs. modern congestion control under modern regimes",
        f"({config.flows_per_side}+{config.flows_per_side} flows per cell,"
        f" {config.duration:g}s, measured after"
        f" {config.duration * WARMUP_FRACTION:g}s warmup"
        + (", " + ", ".join(knobs) if knobs else "")
        + ")",
        "",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.regime,
                f"rr+{row.rival}",
                f"{row.rr_goodput_bps / 1e3:.0f}",
                f"{row.rival_goodput_bps / 1e3:.0f}",
                f"{row.rival_share:.2f}",
                f"{row.jain:.3f}",
                f"{row.friendliness:.2f}",
                f"{row.rr_retained:.2f}",
                f"{row.rr_timeouts}/{row.rival_timeouts}",
                f"{row.utilization:.2f}",
            ]
        )
    lines.append(
        format_table(
            [
                "regime",
                "mix",
                "rr kbps",
                "rival kbps",
                "share",
                "Jain",
                "friendly",
                "rr kept",
                "RTOs",
                "util",
            ],
            rows,
        )
    )
    lines.append("")
    lines.append(
        "share  = rival fraction of the mixed goodput (0.5 = even split)"
    )
    lines.append(
        "friendly = rival per-flow goodput vs. its all-rival baseline;"
        " rr kept = same for RR vs. all-RR"
    )
    checked = [c for c in result.cells if c.verdict is not None]
    if checked:
        lines.append("")
        for cell in checked:
            lines.append(cell.verdict.format())
        passed = sum(1 for c in checked if c.verdict.passed)
        lines.append(
            f"oracle: {passed}/{len(checked)} relentless-model cells within"
            " tolerance (docs/SCENARIOS.md)"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI glue
    print(format_report(run_rivals()))


if __name__ == "__main__":  # pragma: no cover
    main()
